"""repro — a reproduction of *Guided Data Repair* (Yakout et al., VLDB 2011).

GDR combines constraint-based automatic repair (CFD violation
resolution) with selective user feedback: candidate updates are grouped,
groups are ranked by a decision-theoretic value-of-information estimate,
and an actively-trained per-attribute random-forest committee gradually
takes the labelling burden off the user.

Quickstart
----------
>>> from repro import (Database, Schema, RuleSet, parse_rules,
...                    GDREngine, GroundTruthOracle)
>>> schema = Schema("customer", ["zip", "city"])
>>> dirty = Database(schema, [["46360", "Westville"], ["46360", "Michigan City"]])
>>> clean = Database(schema, [["46360", "Michigan City"], ["46360", "Michigan City"]])
>>> rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
>>> engine = GDREngine(dirty, rules, GroundTruthOracle(clean), clean_db=clean)
>>> result = engine.run()
>>> result.remaining_dirty
0
"""

from repro.constraints import (
    ANY,
    CFD,
    PatternTuple,
    RuleSet,
    ViolationDetector,
    discover_rules,
    format_cfd,
    mine_constant_cfds,
    parse_cfd,
    parse_rules,
)
from repro.core import (
    GDRConfig,
    GDREngine,
    GDRResult,
    GroundTruthOracle,
    NoisyOracle,
    QualityEvaluator,
    RepairReport,
    evaluate_repair,
    quality_improvement,
)
from repro.db import ChangeLog, Database, Row, Schema
from repro.errors import ReproError
from repro.repair import (
    CandidateUpdate,
    Feedback,
    UserFeedback,
    batch_repair,
    levenshtein,
    similarity,
)

__version__ = "1.0.0"

__all__ = [
    "ANY",
    "CFD",
    "CandidateUpdate",
    "ChangeLog",
    "Database",
    "Feedback",
    "GDRConfig",
    "GDREngine",
    "GDRResult",
    "GroundTruthOracle",
    "NoisyOracle",
    "PatternTuple",
    "QualityEvaluator",
    "RepairReport",
    "ReproError",
    "Row",
    "RuleSet",
    "Schema",
    "UserFeedback",
    "ViolationDetector",
    "batch_repair",
    "discover_rules",
    "evaluate_repair",
    "format_cfd",
    "levenshtein",
    "mine_constant_cfds",
    "parse_cfd",
    "parse_rules",
    "quality_improvement",
    "similarity",
    "__version__",
]
