"""Parser for the textual CFD notation used in the paper's Figure 1.

The accepted grammar (whitespace-insensitive)::

    rule     := [name ":"] "(" attrs "->" attrs "," "{" vals "||" vals "}" ")"
    attrs    := attr ("," attr)*
    vals     := val ("," val)*
    val      := quoted string | bare token | "-" | "_" | empty

``-``, ``_`` and the empty string denote the wildcard. The two value
lists must have the same arity as the LHS and RHS attribute lists.
Multi-RHS rules are normalized into one rule per RHS attribute.

Examples
--------
>>> rules = parse_cfd("phi1: (zip -> city, state, {46360 || 'Michigan City', IN})")
>>> len(rules)
2
>>> rules[0].rhs_constant
'Michigan City'
"""

from __future__ import annotations

from repro.constraints.cfd import CFD, normalize
from repro.constraints.pattern import ANY
from repro.errors import RuleParseError

__all__ = ["format_cfd", "load_rules", "parse_cfd", "parse_rules", "save_rules"]

_WILDCARD_TOKENS = {"-", "_", ""}
_SEPARATORS = ("||", "‖")


def parse_cfd(text: str) -> list[CFD]:
    """Parse one rule in textual notation into normal-form CFDs."""
    raw = text.strip()
    if not raw:
        raise RuleParseError(text, "empty rule text")
    name, body = _split_name(raw)
    if not (body.startswith("(") and body.endswith(")")):
        raise RuleParseError(text, "rule body must be parenthesised")
    body = body[1:-1].strip()

    brace_open = body.find("{")
    brace_close = body.rfind("}")
    if brace_open < 0 or brace_close < 0 or brace_close < brace_open:
        raise RuleParseError(text, "missing pattern tableau braces")
    head = body[:brace_open].rstrip()
    if head.endswith(","):
        head = head[:-1]
    tableau = body[brace_open + 1 : brace_close]

    if "->" not in head:
        raise RuleParseError(text, "missing '->' in the embedded FD")
    lhs_text, rhs_text = head.split("->", 1)
    lhs = [a.strip() for a in lhs_text.split(",") if a.strip()]
    rhs = [a.strip() for a in rhs_text.split(",") if a.strip()]
    if not lhs:
        raise RuleParseError(text, "empty LHS attribute list")
    if not rhs:
        raise RuleParseError(text, "empty RHS attribute list")

    lhs_vals_text, rhs_vals_text = _split_tableau(text, tableau)
    lhs_vals = _parse_values(lhs_vals_text)
    rhs_vals = _parse_values(rhs_vals_text)
    if len(lhs_vals) == 1 and lhs_vals[0] is ANY and len(lhs) > 1:
        lhs_vals = [ANY] * len(lhs)
    if len(rhs_vals) == 1 and rhs_vals[0] is ANY and len(rhs) > 1:
        rhs_vals = [ANY] * len(rhs)
    if len(lhs_vals) != len(lhs):
        raise RuleParseError(text, f"LHS pattern arity {len(lhs_vals)} != {len(lhs)} attributes")
    if len(rhs_vals) != len(rhs):
        raise RuleParseError(text, f"RHS pattern arity {len(rhs_vals)} != {len(rhs)} attributes")

    pattern = dict(zip(lhs, lhs_vals))
    pattern.update(zip(rhs, rhs_vals))
    try:
        return normalize(lhs, rhs, pattern, name=name)
    except Exception as exc:  # structural problems become parse errors
        raise RuleParseError(text, str(exc)) from exc


def parse_rules(text: str) -> list[CFD]:
    """Parse a multi-line rule block; ``#`` starts a comment line.

    Examples
    --------
    >>> rules = parse_rules('''
    ... # address rules
    ... phi1: (zip -> city, {46360 || 'Michigan City'})
    ... phi5: (street, city -> zip, {-, 'Fort Wayne' || -})
    ... ''')
    >>> [r.name for r in rules]
    ['phi1', 'phi5']
    """
    rules: list[CFD] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.extend(parse_cfd(stripped))
    return rules


def load_rules(path) -> list[CFD]:
    """Parse a rule file (one rule per line, ``#`` comments allowed)."""
    from pathlib import Path

    return parse_rules(Path(path).read_text())


def save_rules(rules, path) -> None:
    """Write rules to a file in parseable textual notation."""
    from pathlib import Path

    text = "\n".join(format_cfd(rule) for rule in rules)
    Path(path).write_text(text + "\n")


def format_cfd(rule: CFD) -> str:
    """Render a CFD back into parseable textual notation."""
    lhs_vals = ", ".join(_format_value(rule.pattern.value(a)) for a in rule.lhs)
    rhs_val = _format_value(rule.pattern.value(rule.rhs))
    head = f"{', '.join(rule.lhs)} -> {rule.rhs}"
    body = f"({head}, {{{lhs_vals} || {rhs_val}}})"
    return f"{rule.name}: {body}" if rule.name else body


# ----------------------------------------------------------------------
def _format_value(value: object) -> str:
    """Render one pattern entry so that it parses back identically."""
    if value is ANY:
        return "-"
    text = str(value)
    needs_quotes = (
        text in _WILDCARD_TOKENS
        or any(ch in text for ch in ",{}|'\"")
        or text != text.strip()
        or " " in text
    )
    if needs_quotes:
        quote = '"' if "'" in text else "'"
        return f"{quote}{text}{quote}"
    return text


def _split_name(raw: str) -> tuple[str, str]:
    if raw.startswith("("):
        return "", raw
    colon = raw.find(":")
    paren = raw.find("(")
    if 0 <= colon < paren:
        return raw[:colon].strip(), raw[colon + 1 :].strip()
    return "", raw


def _split_tableau(text: str, tableau: str) -> tuple[str, str]:
    for sep in _SEPARATORS:
        if sep in tableau:
            left, right = tableau.split(sep, 1)
            return left, right
    raise RuleParseError(text, "missing '||' separator in pattern tableau")


def _parse_values(section: str) -> list[object]:
    values: list[object] = []
    for token in _split_csv(section):
        stripped = token.strip()
        if len(stripped) >= 2 and stripped[0] == stripped[-1] and stripped[0] in "'\"":
            values.append(stripped[1:-1])
        elif stripped in _WILDCARD_TOKENS:
            values.append(ANY)
        else:
            values.append(stripped)
    return values


def _split_csv(section: str) -> list[str]:
    """Split on commas while honouring single/double quotes."""
    parts: list[str] = []
    current: list[str] = []
    quote: str | None = None
    for ch in section:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch == ",":
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts
