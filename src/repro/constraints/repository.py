"""Rule sets (the paper's Σ) with attribute routing.

:class:`RuleSet` owns a collection of normal-form CFDs, assigns stable
names, validates them against a schema, and answers the two routing
questions the repair machinery asks constantly:

* which rules have attribute ``A`` as their RHS, and
* which rules touch attribute ``A`` anywhere (LHS or RHS).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.constraints.cfd import CFD
from repro.db.schema import Schema
from repro.errors import RuleError

__all__ = ["RuleSet"]


class RuleSet:
    """An ordered, named collection of normal-form CFDs.

    Parameters
    ----------
    rules:
        The CFDs; unnamed rules are assigned ``phi<k>`` names. Duplicate
        rules (same FD and pattern) are rejected.
    schema:
        Optional schema to validate attribute names against.

    Examples
    --------
    >>> from repro.constraints import parse_rules
    >>> rs = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
    >>> len(rs)
    1
    >>> [r.name for r in rs.rules_with_rhs("city")]
    ['phi1']
    """

    def __init__(self, rules: Iterable[CFD], schema: Schema | None = None) -> None:
        self._rules: list[CFD] = []
        self._by_name: dict[str, CFD] = {}
        self._by_rhs: dict[str, list[CFD]] = defaultdict(list)
        self._touching: dict[str, list[CFD]] = defaultdict(list)
        seen: set[CFD] = set()
        for rule in rules:
            if rule in seen:
                raise RuleError(f"duplicate rule: {rule!r}")
            seen.add(rule)
            if schema is not None:
                rule.validate_schema(schema)
            if not rule.name:
                rule = CFD(rule.lhs, rule.rhs, rule.pattern, name=f"phi{len(self._rules) + 1}")
            if rule.name in self._by_name:
                raise RuleError(f"duplicate rule name {rule.name!r}")
            self._rules.append(rule)
            self._by_name[rule.name] = rule
            self._by_rhs[rule.rhs].append(rule)
            for attr in rule.attributes:
                self._touching[attr].append(rule)

    # ------------------------------------------------------------------
    def rules_with_rhs(self, attribute: str) -> list[CFD]:
        """Rules whose RHS is *attribute* (copy)."""
        return list(self._by_rhs.get(attribute, ()))

    def rules_touching(self, attribute: str) -> list[CFD]:
        """Rules mentioning *attribute* on either side (copy)."""
        return list(self._touching.get(attribute, ()))

    def rules_with_lhs_attr(self, attribute: str) -> list[CFD]:
        """Rules with *attribute* somewhere on the LHS."""
        return [r for r in self._touching.get(attribute, ()) if attribute in r.lhs]

    def by_name(self, name: str) -> CFD:
        """Look a rule up by its name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise RuleError(f"no rule named {name!r}") from None

    @property
    def constant_rules(self) -> list[CFD]:
        """All constant CFDs, in rule order."""
        return [r for r in self._rules if r.is_constant]

    @property
    def variable_rules(self) -> list[CFD]:
        """All variable CFDs, in rule order."""
        return [r for r in self._rules if r.is_variable]

    def attributes(self) -> set[str]:
        """All attributes mentioned by any rule."""
        return set(self._touching)

    def constants_for_attribute(self, attribute: str) -> set[object]:
        """All constants any rule pattern assigns to *attribute*.

        This is the "values in the CFDs" pool searched first by
        scenario 3 of Algorithm 1.
        """
        values: set[object] = set()
        for rule in self._rules:
            if attribute in rule.pattern:
                entry = rule.pattern.get(attribute)
                if entry is not None and rule.pattern.is_constant_on(attribute):
                    values.add(entry)
        return values

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[CFD]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __getitem__(self, index: int) -> CFD:
        return self._rules[index]

    def __contains__(self, rule: object) -> bool:
        return rule in set(self._rules)

    def __repr__(self) -> str:
        kinds = f"{len(self.constant_rules)} constant, {len(self.variable_rules)} variable"
        return f"RuleSet({len(self._rules)} rules: {kinds})"
