"""Human-readable violation explanations.

A cleaning UI (and the interactive CLI) needs to tell the user *why* a
tuple is dirty: which rules it violates, with which partner tuples, and
what the rules expect. :func:`explain_tuple` assembles that from the
live violation detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.cfd import CFD
from repro.constraints.parser import format_cfd
from repro.constraints.violations import ViolationDetector

__all__ = ["RuleViolation", "TupleExplanation", "explain_tuple"]


@dataclass(frozen=True, slots=True)
class RuleViolation:
    """One rule a tuple currently violates.

    Attributes
    ----------
    rule:
        The violated CFD.
    kind:
        ``"constant"`` or ``"variable"``.
    expected:
        For a constant rule, the value the pattern demands for the RHS;
        ``None`` for variable rules.
    actual:
        The tuple's current RHS value.
    partners:
        For a variable rule, the tuples conflicting with this one.
    """

    rule: CFD
    kind: str
    expected: object
    actual: object
    partners: tuple[int, ...] = ()

    def describe(self) -> str:
        """One-line explanation suitable for terminal display."""
        rule_text = format_cfd(self.rule)
        if self.kind == "constant":
            return (
                f"violates {rule_text}: {self.rule.rhs} is {self.actual!r}, "
                f"pattern requires {self.expected!r}"
            )
        partner_text = ", ".join(f"t{p}" for p in sorted(self.partners)[:5])
        suffix = "..." if len(self.partners) > 5 else ""
        return (
            f"violates {rule_text}: {self.rule.rhs} = {self.actual!r} conflicts "
            f"with {partner_text}{suffix}"
        )


@dataclass(frozen=True, slots=True)
class TupleExplanation:
    """Everything the detector knows about one tuple's dirtiness."""

    tid: int
    values: dict[str, object]
    violations: tuple[RuleViolation, ...] = field(default_factory=tuple)

    @property
    def is_dirty(self) -> bool:
        """True when at least one rule is violated."""
        return bool(self.violations)

    def describe(self) -> str:
        """Multi-line explanation for terminal display."""
        if not self.violations:
            return f"t{self.tid}: clean"
        lines = [f"t{self.tid}: {len(self.violations)} violation(s)"]
        lines.extend(f"  - {v.describe()}" for v in self.violations)
        return "\n".join(lines)


def explain_tuple(detector: ViolationDetector, tid: int) -> TupleExplanation:
    """Explain why tuple *tid* is dirty (or report it clean).

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> from repro.constraints import RuleSet, ViolationDetector, parse_rules
    >>> db = Database(Schema("r", ["zip", "city"]), [["46360", "Westvile"]])
    >>> rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
    >>> explanation = explain_tuple(ViolationDetector(db, rules), 0)
    >>> explanation.is_dirty
    True
    >>> "Michigan City" in explanation.describe()
    True
    """
    row = detector.db.row(tid)
    violations: list[RuleViolation] = []
    for rule in detector.violated_rules(tid):
        actual = row[rule.rhs]
        if rule.is_constant:
            violations.append(
                RuleViolation(
                    rule=rule,
                    kind="constant",
                    expected=rule.rhs_constant,
                    actual=actual,
                )
            )
        else:
            violations.append(
                RuleViolation(
                    rule=rule,
                    kind="variable",
                    expected=None,
                    actual=actual,
                    partners=tuple(sorted(detector.partners(tid, rule))),
                )
            )
    return TupleExplanation(tid=tid, values=row.as_dict(), violations=tuple(violations))
