"""Conditional functional dependencies: patterns, parsing, violations, discovery."""

from repro.constraints.cfd import CFD, normalize
from repro.constraints.discovery import (
    discover_rules,
    discover_variable_cfds,
    fd_violation_rate,
    mine_constant_cfds,
)
from repro.constraints.explain import RuleViolation, TupleExplanation, explain_tuple
from repro.constraints.ind import IND, check_ind
from repro.constraints.parser import (
    format_cfd,
    load_rules,
    parse_cfd,
    parse_rules,
    save_rules,
)
from repro.constraints.pattern import ANY, PatternTuple, Wildcard
from repro.constraints.repository import RuleSet
from repro.constraints.violations import DirtyDelta, ViolationDetector, WhatIfOutcome

__all__ = [
    "ANY",
    "CFD",
    "DirtyDelta",
    "IND",
    "PatternTuple",
    "RuleSet",
    "RuleViolation",
    "TupleExplanation",
    "ViolationDetector",
    "WhatIfOutcome",
    "Wildcard",
    "check_ind",
    "discover_rules",
    "discover_variable_cfds",
    "explain_tuple",
    "fd_violation_rate",
    "format_cfd",
    "load_rules",
    "mine_constant_cfds",
    "normalize",
    "parse_cfd",
    "parse_rules",
    "save_rules",
]
