"""Pattern tableaux for conditional functional dependencies.

A CFD pattern assigns to each attribute either a constant from the
attribute's domain or the wildcard ``ANY`` (written ``-`` in the
paper's tableau notation). The paper's match operator ``≍`` is
implemented by :meth:`PatternTuple.matches`: a data value matches a
constant only by equality and matches ``ANY`` always.
"""

from __future__ import annotations

from collections.abc import Mapping

__all__ = ["ANY", "PatternTuple", "Wildcard"]


class Wildcard:
    """Singleton marker for the ``-`` (unconstrained) pattern value."""

    _instance: "Wildcard | None" = None

    def __new__(cls) -> "Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"

    def __reduce__(self):
        return (Wildcard, ())


#: The wildcard pattern value (the paper's ``-``).
ANY = Wildcard()


class PatternTuple:
    """A pattern over a set of attributes.

    Parameters
    ----------
    entries:
        Mapping from attribute name to either a constant value or
        :data:`ANY`.

    Examples
    --------
    >>> tp = PatternTuple({"zip": "46360", "city": ANY})
    >>> tp.matches({"zip": "46360", "city": "Michigan City"}.__getitem__)
    True
    >>> tp.is_constant_on("zip"), tp.is_constant_on("city")
    (True, False)
    """

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: Mapping[str, object]) -> None:
        self._entries = dict(entries)
        self._hash: int | None = None

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes constrained by this pattern, insertion-ordered."""
        return tuple(self._entries)

    def value(self, attribute: str) -> object:
        """The pattern entry for *attribute* (a constant or ``ANY``)."""
        return self._entries[attribute]

    def get(self, attribute: str, default: object = None) -> object:
        """Pattern entry for *attribute*, or *default* if unconstrained."""
        return self._entries.get(attribute, default)

    def is_constant_on(self, attribute: str) -> bool:
        """True when the entry for *attribute* is a constant."""
        return self._entries[attribute] is not ANY

    def constants(self) -> dict[str, object]:
        """All ``attribute -> constant`` entries (wildcards omitted)."""
        return {a: v for a, v in self._entries.items() if v is not ANY}

    def matches(self, getter, attributes: tuple[str, ...] | None = None) -> bool:
        """Evaluate the ``≍`` operator against a value accessor.

        Parameters
        ----------
        getter:
            Callable mapping an attribute name to the tuple's value.
        attributes:
            Restrict the check to these attributes (defaults to all
            pattern attributes).
        """
        attrs = attributes if attributes is not None else self.attributes
        for attr in attrs:
            expected = self._entries[attr]
            if expected is not ANY and getter(attr) != expected:
                return False
        return True

    def restrict(self, attributes: tuple[str, ...]) -> "PatternTuple":
        """A new pattern containing only the given attributes."""
        return PatternTuple({a: self._entries[a] for a in attributes})

    def items(self):
        """Iterate over ``(attribute, entry)`` pairs."""
        return self._entries.items()

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternTuple):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        # patterns are immutable value objects on every hot dict path
        # (rule -> state lookups, what-if outcome maps); cache the hash
        if self._hash is None:
            self._hash = hash(frozenset(self._entries.items()))
        return self._hash

    def __repr__(self) -> str:
        parts = ", ".join(f"{a}={'-' if v is ANY else repr(v)}" for a, v in self._entries.items())
        return f"PatternTuple({parts})"
