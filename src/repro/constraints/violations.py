"""Violation detection and bookkeeping for CFDs (paper Definition 1).

The detector maintains, incrementally under cell updates:

* per rule, the set of *violating* tuples and the pairwise violation
  count ``vio(D, {φ})`` of Definition 1;
* per rule, the *context size* ``|D(φ)|`` (tuples matching the LHS
  pattern) and the *satisfying count* ``|D ⊨ φ|`` (context tuples not in
  violation) used by the quality-loss equations;
* the global dirty-tuple set, kept in an *ordered* incremental view so
  consumers never re-sort it, and each tuple's violated-rule list.

For a variable CFD, context tuples are partitioned by their LHS values;
a partition of size ``G`` with RHS value counts ``{c_v}`` contributes
``G² − Σ c_v²`` pairwise violations and ``G`` violating tuples when it
holds more than one distinct RHS value (otherwise zero). Single-cell
updates touch at most two partitions per rule, so maintenance is cheap.

Full builds run on the database's dictionary-encoded columnar mirror:
context masks are vectorized code comparisons, and the per-partition
``G² − Σ c_v²`` counts come from ``np.unique``/``np.bincount`` group-id
arithmetic instead of per-tuple Python loops. The pre-columnar
per-tuple build survives as the *reference* path, and
:meth:`ViolationDetector.verify` cross-checks the incremental state
against fresh rebuilds through **both** paths.

The *what-if* API answers "how would applying update ⟨t, A, v⟩ change
``vio`` and ``|D ⊨ φ|``" — the quantities of Eq. 6. The batched
:meth:`ViolationDetector.what_if_many` evaluates every candidate repair
for a cell in one pass: the tuple's removal from its partitions is
computed once, then each candidate costs O(1) reads of the partition
statistics. The scalar :meth:`ViolationDetector.what_if` is a thin
wrapper over the batched path; the original apply-and-revert
implementation (byte-identical to the real update path) is kept as
``_what_if_reference`` for parity testing.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import namedtuple
from collections.abc import Mapping

import numpy as np

from repro.constraints.cfd import CFD
from repro.constraints.repository import RuleSet
from repro.db.changelog import CellChange
from repro.db.columnar import ColumnStore
from repro.db.database import Database

__all__ = ["DirtyDelta", "ViolationDetector", "WhatIfOutcome"]

#: Sentinel distinguishing "no LHS constant on this column" from a
#: constant that happens to equal ``None``.
_ABSENT = object()

#: Probe-signature cache bound (tuples tracked at once); the cache is
#: cleared wholesale when it fills — signatures are one gather to
#: recompute.
_SIG_CACHE_CAPACITY = 1 << 20


class WhatIfOutcome(
    namedtuple("WhatIfOutcome", ["vio_before", "vio_after", "satisfying_after", "vio_reduction"])
):
    """Effect of a hypothetical single-cell update on one rule.

    A named tuple (not a dataclass): the batched what-if path creates
    one outcome per rule per candidate, and tuple construction is the
    cheapest immutable record Python offers. ``vio_reduction`` is
    materialised as a fourth field (derived in ``__new__``, not a
    property) because the VOI arithmetic reads it once per rule per
    candidate — far more often than outcomes are created.

    Attributes
    ----------
    vio_before / vio_after:
        ``vio(D, {φ})`` and ``vio(D^r, {φ})`` of Eq. 6.
    satisfying_after:
        ``|D^r ⊨ φ|``, the number of context tuples satisfying the rule
        after the hypothetical update.
    vio_reduction:
        ``vio(D,{φ}) − vio(D^r,{φ})``: positive when the update helps.
    """

    __slots__ = ()

    def __new__(cls, vio_before: int, vio_after: int, satisfying_after: int, vio_reduction=None):
        # the fourth parameter exists so namedtuple machinery that passes
        # all fields back in (_replace, _make, copy, pickle) keeps
        # working; the stored value is always re-derived so the
        # invariant vio_reduction == vio_before - vio_after holds
        return tuple.__new__(
            cls, (vio_before, vio_after, satisfying_after, vio_before - vio_after)
        )

    @classmethod
    def _make(cls, iterable):
        # namedtuple's _make bypasses __new__ via tuple.__new__; route it
        # through __new__ so _replace/_make re-derive vio_reduction
        return cls(*iterable)


class _OutcomeMap(Mapping):
    """Read-only ``rule -> WhatIfOutcome`` view over parallel lists.

    Building a real dict per probe re-hashes every rule key; with 40+
    rules per attribute that dominates the batched what-if. This view
    shares one prebuilt ``rule -> position`` index per attribute, so
    constructing a result is two attribute writes, and keys are only
    hashed on explicit lookups. :class:`collections.abc.Mapping`
    supplies dict-compatible equality, ``get``, and containment.
    ``keys``/``values``/``items`` hand out fresh lists (ordinary dict
    views are lazy re-lookups, which would re-hash every key) — the
    internal lists are shared across probes and must never escape.
    """

    __slots__ = ("_rules", "_outcomes", "_index")

    def __init__(self, rules: list, outcomes: list, index: dict) -> None:
        self._rules = rules
        self._outcomes = outcomes
        self._index = index

    def __getitem__(self, rule):
        position = self._index.get(rule)
        if position is None:
            raise KeyError(rule)
        return self._outcomes[position]

    def __iter__(self):
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def keys(self):
        return list(self._rules)

    def values(self):
        return list(self._outcomes)

    def items(self):
        return list(zip(self._rules, self._outcomes))

    def __repr__(self) -> str:
        return repr(dict(zip(self._rules, self._outcomes)))


class DirtyDelta:
    """Cursor over dirty-set transitions for one delta consumer.

    Handed out by :meth:`ViolationDetector.dirty_delta`; the detector
    adds every tuple whose dirty status *flips* (clean→dirty or
    dirty→clean) to the cursor. Consumers call :meth:`poll` to drain
    what accumulated since their last poll and walk only those tuples
    instead of the whole dirty set.
    """

    __slots__ = ("_touched", "_full")

    def __init__(self) -> None:
        self._touched: set[int] = set()
        # a fresh cursor has seen nothing yet; the first poll tells the
        # consumer to do one full sweep, as does any detector rebuild
        self._full = True

    def poll(self) -> tuple[int, ...] | None:
        """Tuples whose dirty status flipped since the last poll.

        Returns ``None`` when everything may have changed (first poll,
        or the detector rebuilt its statistics from scratch) — the
        consumer must fall back to a full sweep.
        """
        if self._full:
            self._full = False
            self._touched.clear()
            return None
        touched = tuple(sorted(self._touched))
        self._touched.clear()
        return touched


class _DirtyTracker:
    """Ordered incremental view of the dirty-tuple set.

    Counts, per tuple, how many rule states currently mark it violating
    and keeps the tuples with a positive count in a sorted list — the
    generator and the consistency manager iterate dirty tuples in tid
    order on every refresh, and this view replaces their per-call
    ``sorted(...)`` over the whole dirty set. Status flips are fanned
    out to registered :class:`DirtyDelta` cursors.
    """

    __slots__ = ("_counts", "_ordered", "_sinks")

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._ordered: list[int] = []
        self._sinks: list[DirtyDelta] = []

    def add_sink(self, sink: DirtyDelta) -> None:
        self._sinks.append(sink)

    def increment(self, tid: int) -> None:
        count = self._counts.get(tid, 0)
        self._counts[tid] = count + 1
        if count == 0:
            insort(self._ordered, tid)
            for sink in self._sinks:
                sink._touched.add(tid)

    def decrement(self, tid: int) -> None:
        count = self._counts[tid] - 1
        if count == 0:
            del self._counts[tid]
            del self._ordered[bisect_left(self._ordered, tid)]
            for sink in self._sinks:
                sink._touched.add(tid)
        else:
            self._counts[tid] = count

    def rebuild(self, states) -> None:
        counts: dict[int, int] = {}
        for state in states:
            for tid in state.violating:
                counts[tid] = counts.get(tid, 0) + 1
        self._counts = counts
        self._ordered = sorted(counts)
        for sink in self._sinks:
            sink._full = True

    def contains(self, tid: int) -> bool:
        return tid in self._counts

    def as_set(self) -> set[int]:
        return set(self._counts)

    def ordered(self) -> tuple[int, ...]:
        return tuple(self._ordered)

    def __len__(self) -> int:
        return len(self._counts)


class _ConstantRuleState:
    """Violation bookkeeping for one constant CFD."""

    __slots__ = (
        "rule",
        "_tracker",
        "_lhs_pos",
        "_rhs_pos",
        "_lhs_consts",
        "_rhs_const",
        "context",
        "violating",
    )

    def __init__(self, rule: CFD, db: Database, tracker: _DirtyTracker) -> None:
        self.rule = rule
        self._tracker = tracker
        schema = db.schema
        self._lhs_pos = schema.positions(rule.lhs)
        self._rhs_pos = schema.position(rule.rhs)
        self._lhs_consts = [
            (schema.position(attr), value) for attr, value in rule.lhs_constants().items()
        ]
        self._rhs_const = rule.rhs_constant
        self.context: set[int] = set()
        self.violating: set[int] = set()

    def reset(self) -> None:
        self.context.clear()
        self.violating.clear()

    def matches_lhs(self, values) -> bool:
        for pos, const in self._lhs_consts:
            if values[pos] != const:
                return False
        return True

    def _mark(self, tid: int) -> None:
        if tid not in self.violating:
            self.violating.add(tid)
            self._tracker.increment(tid)

    def _unmark(self, tid: int) -> None:
        if tid in self.violating:
            self.violating.remove(tid)
            self._tracker.decrement(tid)

    def update_cell(self, tid: int, values) -> bool:
        """Re-evaluate tuple *tid* whose values are now *values*.

        Returns True when the rule's observable statistics moved. For a
        constant rule every statistic the what-if and weight arithmetic
        read — ``len(context)``, ``len(violating)`` — is a set size, so
        the statistics move exactly when the tuple's context or
        violating membership toggles.
        """
        if self.matches_lhs(values):
            moved = tid not in self.context
            if moved:
                self.context.add(tid)
            if values[self._rhs_pos] != self._rhs_const:
                if tid not in self.violating:
                    self._mark(tid)
                    moved = True
            elif tid in self.violating:
                self._unmark(tid)
                moved = True
            return moved
        moved = tid in self.context
        if moved:
            self.context.discard(tid)
        if tid in self.violating:
            self._unmark(tid)
            moved = True
        return moved

    def drop_tuple(self, tid: int) -> None:
        """Forget tuple *tid* entirely (pre-deletion hook)."""
        self.context.discard(tid)
        self._unmark(tid)

    # -- columnar full build ----------------------------------------------
    def bulk_build(self, cols: ColumnStore) -> None:
        """Vectorized rebuild from the dictionary-encoded columns."""
        if len(cols) == 0:
            return
        mask = None
        for pos, const in self._lhs_consts:
            code = cols.code_for(pos, const)
            if code < 0:
                return  # constant never stored: empty context
            eq = cols.codes(pos) == code
            mask = eq if mask is None else (mask & eq)
        tids = cols.tids()
        rhs_codes = cols.codes(self._rhs_pos)
        if mask is not None:
            tids = tids[mask]
            rhs_codes = rhs_codes[mask]
        self.context = set(tids.tolist())
        rhs_code = cols.code_for(self._rhs_pos, self._rhs_const)
        self.violating = set(tids[rhs_codes != rhs_code].tolist())

    # -- queries ----------------------------------------------------------
    @property
    def total_vio(self) -> int:
        return len(self.violating)

    @property
    def violating_count(self) -> int:
        return len(self.violating)

    @property
    def context_size(self) -> int:
        return len(self.context)

    def vio_tuple(self, tid: int) -> int:
        return 1 if tid in self.violating else 0

    def is_violating(self, tid: int) -> bool:
        return tid in self.violating

def _bulk_build_single_const(
    states: list[_ConstantRuleState], q: int, cols: ColumnStore
) -> None:
    """Shared columnar build for constant rules keyed by one LHS column.

    Hospital-style rule sets carry dozens of constant CFDs over the same
    LHS attribute (one per zip code). Instead of one full-column scan
    per rule, partition the column once (argsort + boundaries) and hand
    every rule its constant's row slice.
    """
    n = len(cols)
    if n == 0:
        return
    col = cols.codes(q)
    order = np.argsort(col, kind="stable")
    codes_sorted = col[order]
    tids_sorted = cols.tids()[order].tolist()
    uniq, starts = np.unique(codes_sorted, return_index=True)
    bounds = starts.tolist()
    bounds.append(n)
    span_of = {code: (bounds[i], bounds[i + 1]) for i, code in enumerate(uniq.tolist())}
    rhs_cache: dict[int, list[int]] = {}
    for state in states:
        span = span_of.get(cols.code_for(q, state._lhs_consts[0][1]))
        if span is None:
            continue  # constant never stored: empty context
        lo, hi = span
        tids_slice = tids_sorted[lo:hi]
        state.context = set(tids_slice)
        rhs_pos = state._rhs_pos
        rhs_sorted = rhs_cache.get(rhs_pos)
        if rhs_sorted is None:
            rhs_sorted = rhs_cache[rhs_pos] = cols.codes(rhs_pos)[order].tolist()
        rhs_code = cols.code_for(rhs_pos, state._rhs_const)
        state.violating = {
            tid for tid, rc in zip(tids_slice, rhs_sorted[lo:hi]) if rc != rhs_code
        }


class _ConstantProbePlan:
    """Sparse batched what-if over all constant CFDs touching one attribute.

    Per probed cell, a scalar what-if must report an outcome for every
    rule touching the attribute — on the hospital workload that is 40
    constant rules per ``zip`` probe, and per-rule evaluation dominates
    the VOI hot path. The plan exploits the sparsity of a single-cell
    probe instead of scanning rules: writing ``t[A] = v`` can only move
    the statistics of

    * a rule whose LHS constant on ``A`` equals the tuple's *current*
      code (the tuple may leave its context) or equals ``v``'s code
      (the tuple may enter it) — found by one reverse-index lookup
      ``constant code -> rule indices``;
    * a rule with ``A`` as RHS whose context contains the tuple —
      found by a reverse index over the rule's single LHS-constant
      column;
    * the rare general rules (multi-constant LHS, wildcard mixes),
      which are checked individually.

    Everything else reuses one cached "unchanged" outcome per rule,
    re-snapshotted only when the detector's epoch moves (i.e. after real
    writes) — a probe burst between writes costs a few dictionary
    lookups and touches two or three rules, no matter how many rules
    share the attribute.

    Rule constants are *encoded into* the column vocabularies (not just
    looked up), so code equality is exact value equality even for
    constants that never occur in the data.
    """

    __slots__ = (
        "states",
        "rules",
        "_cols",
        "_pos",
        "_code_of",
        "_simple_by_code",
        "_rhs_ctx_maps",
        "_check",
        "_state_codes",
        "_epoch",
        "_vio_list",
        "_ctx_list",
        "_unchanged",
    )

    def __init__(self, states: list[_ConstantRuleState], pos: int, cols: ColumnStore) -> None:
        self.states = states
        self.rules = [state.rule for state in states]
        self._cols = cols
        self._pos = pos
        # probes look codes up without allocating: a candidate value that
        # was never stored maps to -1, which can never equal a stored row
        # code or a pre-encoded rule-constant code, so the arithmetic
        # stays exact and the vocabulary does not grow with probe traffic
        self._code_of = cols.vocabulary(pos).code_of
        # constant code on the probed column -> rule indices (rules whose
        # whole LHS pattern is that one constant)
        self._simple_by_code: dict[int, list[int]] = {}
        # per LHS-constant column: code -> indices of RHS-probed rules
        rhs_maps: dict[int, dict[int, list[int]]] = {}
        # general rules, evaluated individually on every probe
        self._check: list[int] = []
        # per rule: ([(column, constant code), ...], rhs column, rhs constant code)
        self._state_codes: list[tuple[list[tuple[int, int]], int, int]] = []
        for i, state in enumerate(states):
            consts = [
                (q, cols.vocabulary(q).encode(c)) for q, c in state._lhs_consts
            ]
            rhs_code = cols.vocabulary(state._rhs_pos).encode(state._rhs_const)
            self._state_codes.append((consts, state._rhs_pos, rhs_code))
            if state._rhs_pos == pos:
                # probe hits the RHS: the rule moves iff the tuple is in context
                if len(consts) == 1:
                    q, code = consts[0]
                    rhs_maps.setdefault(q, {}).setdefault(code, []).append(i)
                else:
                    self._check.append(i)
            else:
                at_pos = [code for q, code in consts if q == pos]
                if not at_pos:
                    # probe on a wildcard LHS column: context and RHS are
                    # both untouched — the rule can never move
                    continue
                if len(consts) == 1:
                    self._simple_by_code.setdefault(at_pos[0], []).append(i)
                else:
                    self._check.append(i)
        self._rhs_ctx_maps = list(rhs_maps.items())
        self._epoch = -1
        self._vio_list: list[int] = []
        self._ctx_list: list[int] = []
        self._unchanged: list[WhatIfOutcome] = []

    def refresh(self, epoch: int) -> None:
        """Re-snapshot per-rule aggregates after the detector changed."""
        if epoch == self._epoch:
            return
        self._vio_list = [len(state.violating) for state in self.states]
        self._ctx_list = [len(state.context) for state in self.states]
        self._unchanged = [
            WhatIfOutcome(vio, vio, ctx - vio)
            for vio, ctx in zip(self._vio_list, self._ctx_list)
        ]
        self._epoch = epoch

    def _scalar_outcome(self, i: int, row: int, vcode: int) -> WhatIfOutcome:
        """Exact outcome for rule *i*, from codes alone."""
        consts, rhs_pos, rhs_const = self._state_codes[i]
        code_at = self._cols.code_at
        pos = self._pos
        in_before = in_after = True
        for q, code in consts:
            if q == pos:
                if code_at(row, q) != code:
                    in_before = False
                if vcode != code:
                    in_after = False
            elif code_at(row, q) != code:
                in_before = in_after = False
                break
        rhs_before = code_at(row, rhs_pos)
        rhs_after = vcode if rhs_pos == pos else rhs_before
        viol_before = in_before and rhs_before != rhs_const
        viol_after = in_after and rhs_after != rhs_const
        vio_before = self._vio_list[i]
        vio_after = vio_before - viol_before + viol_after
        sat_after = self._ctx_list[i] - in_before + in_after - vio_after
        return WhatIfOutcome(vio_before, vio_after, sat_after)

    def _base_indices(self, row: int, row_code: int) -> tuple | list:
        """Candidate-independent rule indices a probe on *row* can move.

        The rules the tuple might currently be in context of: simple
        LHS-constant rules matching the row's current code, RHS-probed
        rules whose context contains the row, and the always-checked
        general shapes. Shared by :meth:`outcomes_many` and
        :meth:`moved_many` — the dense/sparse parity guarantee depends
        on both reading the same index set.
        """
        code_at = self._cols.code_at
        base = self._simple_by_code.get(row_code, ())
        for q, cmap in self._rhs_ctx_maps:
            hits = cmap.get(code_at(row, q))
            if hits:
                base = list(base) + hits if base else hits
        if self._check:
            base = list(base) + self._check
        return base

    def outcomes_many(self, tid: int, values: list) -> list[list[WhatIfOutcome]]:
        """Per candidate, one outcome per rule (aligned with ``rules``)."""
        cols = self._cols
        row = cols.position_of(tid)
        row_code = cols.code_at(row, self._pos)
        simple = self._simple_by_code
        base = self._base_indices(row, row_code)
        unchanged = self._unchanged
        results: list[list[WhatIfOutcome]] = []
        for value in values:
            vcode = self._code_of(value)
            if vcode == row_code:
                results.append(unchanged)
                continue
            idxs = simple.get(vcode, ())
            if base:
                idxs = list(idxs) + list(base) if idxs else base
            if not idxs:
                results.append(unchanged)
                continue
            outcomes = list(unchanged)
            for i in idxs:
                outcomes[i] = self._scalar_outcome(i, row, vcode)
            results.append(outcomes)
        return results

    def moved_many(self, tid: int, values: list) -> list[list[tuple[int, WhatIfOutcome]]]:
        """Per candidate, ``(rule index, outcome)`` pairs that *moved*.

        The sparse companion of :meth:`outcomes_many`: only rules whose
        violation count would change (``vio_reduction != 0``) are
        reported, in ascending rule-index order — every omitted rule's
        outcome is its cached "unchanged" snapshot, which contributes
        exactly zero to the Eq. 6 sum. No full per-candidate outcome
        list is materialised.
        """
        cols = self._cols
        row = cols.position_of(tid)
        row_code = cols.code_at(row, self._pos)
        simple = self._simple_by_code
        base = self._base_indices(row, row_code)
        results: list[list[tuple[int, WhatIfOutcome]]] = []
        empty: list[tuple[int, WhatIfOutcome]] = []
        for value in values:
            vcode = self._code_of(value)
            if vcode == row_code:
                results.append(empty)
                continue
            idxs = simple.get(vcode, ())
            if base:
                idxs = list(idxs) + list(base) if idxs else base
            if not idxs:
                results.append(empty)
                continue
            moved: list[tuple[int, WhatIfOutcome]] = []
            for i in sorted(idxs):
                outcome = self._scalar_outcome(i, row, vcode)
                if outcome[3] != 0:  # vio_reduction
                    moved.append((i, outcome))
            results.append(moved)
        return results



class _WritePlan:
    """Per-attribute dispatch of real writes to the rules they can move.

    The incremental maintenance path used to replay every write through
    *every* rule state touching the written attribute — on the hospital
    workload that is 40+ constant CFDs per ``zip`` write, almost all of
    which are no-ops (the tuple is in neither the old nor the new
    constant's context). Mirroring :class:`_ConstantProbePlan`, the
    write plan exploits the sparsity of a single-cell write: setting
    ``t[A] = new`` (from ``old``) can only move

    * a constant rule with an LHS constant on ``A`` equal to ``old``
      (the tuple may leave its context) or to ``new`` (it may enter) —
      one reverse-index lookup ``constant code -> rule states``;
    * a constant rule with ``A`` as RHS whose single-constant LHS
      matches the tuple's current row — a reverse index over that LHS
      column's codes;
    * variable rules and rare general shapes (multi-constant LHS with
      the RHS on ``A``, wildcard mixes), which always re-evaluate.

    Rule constants are *encoded into* the column vocabularies at plan
    build, so code equality is exact value equality even for constants
    absent from the data.
    """

    __slots__ = ("_always", "_lhs_by_code", "_rhs_ctx", "_code_of", "_cols")

    def __init__(self, states: list, pos: int, cols: ColumnStore) -> None:
        self._cols = cols
        self._code_of = cols.vocabulary(pos).code_of
        always: list = []
        lhs_by_code: dict[int, list] = {}
        rhs_maps: dict[int, dict[int, list]] = {}
        for state in states:
            if not isinstance(state, _ConstantRuleState):
                always.append(state)
                continue
            consts = state._lhs_consts
            consts_on_pos = [c for q, c in consts if q == pos]
            if state._rhs_pos == pos:
                if len(consts) == 1 and consts[0][0] != pos:
                    q, const = consts[0]
                    code = cols.vocabulary(q).encode(const)
                    rhs_maps.setdefault(q, {}).setdefault(code, []).append(state)
                else:
                    always.append(state)
            elif consts_on_pos:
                code = cols.vocabulary(pos).encode(consts_on_pos[0])
                lhs_by_code.setdefault(code, []).append(state)
            else:
                # constant rule listed under A without a constant on A
                # and with its RHS elsewhere — defensively re-evaluate
                always.append(state)
        self._always = always
        self._lhs_by_code = lhs_by_code
        self._rhs_ctx = list(rhs_maps.items())

    def affected(self, tid: int, old: object, new: object) -> list:
        """Rule states whose statistics the write ``old -> new`` may move."""
        states = list(self._always)
        lhs = self._lhs_by_code
        if lhs:
            # old != new is guaranteed by set_value's no-op check, and
            # vocabulary codes follow dict equality, so the two lookups
            # can never return the same bucket
            hits = lhs.get(self._code_of(old))
            if hits:
                states.extend(hits)
            hits = lhs.get(self._code_of(new))
            if hits:
                states.extend(hits)
        if self._rhs_ctx:
            cols = self._cols
            row = cols.position_of(tid)
            for q, cmap in self._rhs_ctx:
                hits = cmap.get(cols.code_at(row, q))
                if hits:
                    states.extend(hits)
        return states


class _Group:
    """One LHS-value partition of a variable CFD's context.

    After a columnar full build the per-value tid buckets stay *lazy*:
    the group holds a slice descriptor into the build's partition-sorted
    arrays and materialises its ``{value: {tids}}`` dict only when a
    mutation or a partner/histogram query actually touches the group.
    ``size`` and ``distinct`` are always available without
    materialising.
    """

    __slots__ = ("_members", "size", "_lazy")

    def __init__(self) -> None:
        self._members: dict[object, set[int]] = {}
        self.size = 0
        # (shared build arrays, first pair index, one-past-last pair index)
        self._lazy: tuple | None = None

    @property
    def members(self) -> dict[object, set[int]]:
        if self._lazy is not None:
            (pair_val_idx, starts, ends, tids_sorted, rhs_values), lo, hi = self._lazy
            members = {}
            for pi in range(lo, hi):
                members[rhs_values[pair_val_idx[pi]]] = set(tids_sorted[starts[pi] : ends[pi]])
            self._members = members
            self._lazy = None
        return self._members

    def count(self, value: object) -> int:
        bucket = self.members.get(value)
        return len(bucket) if bucket is not None else 0

    @property
    def distinct(self) -> int:
        if self._lazy is not None:
            return self._lazy[2] - self._lazy[1]
        return len(self._members)

    def all_tids(self) -> list[int]:
        if self._lazy is not None:
            # pairs of one partition are contiguous in the sorted layout
            (__, starts, ends, tids_sorted, __v), lo, hi = self._lazy
            return tids_sorted[starts[lo] : ends[hi - 1]]
        tids: list[int] = []
        for bucket in self._members.values():
            tids.extend(bucket)
        return tids


class _VariableRuleState:
    """Violation bookkeeping for one variable CFD."""

    __slots__ = (
        "rule",
        "_tracker",
        "_lhs_pos",
        "_rhs_pos",
        "_lhs_consts",
        "_key_idx_of",
        "groups",
        "membership",
        "total_vio",
        "violating",
        "context_size",
    )

    def __init__(self, rule: CFD, db: Database, tracker: _DirtyTracker) -> None:
        self.rule = rule
        self._tracker = tracker
        schema = db.schema
        self._lhs_pos = schema.positions(rule.lhs)
        self._rhs_pos = schema.position(rule.rhs)
        self._lhs_consts = [
            (schema.position(attr), value) for attr, value in rule.lhs_constants().items()
        ]
        self._key_idx_of = {p: i for i, p in enumerate(self._lhs_pos)}
        self.groups: dict[tuple[object, ...], _Group] = {}
        self.membership: dict[int, tuple[tuple[object, ...], object]] = {}
        self.total_vio = 0
        self.violating: set[int] = set()
        self.context_size = 0

    def reset(self) -> None:
        self.groups.clear()
        self.membership.clear()
        self.violating.clear()
        self.total_vio = 0
        self.context_size = 0

    def matches_lhs(self, values) -> bool:
        for pos, const in self._lhs_consts:
            if values[pos] != const:
                return False
        return True

    def key_of(self, values) -> tuple[object, ...]:
        return tuple(values[p] for p in self._lhs_pos)

    def _mark(self, tid: int) -> None:
        if tid not in self.violating:
            self.violating.add(tid)
            self._tracker.increment(tid)

    def _unmark(self, tid: int) -> None:
        if tid in self.violating:
            self.violating.remove(tid)
            self._tracker.decrement(tid)

    # -- incremental core ------------------------------------------------
    def _remove(self, tid: int) -> None:
        key, value = self.membership.pop(tid)
        group = self.groups[key]
        size = group.size
        cv = group.count(value)
        self.total_vio -= 2 * (size - cv)
        distinct_before = group.distinct
        distinct_after = distinct_before - 1 if cv == 1 else distinct_before
        was_mixed = distinct_before >= 2
        stays_mixed = distinct_after >= 2
        bucket = group.members[value]
        bucket.discard(tid)
        if not bucket:
            del group.members[value]
        group.size = size - 1
        if was_mixed and not stays_mixed:
            self._unmark(tid)
            for member in group.all_tids():
                self._unmark(member)
        elif was_mixed:
            self._unmark(tid)
        if group.size == 0:
            del self.groups[key]
        self.context_size -= 1

    def _add(self, tid: int, key: tuple[object, ...], value: object) -> None:
        group = self.groups.get(key)
        if group is None:
            group = self.groups[key] = _Group()
        size = group.size
        cv = group.count(value)
        self.total_vio += 2 * (size - cv)
        distinct_before = group.distinct
        distinct_after = distinct_before + 1 if cv == 0 else distinct_before
        becomes_mixed = distinct_after >= 2
        if becomes_mixed and distinct_before < 2:
            for member in group.all_tids():
                self._mark(member)
            self._mark(tid)
        elif becomes_mixed:
            self._mark(tid)
        group.members.setdefault(value, set()).add(tid)
        group.size = size + 1
        self.membership[tid] = (key, value)
        self.context_size += 1

    def update_cell(self, tid: int, values) -> bool:
        """Re-evaluate tuple *tid* whose values are now *values*.

        Returns True when the rule's statistics may have moved. A
        variable rule's what-if arithmetic reads partition internals
        (group sizes, per-value counts), so any remove/add cycle counts
        as movement; only a tuple outside the context both before and
        after is a provable no-op.
        """
        in_before = tid in self.membership
        if in_before:
            self._remove(tid)
        if self.matches_lhs(values):
            self._add(tid, self.key_of(values), values[self._rhs_pos])
            return True
        return in_before

    def drop_tuple(self, tid: int) -> None:
        """Forget tuple *tid* entirely (pre-deletion hook)."""
        if tid in self.membership:
            self._remove(tid)

    # -- columnar full build ----------------------------------------------
    def bulk_build(self, cols: ColumnStore) -> None:
        """Vectorized rebuild from the dictionary-encoded columns.

        Context masks, LHS partition ids and the per-partition
        ``G² − Σ c_v²`` counts are all computed with array arithmetic;
        the Python-side group/membership structures (needed by the
        incremental path and the partner queries) are then assembled in
        bulk from the sorted partition layout.
        """
        if len(cols) == 0:
            return
        mask = None
        for pos, const in self._lhs_consts:
            code = cols.code_for(pos, const)
            if code < 0:
                return
            eq = cols.codes(pos) == code
            mask = eq if mask is None else (mask & eq)
        tids = cols.tids()
        if mask is not None:
            ctx = np.nonzero(mask)[0]
        else:
            ctx = np.arange(len(cols))
        m = int(ctx.size)
        if m == 0:
            return
        ctx_tids = tids[ctx]

        # dense partition ids from the LHS code columns (re-compressed
        # after every column so the combined key never overflows int64)
        lhs_cols = [cols.codes(p)[ctx] for p in self._lhs_pos]
        combined = lhs_cols[0]
        if len(lhs_cols) > 1:
            # fuse the key columns arithmetically (codes are dense, so the
            # vocabulary sizes bound each digit) — one np.unique total
            combined = combined.astype(np.int64)
            bound = len(cols.vocabulary(self._lhs_pos[0]))
            for p, col in zip(self._lhs_pos[1:], lhs_cols[1:]):
                card = len(cols.vocabulary(p))
                if bound * card >= 2**62:  # pragma: no cover - very wide keys
                    combined = np.unique(combined, return_inverse=True)[1]
                    bound = int(combined.max()) + 1
                combined = combined * card + col
                bound *= card
        uniq_keys, gid = np.unique(combined, return_inverse=True)
        ngroups = len(uniq_keys)
        sizes = np.bincount(gid, minlength=ngroups)

        # (partition, RHS value) pair statistics
        rhs_codes = cols.codes(self._rhs_pos)[ctx]
        rhs_uniq, rhs_inv = np.unique(rhs_codes, return_inverse=True)
        n_rhs = len(rhs_uniq)
        pair = gid * n_rhs + rhs_inv
        order = np.argsort(pair, kind="stable")
        pair_sorted = pair[order]
        starts = np.nonzero(np.concatenate(([True], pair_sorted[1:] != pair_sorted[:-1])))[0]
        ends = np.concatenate((starts[1:], [m]))
        pair_counts = ends - starts
        pair_gid = pair_sorted[starts] // n_rhs
        distinct = np.bincount(pair_gid, minlength=ngroups)
        self.total_vio = int(
            (sizes.astype(np.int64) ** 2).sum() - (pair_counts.astype(np.int64) ** 2).sum()
        )
        self.context_size = m
        mixed = distinct >= 2
        self.violating = set(ctx_tids[mixed[gid]].tolist())

        # decode one representative row per partition into a key tuple
        first_rows = np.zeros(ngroups, dtype=np.int64)
        first_rows[gid[::-1]] = np.arange(m - 1, -1, -1)
        key_columns = [
            cols.vocabulary(p).decode_many(col[first_rows].tolist())
            for p, col in zip(self._lhs_pos, lhs_cols)
        ]
        keys = list(zip(*key_columns))
        rhs_values = cols.vocabulary(self._rhs_pos).decode_many(rhs_uniq.tolist())

        group_list = [_Group() for __ in range(ngroups)]
        self.groups = dict(zip(keys, group_list))
        # per-value tid buckets stay lazy: groups keep a slice into the
        # shared partition-sorted layout and materialise on first touch
        shared = (
            (pair_sorted[starts] % n_rhs).tolist(),
            starts.tolist(),
            ends.tolist(),
            ctx_tids[order].tolist(),
            rhs_values,
        )
        gbounds = np.searchsorted(pair_gid, np.arange(ngroups + 1)).tolist()
        for g, (group, size) in enumerate(zip(group_list, sizes.tolist())):
            group.size = size
            group._lazy = (shared, gbounds[g], gbounds[g + 1])
        key_per_row = [keys[g] for g in gid.tolist()]
        rhs_per_row = [rhs_values[i] for i in rhs_inv.tolist()]
        self.membership = dict(zip(ctx_tids.tolist(), zip(key_per_row, rhs_per_row)))

    # -- queries ----------------------------------------------------------
    @property
    def violating_count(self) -> int:
        return len(self.violating)

    def vio_tuple(self, tid: int) -> int:
        entry = self.membership.get(tid)
        if entry is None:
            return 0
        key, value = entry
        group = self.groups[key]
        return group.size - group.count(value)

    def is_violating(self, tid: int) -> bool:
        return tid in self.violating

    def partners(self, tid: int) -> set[int]:
        """Tuples violating the rule together with *tid*."""
        entry = self.membership.get(tid)
        if entry is None:
            return set()
        key, value = entry
        group = self.groups[key]
        others: set[int] = set()
        for other_value, bucket in group.members.items():
            if other_value != value:
                others.update(bucket)
        return others

    def group_value_counts(self, tid: int) -> dict[object, int]:
        """RHS value histogram of *tid*'s partition (empty if out of context)."""
        entry = self.membership.get(tid)
        if entry is None:
            return {}
        group = self.groups[entry[0]]
        return {value: len(bucket) for value, bucket in group.members.items()}

    def group_members(self, tid: int) -> set[int]:
        """All tuples in *tid*'s partition, including *tid* itself."""
        entry = self.membership.get(tid)
        if entry is None:
            return set()
        return set(self.groups[entry[0]].all_tids())

    # -- batched what-if ---------------------------------------------------
    def what_if_many(self, tid: int, row, pos: int, current, candidates) -> list[WhatIfOutcome]:
        """Outcomes of hypothetically writing each candidate into the cell.

        The tuple's removal from its current partition is computed once;
        every candidate is then an O(1) read of the partition statistics
        ("one pass over partition stats" — no apply/revert cycles, no
        state mutation).
        """
        vio_before = self.total_vio
        viol_count = len(self.violating)
        identity = None

        entry = self.membership.get(tid)
        if entry is not None:
            key0, val0 = entry
            group0 = self.groups[key0]
            size0 = group0.size
            c0 = group0.count(val0)
            base_vio = vio_before - 2 * (size0 - c0)
            distinct0 = group0.distinct
            distinct0_after = distinct0 - 1 if c0 == 1 else distinct0
            base_viol = (
                viol_count
                - (size0 if distinct0 >= 2 else 0)
                + (size0 - 1 if distinct0_after >= 2 else 0)
            )
            base_ctx = self.context_size - 1
            base_key = key0
        else:
            key0 = None
            group0 = None
            size0 = c0 = distinct0_after = 0
            base_vio = vio_before
            base_viol = viol_count
            base_ctx = self.context_size
            base_key = self.key_of(row)

        others_match = True
        pos_const = _ABSENT
        if self._lhs_consts:
            for p, c in self._lhs_consts:
                if p == pos:
                    pos_const = c
                elif row[p] != c:
                    others_match = False
                    break
        key_idx = self._key_idx_of.get(pos)
        is_rhs = pos == self._rhs_pos
        rhs_current = row[self._rhs_pos]

        outcomes = []
        for value in candidates:
            if value == current:
                if identity is None:
                    identity = WhatIfOutcome(
                        vio_before, vio_before, self.context_size - viol_count
                    )
                outcomes.append(identity)
                continue
            in_ctx = others_match and (pos_const is _ABSENT or value == pos_const)
            if not in_ctx:
                outcomes.append(WhatIfOutcome(vio_before, base_vio, base_ctx - base_viol))
                continue
            if key_idx is None:
                new_key = base_key
            else:
                new_key = base_key[:key_idx] + (value,) + base_key[key_idx + 1 :]
            new_val = value if is_rhs else rhs_current
            if entry is not None and new_key == key0:
                # re-entering the partition the tuple was lifted from
                size_n = size0 - 1
                cnt_n = group0.count(new_val) - (1 if new_val == val0 else 0)
                dist_n = distinct0_after
            else:
                group = self.groups.get(new_key)
                if group is None:
                    size_n = cnt_n = dist_n = 0
                else:
                    size_n = group.size
                    cnt_n = group.count(new_val)
                    dist_n = group.distinct
            vio_after = base_vio + 2 * (size_n - cnt_n)
            dist_after = dist_n + (1 if cnt_n == 0 else 0)
            viol_after = (
                base_viol
                - (size_n if dist_n >= 2 else 0)
                + (size_n + 1 if dist_after >= 2 else 0)
            )
            outcomes.append(WhatIfOutcome(vio_before, vio_after, base_ctx + 1 - viol_after))
        return outcomes


class ViolationDetector:
    """Incremental CFD-violation tracker over a live database.

    The detector registers itself as a database listener at
    construction and stays consistent under every subsequent
    :meth:`~repro.db.database.Database.set_value`. Full builds run
    vectorized over the database's columnar mirror by default; pass
    ``build="reference"`` to use the per-tuple Python path (the two are
    cross-checked by :meth:`verify`).

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> from repro.constraints import RuleSet, parse_rules
    >>> db = Database(Schema("r", ["zip", "city"]),
    ...               [["46360", "Westville"], ["46360", "Michigan City"]])
    >>> rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
    >>> det = ViolationDetector(db, rules)
    >>> det.dirty_tuples()
    {0}
    >>> db.set_value(0, "city", "Michigan City")
    >>> det.dirty_tuples()
    set()
    """

    def __init__(self, db: Database, rules: RuleSet, build: str = "columnar") -> None:
        for rule in rules:
            rule.validate_schema(db.schema)
        self.db = db
        self.rules = rules
        self._tracker = _DirtyTracker()
        # bumped on every statistics change; probe plans re-snapshot
        # their cached per-rule aggregates when it moves
        self._epoch = 0
        # per-rule statistics versions: a rule's version moves only when
        # its observable statistics actually changed (not merely when a
        # write re-evaluated it), the finest staleness granularity the
        # ranking caches stamp against
        self._rule_versions: dict[CFD, int] = {rule: 0 for rule in rules}
        # per-attribute aggregates over the per-rule versions: an
        # attribute's version is the sum of the versions of the rules
        # touching it, maintained eagerly so cache stamps stay O(1)
        self._attr_versions: dict[str, int] = {a: 0 for a in db.schema.attributes}
        self._write_plans: dict[str, _WritePlan] = {}
        self._probe_plans: dict[
            str,
            tuple[
                _ConstantProbePlan | None,
                list[_VariableRuleState],
                list[CFD],
                dict[CFD, int],
                np.ndarray,
            ],
        ] = {}
        self._states: list[_ConstantRuleState | _VariableRuleState] = []
        self._state_by_rule: dict[CFD, _ConstantRuleState | _VariableRuleState] = {}
        self._states_by_attr: dict[str, list[_ConstantRuleState | _VariableRuleState]] = {}
        # tid -> {attribute -> probe signature}; a tuple's signatures
        # only change when one of its own cells is written (vocabulary
        # codes are append-only and position moves don't re-encode)
        self._sig_cache: dict[int, dict[str, bytes]] = {}
        self._sig_cache_hits = 0
        self._sig_cache_misses = 0
        self._sig_cache_clears = 0
        for rule in rules:
            state: _ConstantRuleState | _VariableRuleState
            if rule.is_constant:
                state = _ConstantRuleState(rule, db, self._tracker)
            else:
                state = _VariableRuleState(rule, db, self._tracker)
            self._states.append(state)
            self._state_by_rule[rule] = state
            for attr in rule.attributes:
                self._states_by_attr.setdefault(attr, []).append(state)
        self.recompute(build)
        db.add_listener(self._on_change)

    # ------------------------------------------------------------------
    def recompute(self, build: str = "columnar") -> None:
        """Rebuild all statistics from the current database content.

        ``build="columnar"`` (default) vectorizes over the dictionary
        encoded columns; ``build="reference"`` replays every tuple
        through the incremental per-cell path.
        """
        if build not in ("columnar", "reference"):
            raise ValueError(f"build must be 'columnar' or 'reference', got {build!r}")
        self._epoch += 1
        self._bump_all_versions()
        for state in self._states:
            state.reset()
        if build == "columnar":
            cols = self.db.columns
            singles: dict[int, list[_ConstantRuleState]] = {}
            for state in self._states:
                if isinstance(state, _ConstantRuleState) and len(state._lhs_consts) == 1:
                    singles.setdefault(state._lhs_consts[0][0], []).append(state)
                else:
                    state.bulk_build(cols)
            for q, group_states in singles.items():
                _bulk_build_single_const(group_states, q, cols)
            self._tracker.rebuild(self._states)
        else:
            self._tracker.rebuild(())  # states mark through the tracker below
            for tid in self.db.tids():
                values = self.db.values_snapshot(tid)
                for state in self._states:
                    state.update_cell(tid, values)

    def _on_change(self, change: CellChange) -> None:
        self._sig_cache.pop(change.tid, None)
        states = self._states_by_attr.get(change.attribute)
        if not states:
            return
        plan = self._write_plans.get(change.attribute)
        if plan is None:
            plan = self._write_plans[change.attribute] = _WritePlan(
                states, self.db.schema.position(change.attribute), self.db.columns
            )
        affected = plan.affected(change.tid, change.old, change.new)
        if not affected:
            return
        # live row view, not a snapshot: update_cell only reads
        # positionally and never retains the sequence
        values = self.db.values_view(change.tid)
        versions = self._attr_versions
        rule_versions = self._rule_versions
        moved = False
        for state in affected:
            if state.update_cell(change.tid, values):
                moved = True
                rule_versions[state.rule] += 1
                for attr in state.rule.attributes:
                    versions[attr] += 1
        if moved:
            # probe plans re-snapshot their per-rule aggregates when the
            # epoch moves; a write that provably moved nothing keeps
            # every cached snapshot valid
            self._epoch += 1

    def _bump_all_versions(self) -> None:
        for rule in self._rule_versions:
            self._rule_versions[rule] += 1
            for attr in rule.attributes:
                self._attr_versions[attr] += 1

    @property
    def stats_epoch(self) -> int:
        """Monotone counter over the detector's observable statistics.

        Moves whenever any rule's violation/context statistics may have
        changed (writes that moved stats, inserts, deletes, rebuilds).
        Consumers caching decisions derived from the *whole* statistics
        state — e.g. the update generator's cross-batch decision memo —
        stamp entries with ``(db.version, stats_epoch)`` and drop them
        when either moves.
        """
        return self._epoch

    @property
    def stats(self) -> dict[str, int]:
        """Cache-health counters for the probe-signature cache."""
        return {
            "sig_cache_size": len(self._sig_cache),
            "sig_cache_capacity": _SIG_CACHE_CAPACITY,
            "sig_cache_hits": self._sig_cache_hits,
            "sig_cache_misses": self._sig_cache_misses,
            "sig_cache_clears": self._sig_cache_clears,
        }

    def rule_stats_version(self, rule: CFD) -> int:
        """Statistics version of one rule.

        Moves only when the rule's observable statistics actually
        changed: a write that re-evaluated the rule without moving its
        violation/context statistics (the common case on wide constant
        rule sets, where a tuple is in neither the old nor the new
        constant's context) leaves the version untouched.
        """
        return self._rule_versions.get(rule, 0)

    def attr_stats_version(self, attribute: str) -> int:
        """Per-rule statistics version aggregate of one attribute.

        The sum of :meth:`rule_stats_version` over the rules touching
        *attribute* — it moves exactly when one of those rules' stats
        moved (and on every full rebuild). Consumers caching quantities
        derived from those statistics — Eq. 6 group benefits, rule
        weights — compare versions instead of recomputing; because the
        per-rule versions only move on real statistics changes, stamped
        caches skip re-scoring after writes that re-evaluated rules
        without moving them.
        """
        return self._attr_versions.get(attribute, 0)

    def dirty_delta(self) -> DirtyDelta:
        """Register and return a dirty-set delta cursor.

        The cursor accumulates every tuple whose dirty status flips;
        :meth:`DirtyDelta.poll` drains it. Used by the consistency
        manager to refresh suggestions in O(delta) instead of walking
        every dirty tuple.
        """
        cursor = DirtyDelta()
        self._tracker.add_sink(cursor)
        return cursor

    def add_tuple(self, tid: int) -> None:
        """Start tracking a tuple inserted after construction.

        The paper's online-monitoring scenario (§3): newly entered
        tuples are folded into the violation statistics immediately, so
        GDR can suggest updates during data entry.
        """
        self._epoch += 1
        self._bump_all_versions()
        values = self.db.values_snapshot(tid)
        for state in self._states:
            state.update_cell(tid, values)

    def remove_tuple(self, tid: int) -> None:
        """Stop tracking a tuple that is about to be deleted."""
        self._epoch += 1
        self._bump_all_versions()
        self._sig_cache.pop(tid, None)
        for state in self._states:
            state.drop_tuple(tid)

    def detach(self) -> None:
        """Stop tracking database updates."""
        self.db.remove_listener(self._on_change)

    # ------------------------------------------------------------------
    # per-tuple queries
    # ------------------------------------------------------------------
    def is_dirty(self, tid: int) -> bool:
        """True when *tid* violates at least one rule."""
        return self._tracker.contains(tid)

    def violated_rules(self, tid: int) -> list[CFD]:
        """The tuple's ``vioRuleList``: all rules it currently violates."""
        return [state.rule for state in self._states if state.is_violating(tid)]

    def dirty_tuples(self) -> set[int]:
        """All tuples violating at least one rule (a copy)."""
        return self._tracker.as_set()

    def dirty_tuples_ordered(self) -> tuple[int, ...]:
        """All dirty tuples in ascending tid order.

        Maintained incrementally — consumers that previously ran
        ``sorted(detector.dirty_tuples())`` on every refresh iterate
        this instead.
        """
        return self._tracker.ordered()

    def dirty_count(self) -> int:
        """Number of dirty tuples (without materialising the set)."""
        return len(self._tracker)

    def vio_tuple(self, tid: int, rule: CFD) -> int:
        """``vio(t, {φ})`` of Definition 1."""
        return self._state_by_rule[rule].vio_tuple(tid)

    def partners(self, tid: int, rule: CFD) -> set[int]:
        """Tuples violating variable rule *rule* together with *tid*."""
        state = self._state_by_rule[rule]
        if isinstance(state, _VariableRuleState):
            return state.partners(tid)
        return set()

    def group_value_counts(self, tid: int, rule: CFD) -> dict[object, int]:
        """RHS value histogram of *tid*'s partition under a variable rule."""
        state = self._state_by_rule[rule]
        if isinstance(state, _VariableRuleState):
            return state.group_value_counts(tid)
        return {}

    def partition_key(self, tid: int, rule: CFD):
        """*tid*'s LHS partition key under a variable rule.

        ``None`` when the tuple is outside the rule's context (or the
        rule is constant). Two tuples with equal keys share one
        partition, hence one :meth:`group_value_counts` histogram — the
        handle the suggestion engine memoises scenario-2 pools on.
        """
        state = self._state_by_rule[rule]
        if isinstance(state, _VariableRuleState):
            entry = state.membership.get(tid)
            if entry is not None:
                return entry[0]
        return None

    def group_members(self, tid: int, rule: CFD) -> set[int]:
        """All tuples sharing *tid*'s LHS partition under a variable rule."""
        state = self._state_by_rule[rule]
        if isinstance(state, _VariableRuleState):
            return state.group_members(tid)
        return set()

    def violating_tids(self, rule: CFD) -> set[int]:
        """Tuples currently violating *rule* (copy)."""
        return set(self._state_by_rule[rule].violating)

    # ------------------------------------------------------------------
    # per-rule aggregates
    # ------------------------------------------------------------------
    def vio_rule(self, rule: CFD) -> int:
        """``vio(D, {φ}) = Σ_t vio(t, {φ})`` for one rule."""
        return self._state_by_rule[rule].total_vio

    def vio_total(self) -> int:
        """``vio(D, Σ)``: total violations over all rules."""
        return sum(state.total_vio for state in self._states)

    def violating_tuple_count(self, rule: CFD) -> int:
        """Number of tuples currently violating *rule*."""
        return self._state_by_rule[rule].violating_count

    def context_size(self, rule: CFD) -> int:
        """``|D(φ)|``: tuples matching the rule's LHS pattern."""
        return self._state_by_rule[rule].context_size

    def satisfying_count(self, rule: CFD) -> int:
        """``|D ⊨ φ|``: context tuples not violating the rule."""
        state = self._state_by_rule[rule]
        return state.context_size - state.violating_count

    def weights(self) -> dict[CFD, float]:
        """Rule weights ``w_i = |D(φ_i)| / |D|`` (paper §4.1)."""
        n = max(1, len(self.db))
        return {state.rule: state.context_size / n for state in self._states}

    # ------------------------------------------------------------------
    # hypothetical updates (Eq. 6 inputs)
    # ------------------------------------------------------------------
    def what_if(self, tid: int, attribute: str, value: object) -> Mapping[CFD, WhatIfOutcome]:
        """Effect of hypothetically setting ``t[attribute] = value``.

        Thin wrapper over :meth:`what_if_many` with one candidate. Only
        rules touching *attribute* are reported; all other rules are
        unaffected by a single-cell update. The database itself is not
        modified.
        """
        return self.what_if_many(tid, attribute, (value,))[0]

    def what_if_many(
        self, tid: int, attribute: str, values
    ) -> list[Mapping[CFD, WhatIfOutcome]]:
        """Batched Eq. 6 probe: one outcome map per candidate value.

        Evaluates every candidate repair for cell ``⟨tid, attribute⟩``
        in a single pass over the partition statistics: the tuple's
        hypothetical removal is computed once per rule, then each
        candidate costs O(1) arithmetic — no apply/revert cycle per
        probe. Candidates equal to the current value yield identity
        outcomes, so callers may probe prevented or current values
        freely.
        """
        values = list(values)
        states = self._states_by_attr.get(attribute)
        if not states:
            return [{} for __ in values]
        pos = self.db.schema.position(attribute)
        plan, var_states, rules_all, rule_index, __ = self._plan_for(attribute, pos)
        if plan is not None:
            plan.refresh(self._epoch)
            const_rows = plan.outcomes_many(tid, values)
        else:
            const_rows = None
        if var_states:
            row = self.db.values_snapshot(tid)
            current = row[pos]
            var_rows = [
                state.what_if_many(tid, row, pos, current, values) for state in var_states
            ]
        else:
            var_rows = None
        results: list[Mapping[CFD, WhatIfOutcome]] = []
        for ci in range(len(values)):
            if const_rows is not None:
                outcomes = const_rows[ci]
                if var_rows is not None:
                    outcomes = outcomes + [rows[ci] for rows in var_rows]
            else:
                outcomes = [rows[ci] for rows in var_rows]
            results.append(_OutcomeMap(rules_all, outcomes, rule_index))
        return results

    def what_if_moved_many(
        self, tid: int, attribute: str, values
    ) -> list[list[tuple[CFD, WhatIfOutcome]]]:
        """Sparse batched Eq. 6 probe: only the rules that would move.

        For each candidate value, the ``(rule, outcome)`` pairs with a
        nonzero ``vio_reduction``, ordered exactly like the rule
        iteration of :meth:`what_if_many` (constant rules in plan
        order, then variable rules). Every omitted rule's outcome has
        ``vio_reduction == 0`` and therefore contributes exactly zero
        to the Eq. 6 benefit sum — the VOI estimator's hot path reads
        this instead of materialising full outcome maps (on wide
        constant rule sets a single-cell probe moves two or three rules
        out of forty).
        """
        values = list(values)
        states = self._states_by_attr.get(attribute)
        if not states:
            return [[] for __ in values]
        pos = self.db.schema.position(attribute)
        plan, var_states, __, __, __ = self._plan_for(attribute, pos)
        if plan is not None:
            plan.refresh(self._epoch)
            const_rows = plan.moved_many(tid, values)
            rules = plan.rules
            results = [
                [(rules[i], outcome) for i, outcome in moved] for moved in const_rows
            ]
        else:
            results = [[] for __ in values]
        if var_states:
            # live row view, not a snapshot: the what-if arithmetic only
            # reads positionally and never retains (or writes) the row
            row = self.db.values_view(tid)
            current = row[pos]
            for state in var_states:
                rule = state.rule
                outcomes = state.what_if_many(tid, row, pos, current, values)
                for ci, outcome in enumerate(outcomes):
                    if outcome[3] != 0:  # vio_reduction
                        results[ci].append((rule, outcome))
        return results

    def what_if_moved_many_cells(self, cells):
        """Batched :meth:`what_if_moved_many` over many cells.

        *cells* is a sequence of ``(tid, attribute, values)`` probes;
        the result list is aligned with it. This is the serial
        reference implementation of the bulk probe entry point — the
        sharded engine (``core/parallel.py``) overrides it with a
        partition-parallel dispatch that is parity-tested against this
        exact loop.
        """
        return [
            self.what_if_moved_many(tid, attribute, values)
            for tid, attribute, values in cells
        ]

    def probe_signature(self, tid: int, attribute: str) -> bytes:
        """Codes of everything a what-if probe on ``⟨tid, attribute⟩`` reads.

        The tuple's dictionary codes at every column any rule touching
        *attribute* inspects (LHS constants, partition keys, RHS
        values, the probed column itself), packed into a hashable key.
        Two tuples with equal signatures are indistinguishable to
        :meth:`what_if_many` / :meth:`what_if_moved_many` for any
        candidate value — the batched VOI scorer shares one term
        computation across them (code equality is exactly the value
        equality every rule state compares by).
        """
        if attribute not in self._states_by_attr:
            # no rule touches the attribute: every probe is a no-op and
            # every row is indistinguishable
            return b""
        per_tid = self._sig_cache.get(tid)
        if per_tid is None:
            if len(self._sig_cache) >= _SIG_CACHE_CAPACITY:
                self._sig_cache.clear()
                self._sig_cache_clears += 1
            per_tid = self._sig_cache[tid] = {}
        else:
            cached = per_tid.get(attribute)
            if cached is not None:
                self._sig_cache_hits += 1
                return cached
        self._sig_cache_misses += 1
        __, __, __, __, probe_cols = self._plan_for(
            attribute, self.db.schema.position(attribute)
        )
        signature = self.db.columns.gather_row(tid, probe_cols).tobytes()
        per_tid[attribute] = signature
        return signature

    def _plan_for(
        self, attribute: str, pos: int
    ) -> tuple[
        _ConstantProbePlan | None,
        list[_VariableRuleState],
        list[CFD],
        dict[CFD, int],
        np.ndarray,
    ]:
        """The attribute's probe plan, variable states, rule order, and
        the union of column positions any probe on the attribute reads
        (the :meth:`probe_signature` gather index)."""
        entry = self._probe_plans.get(attribute)
        if entry is None:
            states = self._states_by_attr[attribute]
            const_states = [s for s in states if isinstance(s, _ConstantRuleState)]
            var_states = [s for s in states if isinstance(s, _VariableRuleState)]
            plan = (
                _ConstantProbePlan(const_states, pos, self.db.columns)
                if const_states
                else None
            )
            rules_all = [s.rule for s in const_states] + [s.rule for s in var_states]
            rule_index = {rule: i for i, rule in enumerate(rules_all)}
            schema = self.db.schema
            probe_cols: set[int] = {pos}
            for state in states:
                probe_cols.update(schema.position(a) for a in state.rule.attributes)
            entry = (
                plan,
                var_states,
                rules_all,
                rule_index,
                np.array(sorted(probe_cols), dtype=np.int64),
            )
            self._probe_plans[attribute] = entry
        return entry

    def _what_if_reference(
        self, tid: int, attribute: str, value: object
    ) -> dict[CFD, WhatIfOutcome]:
        """Apply-and-revert what-if: byte-identical to the update path.

        The pre-batching implementation, kept as the ground truth the
        analytic paths are parity-tested against: the cell change is
        pushed through the same ``update_cell`` machinery as a real
        write, the statistics are read, and the change is replayed back.
        """
        states = self._states_by_attr.get(attribute)
        if not states:
            return {}
        values = list(self.db.values_snapshot(tid))
        pos = self.db.schema.position(attribute)
        old_value = values[pos]
        if old_value == value:
            return {
                state.rule: WhatIfOutcome(
                    vio_before=state.total_vio,
                    vio_after=state.total_vio,
                    satisfying_after=state.context_size - state.violating_count,
                )
                for state in states
            }
        outcomes: dict[CFD, WhatIfOutcome] = {}
        values[pos] = value
        for state in states:
            vio_before = state.total_vio
            state.update_cell(tid, values)
            outcomes[state.rule] = WhatIfOutcome(
                vio_before=vio_before,
                vio_after=state.total_vio,
                satisfying_after=state.context_size - state.violating_count,
            )
        # revert: replay the original values through the same path
        values[pos] = old_value
        for state in states:
            state.update_cell(tid, values)
        return outcomes

    # ------------------------------------------------------------------
    def verify(self) -> bool:
        """Cross-check incremental state against fresh rebuilds.

        Intended for tests: rebuilds the statistics from scratch through
        **both** the columnar and the reference path and returns ``True``
        only when every maintained statistic (violation counts,
        violating sets, context sizes, variable-rule partitions and the
        ordered dirty view) matches both.
        """
        for build in ("columnar", "reference"):
            fresh = ViolationDetector(self.db, self.rules, build=build)
            fresh.detach()
            for rule in self.rules:
                mine = self._state_by_rule[rule]
                theirs = fresh._state_by_rule[rule]
                if mine.total_vio != theirs.total_vio:
                    return False
                if mine.violating != theirs.violating:
                    return False
                if mine.context_size != theirs.context_size:
                    return False
                if isinstance(mine, _ConstantRuleState):
                    if mine.context != theirs.context:
                        return False
                else:
                    if mine.membership != theirs.membership:
                        return False
                    if set(mine.groups) != set(theirs.groups):
                        return False
                    for key, group in mine.groups.items():
                        other = theirs.groups[key]
                        if group.size != other.size or group.members != other.members:
                            return False
        ordered = self.dirty_tuples_ordered()
        if list(ordered) != sorted(self.dirty_tuples()):
            return False
        union: set[int] = set()
        for state in self._states:
            union.update(state.violating)
        return union == self.dirty_tuples()

    def __repr__(self) -> str:
        return (
            f"ViolationDetector({len(self.rules)} rules, "
            f"{self.dirty_count()} dirty tuples, vio={self.vio_total()})"
        )
