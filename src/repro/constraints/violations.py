"""Violation detection and bookkeeping for CFDs (paper Definition 1).

The detector maintains, incrementally under cell updates:

* per rule, the set of *violating* tuples and the pairwise violation
  count ``vio(D, {φ})`` of Definition 1;
* per rule, the *context size* ``|D(φ)|`` (tuples matching the LHS
  pattern) and the *satisfying count* ``|D ⊨ φ|`` (context tuples not in
  violation) used by the quality-loss equations;
* the global dirty-tuple set and each tuple's violated-rule list.

For a variable CFD, context tuples are partitioned by their LHS values;
a partition of size ``G`` with RHS value counts ``{c_v}`` contributes
``G² − Σ c_v²`` pairwise violations and ``G`` violating tuples when it
holds more than one distinct RHS value (otherwise zero). Single-cell
updates touch at most two partitions per rule, so maintenance is cheap.

The *what-if* API answers "how would applying update ⟨t, A, v⟩ change
``vio`` and ``|D ⊨ φ|``" — the quantities of Eq. 6 — by applying the
cell change to the internal statistics and reverting it, which keeps the
hypothetical path byte-identical to the real update path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.cfd import CFD
from repro.constraints.repository import RuleSet
from repro.db.changelog import CellChange
from repro.db.database import Database

__all__ = ["ViolationDetector", "WhatIfOutcome"]


@dataclass(frozen=True, slots=True)
class WhatIfOutcome:
    """Effect of a hypothetical single-cell update on one rule.

    Attributes
    ----------
    vio_before / vio_after:
        ``vio(D, {φ})`` and ``vio(D^r, {φ})`` of Eq. 6.
    satisfying_after:
        ``|D^r ⊨ φ|``, the number of context tuples satisfying the rule
        after the hypothetical update.
    """

    vio_before: int
    vio_after: int
    satisfying_after: int

    @property
    def vio_reduction(self) -> int:
        """``vio(D,{φ}) − vio(D^r,{φ})``: positive when the update helps."""
        return self.vio_before - self.vio_after


class _ConstantRuleState:
    """Violation bookkeeping for one constant CFD."""

    __slots__ = ("rule", "_lhs_pos", "_rhs_pos", "_lhs_consts", "_rhs_const", "context", "violating")

    def __init__(self, rule: CFD, db: Database) -> None:
        self.rule = rule
        schema = db.schema
        self._lhs_pos = schema.positions(rule.lhs)
        self._rhs_pos = schema.position(rule.rhs)
        self._lhs_consts = [
            (schema.position(attr), value) for attr, value in rule.lhs_constants().items()
        ]
        self._rhs_const = rule.rhs_constant
        self.context: set[int] = set()
        self.violating: set[int] = set()

    def matches_lhs(self, values) -> bool:
        for pos, const in self._lhs_consts:
            if values[pos] != const:
                return False
        return True

    def update_cell(self, tid: int, values) -> None:
        """Re-evaluate tuple *tid* whose values are now *values*."""
        self.context.discard(tid)
        self.violating.discard(tid)
        if self.matches_lhs(values):
            self.context.add(tid)
            if values[self._rhs_pos] != self._rhs_const:
                self.violating.add(tid)

    @property
    def total_vio(self) -> int:
        return len(self.violating)

    @property
    def violating_count(self) -> int:
        return len(self.violating)

    @property
    def context_size(self) -> int:
        return len(self.context)

    def vio_tuple(self, tid: int) -> int:
        return 1 if tid in self.violating else 0

    def is_violating(self, tid: int) -> bool:
        return tid in self.violating


class _Group:
    """One LHS-value partition of a variable CFD's context."""

    __slots__ = ("members", "size")

    def __init__(self) -> None:
        self.members: dict[object, set[int]] = {}
        self.size = 0

    def count(self, value: object) -> int:
        bucket = self.members.get(value)
        return len(bucket) if bucket is not None else 0

    @property
    def distinct(self) -> int:
        return len(self.members)

    def all_tids(self) -> list[int]:
        tids: list[int] = []
        for bucket in self.members.values():
            tids.extend(bucket)
        return tids


class _VariableRuleState:
    """Violation bookkeeping for one variable CFD."""

    __slots__ = (
        "rule",
        "_lhs_pos",
        "_rhs_pos",
        "_lhs_consts",
        "groups",
        "membership",
        "total_vio",
        "violating",
        "context_size",
    )

    def __init__(self, rule: CFD, db: Database) -> None:
        self.rule = rule
        schema = db.schema
        self._lhs_pos = schema.positions(rule.lhs)
        self._rhs_pos = schema.position(rule.rhs)
        self._lhs_consts = [
            (schema.position(attr), value) for attr, value in rule.lhs_constants().items()
        ]
        self.groups: dict[tuple[object, ...], _Group] = {}
        self.membership: dict[int, tuple[tuple[object, ...], object]] = {}
        self.total_vio = 0
        self.violating: set[int] = set()
        self.context_size = 0

    def matches_lhs(self, values) -> bool:
        for pos, const in self._lhs_consts:
            if values[pos] != const:
                return False
        return True

    def key_of(self, values) -> tuple[object, ...]:
        return tuple(values[p] for p in self._lhs_pos)

    # -- incremental core ------------------------------------------------
    def _remove(self, tid: int) -> None:
        key, value = self.membership.pop(tid)
        group = self.groups[key]
        size = group.size
        cv = group.count(value)
        self.total_vio -= 2 * (size - cv)
        distinct_before = group.distinct
        distinct_after = distinct_before - 1 if cv == 1 else distinct_before
        was_mixed = distinct_before >= 2
        stays_mixed = distinct_after >= 2
        bucket = group.members[value]
        bucket.discard(tid)
        if not bucket:
            del group.members[value]
        group.size = size - 1
        if was_mixed and not stays_mixed:
            self.violating.discard(tid)
            for member in group.all_tids():
                self.violating.discard(member)
        elif was_mixed:
            self.violating.discard(tid)
        if group.size == 0:
            del self.groups[key]
        self.context_size -= 1

    def _add(self, tid: int, key: tuple[object, ...], value: object) -> None:
        group = self.groups.get(key)
        if group is None:
            group = self.groups[key] = _Group()
        size = group.size
        cv = group.count(value)
        self.total_vio += 2 * (size - cv)
        distinct_before = group.distinct
        distinct_after = distinct_before + 1 if cv == 0 else distinct_before
        becomes_mixed = distinct_after >= 2
        if becomes_mixed and distinct_before < 2:
            self.violating.update(group.all_tids())
            self.violating.add(tid)
        elif becomes_mixed:
            self.violating.add(tid)
        group.members.setdefault(value, set()).add(tid)
        group.size = size + 1
        self.membership[tid] = (key, value)
        self.context_size += 1

    def update_cell(self, tid: int, values) -> None:
        """Re-evaluate tuple *tid* whose values are now *values*."""
        if tid in self.membership:
            self._remove(tid)
        if self.matches_lhs(values):
            self._add(tid, self.key_of(values), values[self._rhs_pos])

    # -- queries ----------------------------------------------------------
    @property
    def violating_count(self) -> int:
        return len(self.violating)

    def vio_tuple(self, tid: int) -> int:
        entry = self.membership.get(tid)
        if entry is None:
            return 0
        key, value = entry
        group = self.groups[key]
        return group.size - group.count(value)

    def is_violating(self, tid: int) -> bool:
        return tid in self.violating

    def partners(self, tid: int) -> set[int]:
        """Tuples violating the rule together with *tid*."""
        entry = self.membership.get(tid)
        if entry is None:
            return set()
        key, value = entry
        group = self.groups[key]
        others: set[int] = set()
        for other_value, bucket in group.members.items():
            if other_value != value:
                others.update(bucket)
        return others

    def group_value_counts(self, tid: int) -> dict[object, int]:
        """RHS value histogram of *tid*'s partition (empty if out of context)."""
        entry = self.membership.get(tid)
        if entry is None:
            return {}
        group = self.groups[entry[0]]
        return {value: len(bucket) for value, bucket in group.members.items()}

    def group_members(self, tid: int) -> set[int]:
        """All tuples in *tid*'s partition, including *tid* itself."""
        entry = self.membership.get(tid)
        if entry is None:
            return set()
        return set(self.groups[entry[0]].all_tids())


class ViolationDetector:
    """Incremental CFD-violation tracker over a live database.

    The detector registers itself as a database listener at
    construction and stays consistent under every subsequent
    :meth:`~repro.db.database.Database.set_value`.

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> from repro.constraints import RuleSet, parse_rules
    >>> db = Database(Schema("r", ["zip", "city"]),
    ...               [["46360", "Westville"], ["46360", "Michigan City"]])
    >>> rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
    >>> det = ViolationDetector(db, rules)
    >>> det.dirty_tuples()
    {0}
    >>> db.set_value(0, "city", "Michigan City")
    >>> det.dirty_tuples()
    set()
    """

    def __init__(self, db: Database, rules: RuleSet) -> None:
        for rule in rules:
            rule.validate_schema(db.schema)
        self.db = db
        self.rules = rules
        self._states: list[_ConstantRuleState | _VariableRuleState] = []
        self._state_by_rule: dict[CFD, _ConstantRuleState | _VariableRuleState] = {}
        self._states_by_attr: dict[str, list[_ConstantRuleState | _VariableRuleState]] = {}
        for rule in rules:
            state: _ConstantRuleState | _VariableRuleState
            if rule.is_constant:
                state = _ConstantRuleState(rule, db)
            else:
                state = _VariableRuleState(rule, db)
            self._states.append(state)
            self._state_by_rule[rule] = state
            for attr in rule.attributes:
                self._states_by_attr.setdefault(attr, []).append(state)
        self.recompute()
        db.add_listener(self._on_change)

    # ------------------------------------------------------------------
    def recompute(self) -> None:
        """Rebuild all statistics from the current database content."""
        for state in self._states:
            if isinstance(state, _ConstantRuleState):
                state.context.clear()
                state.violating.clear()
            else:
                state.groups.clear()
                state.membership.clear()
                state.violating.clear()
                state.total_vio = 0
                state.context_size = 0
        for tid in self.db.tids():
            values = self.db.values_snapshot(tid)
            for state in self._states:
                state.update_cell(tid, values)

    def _on_change(self, change: CellChange) -> None:
        states = self._states_by_attr.get(change.attribute)
        if not states:
            return
        values = self.db.values_snapshot(change.tid)
        for state in states:
            state.update_cell(change.tid, values)

    def add_tuple(self, tid: int) -> None:
        """Start tracking a tuple inserted after construction.

        The paper's online-monitoring scenario (§3): newly entered
        tuples are folded into the violation statistics immediately, so
        GDR can suggest updates during data entry.
        """
        values = self.db.values_snapshot(tid)
        for state in self._states:
            state.update_cell(tid, values)

    def remove_tuple(self, tid: int) -> None:
        """Stop tracking a tuple that is about to be deleted."""
        for state in self._states:
            if isinstance(state, _ConstantRuleState):
                state.context.discard(tid)
                state.violating.discard(tid)
            elif tid in state.membership:
                state._remove(tid)

    def detach(self) -> None:
        """Stop tracking database updates."""
        self.db.remove_listener(self._on_change)

    # ------------------------------------------------------------------
    # per-tuple queries
    # ------------------------------------------------------------------
    def is_dirty(self, tid: int) -> bool:
        """True when *tid* violates at least one rule."""
        return any(state.is_violating(tid) for state in self._states)

    def violated_rules(self, tid: int) -> list[CFD]:
        """The tuple's ``vioRuleList``: all rules it currently violates."""
        return [state.rule for state in self._states if state.is_violating(tid)]

    def dirty_tuples(self) -> set[int]:
        """All tuples violating at least one rule."""
        dirty: set[int] = set()
        for state in self._states:
            dirty.update(state.violating)
        return dirty

    def vio_tuple(self, tid: int, rule: CFD) -> int:
        """``vio(t, {φ})`` of Definition 1."""
        return self._state_by_rule[rule].vio_tuple(tid)

    def partners(self, tid: int, rule: CFD) -> set[int]:
        """Tuples violating variable rule *rule* together with *tid*."""
        state = self._state_by_rule[rule]
        if isinstance(state, _VariableRuleState):
            return state.partners(tid)
        return set()

    def group_value_counts(self, tid: int, rule: CFD) -> dict[object, int]:
        """RHS value histogram of *tid*'s partition under a variable rule."""
        state = self._state_by_rule[rule]
        if isinstance(state, _VariableRuleState):
            return state.group_value_counts(tid)
        return {}

    def group_members(self, tid: int, rule: CFD) -> set[int]:
        """All tuples sharing *tid*'s LHS partition under a variable rule."""
        state = self._state_by_rule[rule]
        if isinstance(state, _VariableRuleState):
            return state.group_members(tid)
        return set()

    def violating_tids(self, rule: CFD) -> set[int]:
        """Tuples currently violating *rule* (copy)."""
        return set(self._state_by_rule[rule].violating)

    # ------------------------------------------------------------------
    # per-rule aggregates
    # ------------------------------------------------------------------
    def vio_rule(self, rule: CFD) -> int:
        """``vio(D, {φ}) = Σ_t vio(t, {φ})`` for one rule."""
        return self._state_by_rule[rule].total_vio

    def vio_total(self) -> int:
        """``vio(D, Σ)``: total violations over all rules."""
        return sum(state.total_vio for state in self._states)

    def violating_tuple_count(self, rule: CFD) -> int:
        """Number of tuples currently violating *rule*."""
        return self._state_by_rule[rule].violating_count

    def context_size(self, rule: CFD) -> int:
        """``|D(φ)|``: tuples matching the rule's LHS pattern."""
        return self._state_by_rule[rule].context_size

    def satisfying_count(self, rule: CFD) -> int:
        """``|D ⊨ φ|``: context tuples not violating the rule."""
        state = self._state_by_rule[rule]
        return state.context_size - state.violating_count

    def weights(self) -> dict[CFD, float]:
        """Rule weights ``w_i = |D(φ_i)| / |D|`` (paper §4.1)."""
        n = max(1, len(self.db))
        return {state.rule: state.context_size / n for state in self._states}

    # ------------------------------------------------------------------
    # hypothetical updates (Eq. 6 inputs)
    # ------------------------------------------------------------------
    def what_if(self, tid: int, attribute: str, value: object) -> dict[CFD, WhatIfOutcome]:
        """Effect of hypothetically setting ``t[attribute] = value``.

        Only rules touching *attribute* are reported; all other rules
        are unaffected by a single-cell update. The database itself is
        not modified.
        """
        states = self._states_by_attr.get(attribute)
        if not states:
            return {}
        values = list(self.db.values_snapshot(tid))
        pos = self.db.schema.position(attribute)
        old_value = values[pos]
        if old_value == value:
            return {
                state.rule: WhatIfOutcome(
                    vio_before=state.total_vio,
                    vio_after=state.total_vio,
                    satisfying_after=state.context_size - state.violating_count,
                )
                for state in states
            }
        outcomes: dict[CFD, WhatIfOutcome] = {}
        values[pos] = value
        for state in states:
            vio_before = state.total_vio
            state.update_cell(tid, values)
            outcomes[state.rule] = WhatIfOutcome(
                vio_before=vio_before,
                vio_after=state.total_vio,
                satisfying_after=state.context_size - state.violating_count,
            )
        # revert: replay the original values through the same path
        values[pos] = old_value
        for state in states:
            state.update_cell(tid, values)
        return outcomes

    # ------------------------------------------------------------------
    def verify(self) -> bool:
        """Cross-check incremental state against a fresh rebuild.

        Intended for tests: returns ``True`` when every maintained
        statistic matches a from-scratch recomputation.
        """
        fresh = ViolationDetector(self.db, self.rules)
        fresh.detach()
        try:
            for rule in self.rules:
                mine = self._state_by_rule[rule]
                theirs = fresh._state_by_rule[rule]
                if mine.total_vio != theirs.total_vio:
                    return False
                if mine.violating != theirs.violating:
                    return False
                if mine.context_size != theirs.context_size:
                    return False
            return True
        finally:
            pass

    def __repr__(self) -> str:
        return (
            f"ViolationDetector({len(self.rules)} rules, "
            f"{len(self.dirty_tuples())} dirty tuples, vio={self.vio_total()})"
        )
