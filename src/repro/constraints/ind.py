"""Conditional inclusion dependencies (CINDs) — a §7 future-work item.

The paper's conclusion lists CINDs (Bravo, Fan & Ma, VLDB 2007) among
the rule types GDR should eventually support. This module provides the
detection side: a CIND ``R1[X; Xp] ⊆ R2[Y; Yp]`` demands that every
R1-tuple matching the pattern ``Xp`` has an R2-tuple agreeing on the
correspondence ``X → Y`` and matching ``Yp``.

Repair integration (generating candidate updates from CIND violations)
is left as future work, exactly as in the paper; the checker already
slots into cleaning pipelines for *detection and explanation*.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.constraints.pattern import PatternTuple
from repro.db.database import Database
from repro.errors import RuleError

__all__ = ["IND", "check_ind"]


class IND:
    """One conditional inclusion dependency between two relations.

    Parameters
    ----------
    child_attrs:
        Attributes ``X`` of the child (referencing) relation.
    parent_attrs:
        Attributes ``Y`` of the parent (referenced) relation, positionally
        corresponding to *child_attrs*.
    child_pattern:
        Optional pattern over child attributes restricting which child
        tuples the dependency applies to (the "condition").
    parent_pattern:
        Optional pattern the matching parent tuples must additionally
        satisfy.
    name:
        Optional identifier for reports.

    Examples
    --------
    >>> ind = IND(["zip"], ["zip_code"], name="visits_zip_in_gazetteer")
    >>> ind.arity
    1
    """

    __slots__ = ("child_attrs", "parent_attrs", "child_pattern", "parent_pattern", "name")

    def __init__(
        self,
        child_attrs: Sequence[str],
        parent_attrs: Sequence[str],
        child_pattern: PatternTuple | Mapping[str, object] | None = None,
        parent_pattern: PatternTuple | Mapping[str, object] | None = None,
        name: str = "",
    ) -> None:
        child = tuple(child_attrs)
        parent = tuple(parent_attrs)
        if not child:
            raise RuleError("IND must reference at least one attribute")
        if len(child) != len(parent):
            raise RuleError(
                f"IND arity mismatch: {len(child)} child vs {len(parent)} parent attributes"
            )
        if len(set(child)) != len(child) or len(set(parent)) != len(parent):
            raise RuleError("IND attribute lists must not contain duplicates")
        self.child_attrs = child
        self.parent_attrs = parent
        self.child_pattern = _coerce_pattern(child_pattern)
        self.parent_pattern = _coerce_pattern(parent_pattern)
        self.name = name

    @property
    def arity(self) -> int:
        """Number of corresponding attribute pairs."""
        return len(self.child_attrs)

    @property
    def is_conditional(self) -> bool:
        """True when a child or parent pattern restricts applicability."""
        return self.child_pattern is not None or self.parent_pattern is not None

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        cond = " (conditional)" if self.is_conditional else ""
        return (
            f"IND({label}[{', '.join(self.child_attrs)}] ⊆ "
            f"[{', '.join(self.parent_attrs)}]{cond})"
        )


def _coerce_pattern(pattern) -> PatternTuple | None:
    if pattern is None:
        return None
    if isinstance(pattern, PatternTuple):
        return pattern
    return PatternTuple(dict(pattern))


def check_ind(child: Database, parent: Database, ind: IND) -> set[int]:
    """Return the child tuple ids violating *ind*.

    A child tuple violates when it matches the child pattern (if any)
    but no parent tuple both agrees on the corresponding attributes and
    matches the parent pattern (if any).

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> visits = Database(Schema("v", ["zip"]), [["46360"], ["99999"]])
    >>> gazetteer = Database(Schema("g", ["zip_code"]), [["46360"]])
    >>> check_ind(visits, gazetteer, IND(["zip"], ["zip_code"]))
    {1}
    """
    child.schema.validate_attributes(ind.child_attrs)
    parent.schema.validate_attributes(ind.parent_attrs)
    if ind.child_pattern is not None:
        child.schema.validate_attributes(ind.child_pattern.attributes)
    if ind.parent_pattern is not None:
        parent.schema.validate_attributes(ind.parent_pattern.attributes)

    parent_positions = parent.schema.positions(ind.parent_attrs)
    parent_keys: set[tuple[object, ...]] = set()
    for tid in parent.tids():
        values = parent.values_snapshot(tid)
        if ind.parent_pattern is not None:
            row = parent.row(tid)
            if not ind.parent_pattern.matches(row.__getitem__):
                continue
        parent_keys.add(tuple(values[p] for p in parent_positions))

    child_positions = child.schema.positions(ind.child_attrs)
    violating: set[int] = set()
    for tid in child.tids():
        if ind.child_pattern is not None:
            row = child.row(tid)
            if not ind.child_pattern.matches(row.__getitem__):
                continue
        values = child.values_snapshot(tid)
        key = tuple(values[p] for p in child_positions)
        if key not in parent_keys:
            violating.add(tid)
    return violating
