"""Conditional functional dependencies in normal form.

A CFD ``φ : (X -> A, tp)`` couples a functional dependency with a
pattern tuple over ``X ∪ {A}``. Following the paper (and Cong et al.),
rules are kept in *normal form*: a single right-hand-side attribute per
rule; multi-RHS rules are split by :func:`normalize`.

A rule is *constant* when its RHS pattern entry is a constant (a single
tuple can violate it) and *variable* when the RHS entry is the wildcard
(violations are witnessed by pairs of tuples, like plain FDs).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.constraints.pattern import ANY, PatternTuple
from repro.db.schema import Schema
from repro.errors import RuleError

__all__ = ["CFD", "normalize"]


class CFD:
    """One normal-form conditional functional dependency.

    Parameters
    ----------
    lhs:
        Left-hand-side attribute names (the ``X`` of ``X -> A``).
    rhs:
        The single right-hand-side attribute ``A``.
    pattern:
        Pattern tuple covering exactly ``X ∪ {A}``; either a
        :class:`~repro.constraints.pattern.PatternTuple` or a mapping.
    name:
        Optional identifier used in reports (``phi1``, ...).

    Examples
    --------
    >>> rule = CFD(["zip"], "city", {"zip": "46360", "city": "Michigan City"})
    >>> rule.is_constant
    True
    >>> rule.attributes
    ('zip', 'city')
    """

    __slots__ = ("lhs", "rhs", "pattern", "name", "_hash")

    def __init__(
        self,
        lhs: Sequence[str],
        rhs: str,
        pattern: PatternTuple | Mapping[str, object],
        name: str = "",
    ) -> None:
        lhs_tuple = tuple(lhs)
        if not lhs_tuple:
            raise RuleError("CFD must have at least one LHS attribute")
        if len(set(lhs_tuple)) != len(lhs_tuple):
            raise RuleError(f"CFD LHS has duplicate attributes: {lhs_tuple!r}")
        if rhs in lhs_tuple:
            raise RuleError(f"CFD RHS attribute {rhs!r} also appears on the LHS")
        if not isinstance(pattern, PatternTuple):
            pattern = PatternTuple(pattern)
        expected = set(lhs_tuple) | {rhs}
        if set(pattern.attributes) != expected:
            raise RuleError(
                f"CFD pattern must cover exactly {sorted(expected)!r}, "
                f"got {sorted(pattern.attributes)!r}"
            )
        self.lhs = lhs_tuple
        self.rhs = rhs
        self.pattern = pattern
        self.name = name
        self._hash: int | None = None

    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """True when the RHS pattern entry is a constant."""
        return self.pattern.is_constant_on(self.rhs)

    @property
    def is_variable(self) -> bool:
        """True when the RHS pattern entry is the wildcard."""
        return not self.is_constant

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes the rule touches: LHS order, then RHS."""
        return self.lhs + (self.rhs,)

    @property
    def rhs_constant(self) -> object:
        """The RHS constant of a constant rule.

        Raises
        ------
        RuleError
            If the rule is a variable CFD.
        """
        value = self.pattern.value(self.rhs)
        if value is ANY:
            raise RuleError(f"{self!r} is a variable CFD and has no RHS constant")
        return value

    def lhs_constants(self) -> dict[str, object]:
        """Constant entries of the LHS pattern (the rule's context)."""
        return {a: v for a, v in self.pattern.items() if a != self.rhs and v is not ANY}

    # ------------------------------------------------------------------
    def matches_lhs(self, getter) -> bool:
        """True when a tuple (via value *getter*) falls in the rule context."""
        return self.pattern.matches(getter, self.lhs)

    def matches_rhs(self, getter) -> bool:
        """True when the tuple's RHS value matches the RHS pattern entry."""
        return self.pattern.matches(getter, (self.rhs,))

    def validate_schema(self, schema: Schema) -> None:
        """Raise if the rule mentions attributes outside *schema*."""
        schema.validate_attributes(self.attributes)

    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        return (self.lhs, self.rhs, self.pattern)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CFD):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        # rules key every per-rule statistics dict; cache the hash
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        lhs_pat = ", ".join(_fmt(self.pattern.value(a)) for a in self.lhs)
        rhs_pat = _fmt(self.pattern.value(self.rhs))
        return f"CFD({label}{', '.join(self.lhs)} -> {self.rhs}, {{{lhs_pat} || {rhs_pat}}})"


def _fmt(value: object) -> str:
    return "-" if value is ANY else str(value)


def normalize(
    lhs: Sequence[str],
    rhs_attributes: Sequence[str],
    pattern: Mapping[str, object],
    name: str = "",
) -> list[CFD]:
    """Split a (possibly multi-RHS) CFD into normal-form rules.

    ``(X -> A1, A2, tp)`` becomes ``(X -> A1, tp|A1)`` and
    ``(X -> A2, tp|A2)`` as in the paper's Appendix A. Names get a
    ``.k`` suffix when the split produces more than one rule.

    Examples
    --------
    >>> rules = normalize(["zip"], ["city", "state"],
    ...                   {"zip": "46360", "city": "Michigan City", "state": "IN"},
    ...                   name="phi1")
    >>> [r.name for r in rules]
    ['phi1.1', 'phi1.2']
    """
    rhs_tuple = tuple(rhs_attributes)
    if not rhs_tuple:
        raise RuleError("CFD must have at least one RHS attribute")
    rules: list[CFD] = []
    multi = len(rhs_tuple) > 1
    for i, rhs in enumerate(rhs_tuple, start=1):
        entries = {a: pattern[a] for a in lhs}
        entries[rhs] = pattern[rhs]
        rule_name = f"{name}.{i}" if (name and multi) else name
        rules.append(CFD(lhs, rhs, entries, name=rule_name))
    return rules
