"""Automatic CFD discovery from (possibly dirty) data.

The paper discovers the rules for Dataset 2 with the technique of Fan
et al. (ICDE 2009) at a 5% support threshold. This module provides the
same capability class:

* :func:`mine_constant_cfds` — a level-wise frequent-pattern miner that
  emits constant CFDs ``(X -> A, (x̄ ‖ a))`` whose LHS pattern has
  support ≥ the threshold and whose RHS value holds with the requested
  confidence on the supporting tuples;
* :func:`discover_variable_cfds` — an FD validator that promotes
  near-functional attribute pairs to variable CFDs (all-wildcard
  pattern) when the violation rate is below a tolerance;
* :func:`discover_rules` — the combined entry point returning a
  :class:`~repro.constraints.repository.RuleSet`.

Because discovery typically runs on dirty data, confidence below 1.0
tolerates the errors the repair process is meant to fix.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Sequence

from repro.constraints.cfd import CFD
from repro.constraints.pattern import ANY
from repro.constraints.repository import RuleSet
from repro.db.database import Database
from repro.errors import ConfigError

__all__ = [
    "discover_rules",
    "discover_variable_cfds",
    "fd_violation_rate",
    "mine_constant_cfds",
]


def mine_constant_cfds(
    db: Database,
    support: float = 0.05,
    confidence: float = 0.95,
    max_lhs: int = 2,
    max_rules: int = 200,
) -> list[CFD]:
    """Mine constant CFDs whose LHS pattern support is ≥ *support*.

    Parameters
    ----------
    db:
        The instance to mine (usually the dirty database, as in the
        paper).
    support:
        Minimum fraction of tuples matching the LHS constants.
    confidence:
        Minimum fraction of supporting tuples sharing the majority RHS
        value; values below 1.0 tolerate dirty cells.
    max_lhs:
        Maximum number of LHS attributes per rule.
    max_rules:
        Hard cap on emitted rules (most-supported first).

    Returns
    -------
    list[CFD]
        Minimal constant rules: a rule is suppressed when a rule with a
        subset LHS pattern already implies the same RHS constant.
    """
    if not 0 < support <= 1:
        raise ConfigError(f"support must be in (0, 1], got {support}")
    if not 0 < confidence <= 1:
        raise ConfigError(f"confidence must be in (0, 1], got {confidence}")
    if max_lhs < 1:
        raise ConfigError(f"max_lhs must be >= 1, got {max_lhs}")
    n = len(db)
    if n == 0:
        return []
    min_count = max(1, int(support * n))
    attrs = db.schema.attributes

    # level 1: frequent (attribute, value) items with their tid lists
    tid_lists: dict[tuple[tuple[str, object], ...], set[int]] = {}
    item_index: dict[str, list[tuple[str, object]]] = defaultdict(list)
    for attr in attrs:
        histogram: dict[object, set[int]] = defaultdict(set)
        pos = db.schema.position(attr)
        for tid in db.tids():
            histogram[db.values_snapshot(tid)[pos]].add(tid)
        for value, tids in histogram.items():
            if len(tids) >= min_count:
                item = (attr, value)
                tid_lists[(item,)] = tids
                item_index[attr].append(item)

    emitted: list[tuple[int, CFD]] = []
    accepted: list[tuple[str, object, dict[str, object]]] = []

    def consider(itemset: tuple[tuple[str, object], ...], tids: set[int]) -> None:
        lhs_attrs = [attr for attr, __ in itemset]
        lhs_pattern = dict(itemset)
        for rhs in attrs:
            if rhs in lhs_pattern:
                continue
            pos = db.schema.position(rhs)
            counts = Counter(db.values_snapshot(tid)[pos] for tid in tids)
            value, count = counts.most_common(1)[0]
            if count / len(tids) < confidence:
                continue
            if _is_redundant(accepted, rhs, value, lhs_pattern):
                continue
            pattern = dict(lhs_pattern)
            pattern[rhs] = value
            emitted.append((len(tids), CFD(lhs_attrs, rhs, pattern)))
            accepted.append((rhs, value, lhs_pattern))

    level = sorted(tid_lists)
    for itemset in level:
        consider(itemset, tid_lists[itemset])
    for _size in range(2, max_lhs + 1):
        next_lists: dict[tuple[tuple[str, object], ...], set[int]] = {}
        for itemset in level:
            base_tids = tid_lists[itemset]
            last_attr = itemset[-1][0]
            for attr in attrs:
                if attr <= last_attr or any(a == attr for a, __ in itemset):
                    continue
                for item in item_index.get(attr, ()):  # extend in attr order
                    tids = base_tids & tid_lists[(item,)]
                    if len(tids) >= min_count:
                        next_lists[itemset + (item,)] = tids
        level = sorted(next_lists)
        tid_lists.update(next_lists)
        for itemset in level:
            consider(itemset, next_lists[itemset])

    emitted.sort(key=lambda pair: (-pair[0], repr(pair[1])))
    return [rule for __, rule in emitted[:max_rules]]


def _is_redundant(
    accepted: list[tuple[str, object, dict[str, object]]],
    rhs: str,
    value: object,
    lhs_pattern: dict[str, object],
) -> bool:
    """A rule is redundant if a subset-LHS rule implies the same constant."""
    for acc_rhs, acc_value, acc_lhs in accepted:
        if acc_rhs != rhs or acc_value != value:
            continue
        if all(lhs_pattern.get(a) == v for a, v in acc_lhs.items()):
            return True
    return False


def fd_violation_rate(db: Database, lhs: Sequence[str], rhs: str) -> float:
    """Fraction of tuples deviating from the FD ``lhs -> rhs``.

    For each LHS partition the majority RHS value is taken as the
    consensus; the rate is the fraction of tuples carrying a minority
    value. A true FD over data with an error rate ``e`` scores ≈ ``e``.
    Returns 0.0 on an empty database.
    """
    lhs_pos = db.schema.positions(lhs)
    rhs_pos = db.schema.position(rhs)
    groups: dict[tuple[object, ...], Counter] = defaultdict(Counter)
    for tid in db.tids():
        values = db.values_snapshot(tid)
        groups[tuple(values[p] for p in lhs_pos)][values[rhs_pos]] += 1
    n = len(db)
    if n == 0:
        return 0.0
    minority = sum(
        sum(counts.values()) - counts.most_common(1)[0][1] for counts in groups.values()
    )
    return minority / n


def discover_variable_cfds(
    db: Database,
    candidates: Sequence[tuple[Sequence[str], str]] | None = None,
    max_violation_rate: float = 0.1,
    min_sharing: float = 1.2,
    min_reduction: float = 0.5,
) -> list[CFD]:
    """Promote near-functional dependencies to variable CFDs.

    Parameters
    ----------
    db:
        Instance to validate against.
    candidates:
        ``(lhs_attributes, rhs_attribute)`` pairs to test. Defaults to
        all single-attribute LHS pairs.
    max_violation_rate:
        Maximum tolerated fraction of minority tuples (dirty data still
        deviates from a true FD at roughly the cell error rate).
    min_sharing:
        Minimum average LHS-partition size; an FD whose LHS is nearly a
        key is vacuous for repair and is skipped.
    min_reduction:
        The conditional deviation rate must be at most this fraction of
        the *unconditional* one (the RHS column's own minority mass) —
        otherwise the "FD" explains nothing and a skewed independent
        column would masquerade as functional.
    """
    if candidates is None:
        attrs = db.schema.attributes
        candidates = [([a], b) for a in attrs for b in attrs if a != b]
    rules: list[CFD] = []
    baselines: dict[str, float] = {}
    for lhs, rhs in candidates:
        lhs = list(lhs)
        lhs_pos = db.schema.positions(lhs)
        keys = {tuple(db.values_snapshot(tid)[p] for p in lhs_pos) for tid in db.tids()}
        if not keys or len(db) / len(keys) < min_sharing:
            continue
        rate = fd_violation_rate(db, lhs, rhs)
        if rate > max_violation_rate:
            continue
        baseline = baselines.get(rhs)
        if baseline is None:
            counts = Counter(db.column(rhs))
            n = max(1, len(db))
            baseline = (n - counts.most_common(1)[0][1]) / n if counts else 0.0
            baselines[rhs] = baseline
        if baseline <= 0.0 or rate > min_reduction * baseline:
            continue
        pattern = {a: ANY for a in lhs}
        pattern[rhs] = ANY
        rules.append(CFD(lhs, rhs, pattern))
    return rules


def discover_rules(
    db: Database,
    support: float = 0.05,
    confidence: float = 0.95,
    max_lhs: int = 2,
    max_rules: int = 200,
    variable_candidates: Sequence[tuple[Sequence[str], str]] | None = None,
    max_violation_rate: float = 0.1,
    min_reduction: float = 0.5,
    include_variable: bool = True,
) -> RuleSet:
    """Discover a full rule set (constant miner + FD validator).

    This is the Dataset 2 pipeline of the paper: discover rules from
    the instance itself with a support threshold, then hand them to the
    repair framework.
    """
    rules: list[CFD] = mine_constant_cfds(
        db, support=support, confidence=confidence, max_lhs=max_lhs, max_rules=max_rules
    )
    if include_variable:
        rules.extend(
            discover_variable_cfds(
                db,
                candidates=variable_candidates,
                max_violation_rate=max_violation_rate,
                min_reduction=min_reduction,
            )
        )
    return RuleSet(rules, schema=db.schema)
