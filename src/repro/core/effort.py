"""User-effort accounting: budgets, batches and per-group quotas.

Two knobs from the paper:

* the interactive batch size ``n_s`` — how many updates the user labels
  before the learner is retrained and the display reordered (§4.2);
* the per-group verification quota (§5.2)::

      d_i = E × (1 − g(c_i) / g_max)

  where ``E`` is the initial number of dirty tuples and ``g`` the VOI
  benefit — high-benefit groups are mostly correct and need little
  verification before the learner can take over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["EffortPolicy", "FeedbackBudget"]


class FeedbackBudget:
    """Counts user labels against an optional hard limit ``F``.

    Examples
    --------
    >>> budget = FeedbackBudget(limit=2)
    >>> budget.consume(); budget.exhausted
    False
    >>> budget.consume(); budget.exhausted
    True
    """

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 0:
            raise ConfigError(f"feedback budget must be >= 0, got {limit}")
        self.limit = limit
        self.used = 0

    def consume(self, amount: int = 1) -> None:
        """Record *amount* user labels."""
        self.used += amount

    @property
    def remaining(self) -> int | None:
        """Labels left, or ``None`` when unlimited."""
        if self.limit is None:
            return None
        return max(0, self.limit - self.used)

    @property
    def exhausted(self) -> bool:
        """True once the limit (if any) is reached."""
        return self.limit is not None and self.used >= self.limit

    def __repr__(self) -> str:
        cap = "∞" if self.limit is None else str(self.limit)
        return f"FeedbackBudget({self.used}/{cap})"


@dataclass(slots=True)
class EffortPolicy:
    """How much feedback each group receives before delegation.

    Attributes
    ----------
    batch_size:
        ``n_s``: labels per interactive round before retraining.
    min_labels:
        Floor on the per-group quota (the learner needs at least a few
        labels from a new group to adapt locally).
    use_benefit_quota:
        When True, apply the paper's ``d_i = E(1 − g/g_max)`` formula;
        when False every group gets ``min(group size, fixed_quota)``.
    fixed_quota:
        Quota used when *use_benefit_quota* is False (``None`` = the
        whole group, i.e. no delegation before the group is done).
    """

    batch_size: int = 10
    min_labels: int = 2
    use_benefit_quota: bool = True
    fixed_quota: int | None = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.min_labels < 0:
            raise ConfigError(f"min_labels must be >= 0, got {self.min_labels}")
        if self.fixed_quota is not None and self.fixed_quota < 0:
            raise ConfigError(f"fixed_quota must be >= 0, got {self.fixed_quota}")

    def group_quota(
        self,
        group_size: int,
        benefit: float,
        max_benefit: float,
        initial_dirty: int,
    ) -> int:
        """Number of labels the user should provide for this group.

        Implements ``d_i = E × (1 − g/g_max)`` clamped into
        ``[min_labels, group_size]``; groups ranked at ``g_max`` thus
        receive only the minimum verification.
        """
        if not self.use_benefit_quota:
            quota = group_size if self.fixed_quota is None else self.fixed_quota
            return max(0, min(group_size, quota))
        if max_benefit <= 0.0:
            return group_size
        ratio = min(1.0, max(0.0, benefit / max_benefit))
        quota = int(round(initial_dirty * (1.0 - ratio)))
        return max(min(self.min_labels, group_size), min(group_size, quota))
