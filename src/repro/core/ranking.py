"""Group ranking strategies (paper §5.1: VOI vs Greedy vs Random).

Strategies order the candidate-update groups before each interactive
session. All strategies return ``(group, score)`` pairs sorted best
first; scores are strategy-specific (Eq. 6 benefit, group size, or a
uniform 0) but always usable by the effort policy via normalisation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

import numpy as np

from repro.core.grouping import UpdateGroup, group_sort_key
from repro.core.voi import VOIEstimator
from repro.repair.candidate import CandidateUpdate

__all__ = ["GreedyRanking", "RandomRanking", "RankingStrategy", "VOIRanking"]

ProbabilityFn = Callable[[CandidateUpdate], float]


class RankingStrategy(ABC):
    """Orders update groups for user consultation."""

    #: Short identifier used in experiment reports.
    name: str = "abstract"

    @abstractmethod
    def rank(
        self, groups: list[UpdateGroup], probability: ProbabilityFn
    ) -> list[tuple[UpdateGroup, float]]:
        """Return ``(group, score)`` pairs, most promising first."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class VOIRanking(RankingStrategy):
    """Decision-theoretic ranking by estimated quality gain (Eq. 6)."""

    name = "voi"

    def __init__(self, estimator: VOIEstimator) -> None:
        self.estimator = estimator

    def rank(
        self, groups: list[UpdateGroup], probability: ProbabilityFn
    ) -> list[tuple[UpdateGroup, float]]:
        return self.estimator.rank_groups(groups, probability)


class GreedyRanking(RankingStrategy):
    """Largest-group-first baseline (paper §5.1 'Greedy').

    Parameters
    ----------
    estimator:
        Optional VOI estimator. When provided, equal-sized groups are
        tie-broken by their Eq. 6 benefit, evaluated through the
        estimator's batched what-if pass; the primary largest-first
        ordering (and the reported size score) is unchanged. Without an
        estimator, ties break lexicographically as before.
    """

    name = "greedy"

    def __init__(self, estimator: VOIEstimator | None = None) -> None:
        self.estimator = estimator

    def rank(
        self, groups: list[UpdateGroup], probability: ProbabilityFn
    ) -> list[tuple[UpdateGroup, float]]:
        if self.estimator is None:
            ordered = sorted(groups, key=lambda g: (-g.size, *group_sort_key(g.key)))
            return [(group, float(group.size)) for group in ordered]
        benefit = {id(g): score for g, score in self.estimator.rank_groups(groups, probability)}
        ordered = sorted(
            groups, key=lambda g: (-g.size, -benefit[id(g)], *group_sort_key(g.key))
        )
        return [(group, float(group.size)) for group in ordered]


class RandomRanking(RankingStrategy):
    """Uniform-random ordering baseline (paper §5.1 'Random')."""

    name = "random"

    def __init__(self, seed: int | None = 0) -> None:
        self._rng = np.random.default_rng(seed)

    @property
    def rng_state(self) -> dict:
        """The permutation RNG's serialisable state (for checkpoints)."""
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    def rank(
        self, groups: list[UpdateGroup], probability: ProbabilityFn
    ) -> list[tuple[UpdateGroup, float]]:
        order = self._rng.permutation(len(groups))
        return [(groups[int(i)], 0.0) for i in order]
