"""The feedback learner: per-attribute random-forest committees (§4.2).

GDR trains one classification model ``M_Ai`` per attribute. Each model
predicts the expected user feedback (confirm / reject / retain) for a
suggested update on that attribute and exposes:

* the prediction itself (majority committee vote);
* the confirm probability ``p̃`` feeding the VOI formula (fraction of
  committee members voting *confirm*);
* the committee uncertainty (vote entropy) driving the active-learning
  ordering inside a group.

Before a model has enough labelled examples (or has seen only one
class), predictions abstain: ``p̃`` falls back to the update score
``s_j`` and the uncertainty is maximal — exactly the paper's cold-start
rule.
"""

from __future__ import annotations

import zlib
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.db.schema import Schema
from repro.errors import ConfigError
from repro.ml.binning import BinnedMatrix
from repro.ml.encoding import FEEDBACK_CLASSES, UpdateExampleEncoder, feedback_to_class
from repro.ml.forest import HistogramForestClassifier, RandomForestClassifier
from repro.ml.metrics import vote_entropy
from repro.repair.candidate import CandidateUpdate
from repro.repair.feedback import Feedback
from repro.repair.similarity import SimilarityFunction, similarity
from repro.testing.faults import fault_hit

__all__ = ["FeedbackLearner", "LearnerPrediction"]

#: Committee implementations selectable per learner (and through
#: ``GDRConfig(learner=...)``): the histogram forest is the default and
#: is bit-identical to the exact-sort reference it replaces.
LEARNER_KINDS = ("hist", "exact")


class _ExampleStore:
    """Growable per-attribute training matrix with a warm rank encoding.

    Replaces the old list-of-1-row-arrays + ``np.vstack``-per-retrain
    layout: rows land in amortised doubling arrays, and the lossless
    bin encoding the histogram forest trains on is maintained
    *incrementally* — only rows appended since the last refit are
    re-ranked, and a column is fully re-encoded only when its
    vocabulary actually grew.
    """

    __slots__ = ("_X", "_y", "_n", "_classes", "_codes", "_bin_values", "_encoded")

    def __init__(self, n_features: int, capacity: int = 32) -> None:
        self._X = np.empty((capacity, n_features), dtype=np.float64)
        self._y = np.empty(capacity, dtype=np.int64)
        self._n = 0
        self._classes: set[int] = set()
        # int64 rank codes for rows [0, _encoded); grown with _X
        self._codes: np.ndarray | None = None
        self._bin_values: list[np.ndarray] | None = None
        self._encoded = 0

    @classmethod
    def from_arrays(cls, X: np.ndarray, y: np.ndarray) -> "_ExampleStore":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        store = cls(X.shape[1], capacity=max(32, len(y)))
        store._X[: len(y)] = X
        store._y[: len(y)] = y
        store._n = len(y)
        store._classes = {int(v) for v in np.unique(y)} if len(y) else set()
        return store

    def __len__(self) -> int:
        return self._n

    @property
    def n_features(self) -> int:
        return self._X.shape[1]

    @property
    def X(self) -> np.ndarray:
        """View of the filled rows (no copy, no vstack)."""
        return self._X[: self._n]

    @property
    def y(self) -> np.ndarray:
        return self._y[: self._n]

    @property
    def n_classes_seen(self) -> int:
        return len(self._classes)

    def append(self, features: np.ndarray, label: int) -> None:
        if self._n == len(self._y):
            capacity = max(32, 2 * len(self._y))
            X = np.empty((capacity, self.n_features), dtype=np.float64)
            X[: self._n] = self._X[: self._n]
            self._X = X
            y = np.empty(capacity, dtype=np.int64)
            y[: self._n] = self._y[: self._n]
            self._y = y
            if self._codes is not None:
                codes = np.empty((capacity, self.n_features), dtype=np.int64)
                codes[: self._encoded] = self._codes[: self._encoded]
                self._codes = codes
        self._X[self._n] = features
        self._y[self._n] = label
        self._n += 1
        self._classes.add(int(label))

    def binned(self) -> BinnedMatrix:
        """Lossless rank encoding of the current rows.

        Equal to ``bin_matrix(self.X)`` (same bin tables, same codes) —
        verified property-style in the test suite — but incremental:
        appended rows are ranked by ``searchsorted`` against the
        existing bin tables, and only a column that saw a *new* value
        pays a full re-encode (one ``np.unique`` over that column).
        """
        n, m = self._n, self.n_features
        if self._codes is None:
            self._codes = np.empty((len(self._y), m), dtype=np.int64)
            self._bin_values = [np.empty(0, dtype=np.float64)] * m
            self._encoded = 0
        if self._encoded < n:
            lo = self._encoded
            for j in range(m):
                values = self._bin_values[j]
                new = self._X[lo:n, j]
                if len(values):
                    pos = np.searchsorted(values, new)
                    inside = pos < len(values)
                    known = values[np.where(inside, pos, 0)] == new
                    if bool((inside & known).all()):
                        # vocabulary unchanged: ranks of the new rows
                        # are plain binary-search positions
                        self._codes[lo:n, j] = pos
                        continue
                values, inverse = np.unique(self._X[:n, j], return_inverse=True)
                self._bin_values[j] = values
                self._codes[:n, j] = inverse
            self._encoded = n
        return BinnedMatrix(self._codes[:n], tuple(self._bin_values))


@dataclass(frozen=True, slots=True)
class LearnerPrediction:
    """One model opinion about a suggested update.

    Attributes
    ----------
    feedback:
        Predicted feedback class, or ``None`` when the model abstains
        (not enough training data yet).
    confirm_probability:
        ``p̃``: committee fraction voting confirm; equals the update's
        own score while the model abstains.
    uncertainty:
        Committee vote entropy in [0, 1]; 1.0 while the model abstains.
    """

    feedback: Feedback | None
    confirm_probability: float
    uncertainty: float

    @property
    def is_decision(self) -> bool:
        """True when the learner is ready to decide for the user."""
        return self.feedback is not None


class FeedbackLearner:
    """Manages the per-attribute committee models and their training data.

    Parameters
    ----------
    schema:
        Relation schema (one model per attribute).
    sim:
        Relationship function ``R`` used as a feature.
    n_estimators, max_depth, min_samples_leaf:
        Committee hyper-parameters (paper: ``k = 10`` trees).
    min_examples:
        Minimum labelled examples (with ≥ 2 classes present) before a
        model starts making decisions.
    trust_min_samples / trust_min_accuracy:
        How much recent user-checked evidence, and how accurate it must
        be, before :meth:`is_trusted` lets the model decide for the
        user.
    seed:
        Base random seed; attribute models get independent streams.
    kind:
        ``"hist"`` (default) trains
        :class:`~repro.ml.forest.HistogramForestClassifier` committees
        from warm, incrementally binned training matrices; ``"exact"``
        keeps the exact-sort reference committees. The two produce
        bit-identical models, so every prediction, version and repair
        trajectory agrees between them.
    """

    def __init__(
        self,
        schema: Schema,
        sim: SimilarityFunction = similarity,
        n_estimators: int = 10,
        max_depth: int | None = 12,
        min_samples_leaf: int = 1,
        min_examples: int = 5,
        trust_min_samples: int = 8,
        trust_min_accuracy: float = 0.85,
        seed: int = 0,
        kind: str = "hist",
    ) -> None:
        if kind not in LEARNER_KINDS:
            raise ConfigError(f"kind must be one of {LEARNER_KINDS}, got {kind!r}")
        self.schema = schema
        self.encoder = UpdateExampleEncoder(schema, sim)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_examples = min_examples
        self.trust_min_samples = trust_min_samples
        self.trust_min_accuracy = trust_min_accuracy
        self._seed = seed
        self.kind = kind
        self._stores: dict[str, _ExampleStore] = {
            a: _ExampleStore(self.encoder.n_features) for a in schema.attributes
        }
        self._models: dict[str, RandomForestClassifier | None] = {
            a: None for a in schema.attributes
        }
        # bumped whenever an attribute's committee is refitted — the
        # cheap staleness check for caches of model-derived quantities
        # (the delta pipeline's p̃ memo)
        self._model_versions: dict[str, int] = {a: 0 for a in schema.attributes}
        self._stale: set[str] = set()
        # rolling record of "was the model's prediction confirmed by the
        # user?" — the basis of the paper's is-the-classifier-accurate
        # judgement that gates delegation
        self._validation: dict[str, deque[bool]] = {
            a: deque(maxlen=20) for a in schema.attributes
        }

    # ------------------------------------------------------------------
    # training data
    # ------------------------------------------------------------------
    def add_example(
        self,
        update: CandidateUpdate,
        row_values: Sequence[object],
        feedback: Feedback,
    ) -> None:
        """Record one labelled example for the update's attribute model.

        Parameters
        ----------
        update:
            The suggestion the feedback was about.
        row_values:
            The tuple's values *at suggestion time* (dirty snapshot).
        feedback:
            The user's (or oracle's) decision.
        """
        attr = update.attribute
        features = self.encoder.encode(row_values, attr, update.value)
        self._stores[attr].append(features, feedback_to_class(feedback))
        self._stale.add(attr)

    def example_count(self, attribute: str) -> int:
        """Labelled examples accumulated for one attribute."""
        return len(self._stores[attribute])

    def total_examples(self) -> int:
        """Labelled examples accumulated across all attributes."""
        return sum(len(v) for v in self._stores.values())

    # ------------------------------------------------------------------
    # model lifecycle
    # ------------------------------------------------------------------
    def is_ready(self, attribute: str) -> bool:
        """True when the attribute's model can make decisions."""
        store = self._stores[attribute]
        return len(store) >= self.min_examples and store.n_classes_seen >= 2

    def retrain(self, attribute: str) -> bool:
        """(Re)fit the attribute model if ready and stale.

        Returns True when a fit actually happened. The refit is atomic
        with respect to crashes: nothing below mutates learner state
        until the new committee is fully fitted, so a kill at the fault
        point (or anywhere mid-fit) leaves the previous model, its
        version and the staleness flag untouched — a restored session
        simply re-runs the refit.
        """
        if attribute not in self._stale or not self.is_ready(attribute):
            return False
        store = self._stores[attribute]
        fault_hit("learner.refit", attribute=attribute, examples=len(store))
        # zlib.crc32 is stable across processes (unlike hash(), which is
        # randomised by PYTHONHASHSEED) — runs must reproduce exactly
        random_state = self._seed + zlib.crc32(attribute.encode()) % 100_000
        if self.kind == "hist":
            model = HistogramForestClassifier(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=random_state,
            )
            # warm start: the store's incrementally maintained encoding
            # skips re-binning the rows every previous refit already saw
            model.fit(
                store.X, store.y, n_classes=len(FEEDBACK_CLASSES), binned=store.binned()
            )
        else:
            model = RandomForestClassifier(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=random_state,
            )
            model.fit(store.X, store.y, n_classes=len(FEEDBACK_CLASSES))
        self._models[attribute] = model
        self._model_versions[attribute] += 1
        self._stale.discard(attribute)
        return True

    def model_version(self, attribute: str) -> int:
        """Fit counter of the attribute's committee (0 while unfitted).

        Predictions for an update on *attribute* can only change when
        this version moves or the tuple's row values change — the
        invariant backing the cached VOI ranking.
        """
        return self._model_versions.get(attribute, 0)

    def retrain_all(self) -> int:
        """Refit every stale, ready model; returns the number fitted."""
        return sum(1 for attr in self.schema.attributes if self.retrain(attr))

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(
        self, update: CandidateUpdate, row_values: Sequence[object]
    ) -> LearnerPrediction:
        """Model opinion for a suggestion; abstains while cold.

        The caller is expected to have invoked :meth:`retrain` after
        the last batch of labels (the session does this), but a stale
        model still answers from its previous fit, mirroring the
        interactive behaviour described in §4.2.
        """
        attr = update.attribute
        model = self._models[attr]
        if model is None:
            return LearnerPrediction(
                feedback=None,
                confirm_probability=update.score,
                uncertainty=1.0,
            )
        features = self.encoder.encode(row_values, attr, update.value)
        label, fractions, uncertainty = model.predict_one(features)
        return LearnerPrediction(
            feedback=FEEDBACK_CLASSES[label],
            confirm_probability=float(fractions[feedback_to_class(Feedback.CONFIRM)]),
            uncertainty=float(uncertainty),
        )

    def predict_many(
        self,
        updates: Sequence[CandidateUpdate],
        rows: Sequence[Sequence[object]],
    ) -> list[LearnerPrediction]:
        """Model opinions for many suggestions, batching per attribute.

        Equivalent to calling :meth:`predict` per update (the committee
        arithmetic is row-independent, so the results are identical),
        but all updates sharing an attribute go through one vectorized
        committee pass instead of one single-row pass each — the hot
        path of the cached VOI ranking, the in-session uncertainty
        ordering, and the batched learner drain. Callers must ensure
        *rows* are consistent snapshots of the instance the predictions
        are about; when decisions write the database mid-batch, read
        rows through a :class:`~repro.db.snapshot.SnapshotView` and
        re-predict any update whose tuple was actually written (see
        :func:`~repro.core.session.decide_batched`).
        """
        results: list[LearnerPrediction | None] = [None] * len(updates)
        by_attr: dict[str, list[int]] = {}
        for i, update in enumerate(updates):
            if self._models[update.attribute] is None:
                results[i] = LearnerPrediction(
                    feedback=None,
                    confirm_probability=update.score,
                    uncertainty=1.0,
                )
            else:
                by_attr.setdefault(update.attribute, []).append(i)
        confirm_class = feedback_to_class(Feedback.CONFIRM)
        for attr, indices in by_attr.items():
            model = self._models[attr]
            X = self.encoder.encode_many(
                [rows[i] for i in indices], attr, [updates[i].value for i in indices]
            )
            fractions = model.vote_fractions(X)
            labels = np.argmax(fractions, axis=1)
            for j, i in enumerate(indices):
                row_fractions = fractions[j]
                results[i] = LearnerPrediction(
                    feedback=FEEDBACK_CLASSES[int(labels[j])],
                    confirm_probability=float(row_fractions[confirm_class]),
                    uncertainty=float(vote_entropy(row_fractions, model.n_classes_)),
                )
        return results

    def confirm_probability(
        self, update: CandidateUpdate, row_values: Sequence[object]
    ) -> float:
        """``p̃_j`` for the VOI formula (score prior until trained)."""
        return self.predict(update, row_values).confirm_probability

    # ------------------------------------------------------------------
    # user validation of model predictions (paper §4.2: "the user is
    # the one to decide whether the classifiers are accurate")
    # ------------------------------------------------------------------
    def record_validation(self, attribute: str, correct: bool) -> None:
        """Record whether a model prediction agreed with the user."""
        self._validation[attribute].append(correct)

    def validation_accuracy(self, attribute: str) -> float | None:
        """Recent fraction of user-confirmed predictions (None if none)."""
        window = self._validation[attribute]
        if not window:
            return None
        return sum(window) / len(window)

    def is_trusted(
        self,
        attribute: str,
        min_samples: int | None = None,
        min_accuracy: float | None = None,
    ) -> bool:
        """True when the user would delegate decisions on *attribute*.

        Requires at least *min_samples* recent predictions checked by
        the user, of which a *min_accuracy* fraction were correct
        (defaults come from the constructor).
        """
        if min_samples is None:
            min_samples = self.trust_min_samples
        if min_accuracy is None:
            min_accuracy = self.trust_min_accuracy
        window = self._validation[attribute]
        if len(window) < min_samples:
            return False
        return sum(window) / len(window) >= min_accuracy

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Everything a checkpoint needs to rebuild this learner.

        Fitted committees are pickled directly — refitting on restore
        would reproduce them anyway (fits are seeded deterministically)
        but pickling keeps restore O(size) instead of O(refit) and
        works even for attributes whose staleness flag was clear.
        Training examples export as dense per-attribute ``(X, y)``
        arrays (format 2); :meth:`restore_state` also accepts the
        pre-store per-row list format of older checkpoints.
        """
        import pickle

        return {
            "format": 2,
            "examples": {
                a: (store.X.copy(), store.y.copy())
                for a, store in self._stores.items()
            },
            # the encoder's value→code dictionaries are trained-on
            # state: without them a restored session re-encodes future
            # examples against a fresh vocabulary and every fitted
            # committee answers garbage (a divergence the chaos suite's
            # mid-run kill tests would catch)
            "vocab": self.encoder.export_vocab(),
            "models": pickle.dumps(self._models),
            "model_versions": dict(self._model_versions),
            "stale": set(self._stale),
            "validation": {a: list(v) for a, v in self._validation.items()},
        }

    def restore_state(self, state: dict) -> None:
        """Load a state produced by :meth:`export_state`.

        The learner must have been constructed with the same schema and
        hyper-parameters; afterwards predictions, versions and trust
        judgements are byte-identical to the checkpointed instance.
        Both the format-2 array layout and the legacy
        ``"features"``/``"labels"`` per-row layout are accepted, so
        checkpoints written before the store existed keep restoring.
        """
        import pickle

        if "vocab" in state:
            self.encoder.restore_vocab(state["vocab"])
        if "examples" in state:
            self._stores = {
                a: _ExampleStore.from_arrays(X, y)
                for a, (X, y) in state["examples"].items()
            }
        else:
            n_features = self.encoder.n_features
            self._stores = {}
            for a, rows in state["features"].items():
                store = _ExampleStore(n_features, capacity=max(32, len(rows)))
                for features, label in zip(rows, state["labels"][a]):
                    store.append(features, int(label))
                self._stores[a] = store
        self._models = pickle.loads(state["models"])
        self._model_versions = dict(state["model_versions"])
        self._stale = set(state["stale"])
        self._validation = {
            a: deque(v, maxlen=20) for a, v in state["validation"].items()
        }

    def feature_importances(self, attribute: str) -> dict[str, float] | None:
        """Per-feature importances of a fitted attribute model.

        Returns ``None`` while the model is unfitted. Keys are the
        schema attributes plus ``"suggested_value"`` and
        ``"similarity"`` — useful to inspect *what* the learner keys
        its confirm/reject decisions on (e.g. the data-entry source).
        """
        model = self._models[attribute]
        if model is None:
            return None
        return dict(zip(self.encoder.feature_names, model.feature_importances_))

    def __repr__(self) -> str:
        ready = sum(1 for a in self.schema.attributes if self._models[a] is not None)
        return f"FeedbackLearner({ready}/{len(self.schema)} models fitted, {self.total_examples()} examples)"
