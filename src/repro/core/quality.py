"""Data-quality loss (paper Eq. 2 and Eq. 3) and the evaluation metric.

The paper measures the quality of an instance ``D`` relative to the
desired clean instance ``Dopt`` as::

    ql(D, φ)  = (|Dopt ⊨ φ| − |D ⊨ φ|) / |Dopt ⊨ φ|           (Eq. 2)
    L(D)      = Σ_i w_i · ql(D, φ_i)                           (Eq. 3)

with rule weights ``w_i = |D(φ_i)| / |D|`` (context-size fractions).
Experiments report *quality improvement*, the relative reduction of the
loss from the initial dirty instance.

:class:`QualityEvaluator` freezes the ``Dopt`` statistics once and then
scores any live detector in O(|Σ|), which keeps per-label trajectory
recording cheap.
"""

from __future__ import annotations

from repro.constraints.repository import RuleSet
from repro.constraints.violations import ViolationDetector
from repro.db.database import Database

__all__ = ["QualityEvaluator", "quality_improvement"]


def quality_improvement(initial_loss: float, current_loss: float) -> float:
    """Percentage quality improvement relative to the initial loss.

    Returns 100.0 when the initial instance was already perfect (no
    loss to recover) and clamps at 0 from below is *not* applied — a
    repair that makes things worse yields a negative improvement.
    """
    if initial_loss <= 0.0:
        return 100.0
    return 100.0 * (initial_loss - current_loss) / initial_loss


class QualityEvaluator:
    """Scores instances against a fixed ground truth ``Dopt``.

    Parameters
    ----------
    clean_db:
        The desired clean instance (ground truth).
    rules:
        The quality rules Σ.

    Notes
    -----
    Weights are computed on ``Dopt`` (not the evolving ``D``) so the
    metric stays comparable across the whole repair trajectory.

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> from repro.constraints import RuleSet, ViolationDetector, parse_rules
    >>> schema = Schema("r", ["zip", "city"])
    >>> clean = Database(schema, [["46360", "Michigan City"]])
    >>> rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
    >>> dirty = Database(schema, [["46360", "Westville"]])
    >>> evaluator = QualityEvaluator(clean, rules)
    >>> evaluator.loss(ViolationDetector(dirty, rules))
    1.0
    """

    def __init__(self, clean_db: Database, rules: RuleSet) -> None:
        self.rules = rules
        opt_detector = ViolationDetector(clean_db, rules)
        opt_detector.detach()
        n = max(1, len(clean_db))
        self._sat_opt = {rule: opt_detector.satisfying_count(rule) for rule in rules}
        self._weights = {rule: opt_detector.context_size(rule) / n for rule in rules}
        residual = opt_detector.vio_total()
        #: violations the ground truth itself carries (should be 0 for a
        #: consistent clean instance; exposed for sanity checks).
        self.ground_truth_violations = residual

    def rule_loss(self, detector: ViolationDetector, rule) -> float:
        """Eq. 2 for one rule, clamped into [0, 1]."""
        sat_opt = self._sat_opt[rule]
        if sat_opt <= 0:
            return 0.0
        sat_now = detector.satisfying_count(rule)
        return min(1.0, max(0.0, (sat_opt - sat_now) / sat_opt))

    def loss(self, detector: ViolationDetector) -> float:
        """Eq. 3 loss of the detector's current instance."""
        return sum(self._weights[rule] * self.rule_loss(detector, rule) for rule in self.rules)

    def loss_of(self, db: Database) -> float:
        """Convenience: build a throwaway detector for *db* and score it."""
        detector = ViolationDetector(db, self.rules)
        detector.detach()
        return self.loss(detector)

    def weights(self) -> dict:
        """The fixed per-rule weights ``w_i`` (copy)."""
        return dict(self._weights)
