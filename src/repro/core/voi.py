"""Value-of-information group benefit (paper Eq. 6).

The estimated data-quality gain of acquiring feedback for a group
``c = {r_1, ..., r_J}`` is::

    E[g(c)] = Σ_{φ_i} w_i Σ_{r_j ∈ c} p̃_j · (vio(D,{φ_i}) − vio(D^{r_j},{φ_i}))
                                        / |D^{r_j} ⊨ φ_i|

where ``p̃_j`` approximates the probability that the user confirms
``r_j`` (the learner's confirm probability once trained, the update
score ``s_j`` before that), ``vio`` is the Definition 1 violation count
and ``|D^{r_j} ⊨ φ_i|`` counts context tuples satisfying the rule after
hypothetically applying the update.

The estimator works against any *stats provider* exposing the
:class:`~repro.constraints.violations.ViolationDetector` what-if
interface, which keeps the arithmetic unit-testable against the paper's
worked example (§4.1, expected benefit 1.05). Providers additionally
exposing the batched ``what_if_many`` (the columnar detector does) get
all probes for one cell evaluated in a single pass over the partition
statistics; plain scalar providers fall back to per-update probes.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Protocol

from repro.constraints.cfd import CFD
from repro.constraints.violations import WhatIfOutcome
from repro.core.grouping import UpdateGroup
from repro.repair.candidate import CandidateUpdate

__all__ = ["UpdateStatsProvider", "VOIEstimator"]

#: Maps an update to its confirm probability ``p̃``.
ProbabilityFn = Callable[[CandidateUpdate], float]


class UpdateStatsProvider(Protocol):
    """What the VOI arithmetic needs from the violation machinery.

    ``what_if_many(tid, attribute, values)`` is an optional extension
    detected at runtime: when present it is used to batch all candidate
    probes for a cell.
    """

    def what_if(self, tid: int, attribute: str, value: object) -> Mapping[CFD, WhatIfOutcome]:
        """Hypothetical per-rule effect of one cell update."""
        ...  # pragma: no cover - protocol

    def weights(self) -> Mapping[CFD, float]:
        """Current rule weights ``w_i``."""
        ...  # pragma: no cover - protocol


def _benefit_from_outcomes(
    outcomes: Mapping[CFD, WhatIfOutcome],
    probability: float,
    weights: Mapping[CFD, float],
) -> float:
    """The inner Eq. 6 term given the per-rule what-if outcomes."""
    benefit = 0.0
    for rule, outcome in outcomes.items():
        weight = weights.get(rule, 0.0)
        if weight == 0.0:
            continue
        denominator = max(1, outcome.satisfying_after)
        benefit += weight * probability * outcome.vio_reduction / denominator
    return benefit


class VOIEstimator:
    """Computes Eq. 6 group benefits from what-if statistics.

    Parameters
    ----------
    stats:
        A :class:`UpdateStatsProvider` — in production the live
        :class:`~repro.constraints.violations.ViolationDetector`.
    weights:
        Optional fixed rule-weight override; when omitted, weights are
        read from ``stats.weights()`` at every evaluation (the paper's
        ``w_i = |D(φ_i)|/|D|`` on the current instance).

    Examples
    --------
    See ``tests/core/test_voi.py::test_paper_worked_example`` for the
    §4.1 reproduction yielding exactly 1.05.
    """

    def __init__(
        self,
        stats: UpdateStatsProvider,
        weights: Mapping[CFD, float] | None = None,
    ) -> None:
        self._stats = stats
        self._fixed_weights = dict(weights) if weights is not None else None

    def _weights(self) -> Mapping[CFD, float]:
        if self._fixed_weights is not None:
            return self._fixed_weights
        return self._stats.weights()

    def update_benefit(
        self,
        update: CandidateUpdate,
        probability: float,
        weights: Mapping[CFD, float] | None = None,
    ) -> float:
        """The inner Eq. 6 term for a single update ``r_j``."""
        if weights is None:
            weights = self._weights()
        outcomes = self._stats.what_if(update.tid, update.attribute, update.value)
        return _benefit_from_outcomes(outcomes, probability, weights)

    def update_benefits_many(
        self,
        updates: Sequence[CandidateUpdate],
        probabilities: Sequence[float],
        weights: Mapping[CFD, float] | None = None,
    ) -> list[float]:
        """Eq. 6 terms for many updates, batching probes per cell.

        Updates targeting the same ``(tid, attribute)`` cell share one
        ``what_if_many`` call, so evaluating a whole candidate pool
        costs one partition-statistics pass per distinct cell instead of
        one apply/revert cycle per update.
        """
        if weights is None:
            weights = self._weights()
        what_if_many = getattr(self._stats, "what_if_many", None)
        if what_if_many is None:
            return [
                self.update_benefit(update, probability, weights)
                for update, probability in zip(updates, probabilities)
            ]
        benefits = [0.0] * len(updates)
        by_cell: dict[tuple[int, str], list[int]] = {}
        for i, update in enumerate(updates):
            by_cell.setdefault(update.cell, []).append(i)
        for (tid, attribute), indices in by_cell.items():
            outcome_maps = what_if_many(tid, attribute, [updates[i].value for i in indices])
            for i, outcomes in zip(indices, outcome_maps):
                benefits[i] = _benefit_from_outcomes(outcomes, probabilities[i], weights)
        return benefits

    def group_benefit(self, group: UpdateGroup, probability: ProbabilityFn) -> float:
        """``E[g(c)]`` of Eq. 6 for one group.

        Parameters
        ----------
        group:
            The update group ``c``.
        probability:
            Callable producing ``p̃_j`` per update (learner confirm
            probability, falling back to the update score).
        """
        weights = self._weights()
        benefits = self.update_benefits_many(
            group.updates, [probability(update) for update in group.updates], weights
        )
        return sum(benefits)

    def rank_groups(
        self,
        groups: list[UpdateGroup],
        probability: ProbabilityFn,
    ) -> list[tuple[UpdateGroup, float]]:
        """All groups with their benefits, most beneficial first.

        Every update across every group is evaluated through one batched
        pass (:meth:`update_benefits_many`); ties break toward larger
        groups, then lexicographic key, so the ranking is deterministic.
        """
        weights = self._weights()
        flat_updates: list[CandidateUpdate] = []
        spans: list[tuple[int, int]] = []
        for group in groups:
            start = len(flat_updates)
            flat_updates.extend(group.updates)
            spans.append((start, len(flat_updates)))
        benefits = self.update_benefits_many(
            flat_updates, [probability(update) for update in flat_updates], weights
        )
        scored = [
            (group, sum(benefits[start:end])) for group, (start, end) in zip(groups, spans)
        ]
        scored.sort(key=lambda pair: (-pair[1], -pair[0].size, pair[0].attribute, str(pair[0].value)))
        return scored
