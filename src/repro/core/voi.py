"""Value-of-information group benefit (paper Eq. 6).

The estimated data-quality gain of acquiring feedback for a group
``c = {r_1, ..., r_J}`` is::

    E[g(c)] = Σ_{φ_i} w_i Σ_{r_j ∈ c} p̃_j · (vio(D,{φ_i}) − vio(D^{r_j},{φ_i}))
                                        / |D^{r_j} ⊨ φ_i|

where ``p̃_j`` approximates the probability that the user confirms
``r_j`` (the learner's confirm probability once trained, the update
score ``s_j`` before that), ``vio`` is the Definition 1 violation count
and ``|D^{r_j} ⊨ φ_i|`` counts context tuples satisfying the rule after
hypothetically applying the update.

The estimator works against any *stats provider* exposing the
:class:`~repro.constraints.violations.ViolationDetector` what-if
interface, which keeps the arithmetic unit-testable against the paper's
worked example (§4.1, expected benefit 1.05).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Protocol

from repro.constraints.cfd import CFD
from repro.constraints.violations import WhatIfOutcome
from repro.core.grouping import UpdateGroup
from repro.repair.candidate import CandidateUpdate

__all__ = ["UpdateStatsProvider", "VOIEstimator"]

#: Maps an update to its confirm probability ``p̃``.
ProbabilityFn = Callable[[CandidateUpdate], float]


class UpdateStatsProvider(Protocol):
    """What the VOI arithmetic needs from the violation machinery."""

    def what_if(self, tid: int, attribute: str, value: object) -> Mapping[CFD, WhatIfOutcome]:
        """Hypothetical per-rule effect of one cell update."""
        ...  # pragma: no cover - protocol

    def weights(self) -> Mapping[CFD, float]:
        """Current rule weights ``w_i``."""
        ...  # pragma: no cover - protocol


class VOIEstimator:
    """Computes Eq. 6 group benefits from what-if statistics.

    Parameters
    ----------
    stats:
        A :class:`UpdateStatsProvider` — in production the live
        :class:`~repro.constraints.violations.ViolationDetector`.
    weights:
        Optional fixed rule-weight override; when omitted, weights are
        read from ``stats.weights()`` at every evaluation (the paper's
        ``w_i = |D(φ_i)|/|D|`` on the current instance).

    Examples
    --------
    See ``tests/core/test_voi.py::test_paper_worked_example`` for the
    §4.1 reproduction yielding exactly 1.05.
    """

    def __init__(
        self,
        stats: UpdateStatsProvider,
        weights: Mapping[CFD, float] | None = None,
    ) -> None:
        self._stats = stats
        self._fixed_weights = dict(weights) if weights is not None else None

    def _weights(self) -> Mapping[CFD, float]:
        if self._fixed_weights is not None:
            return self._fixed_weights
        return self._stats.weights()

    def update_benefit(
        self,
        update: CandidateUpdate,
        probability: float,
        weights: Mapping[CFD, float] | None = None,
    ) -> float:
        """The inner Eq. 6 term for a single update ``r_j``."""
        if weights is None:
            weights = self._weights()
        outcomes = self._stats.what_if(update.tid, update.attribute, update.value)
        benefit = 0.0
        for rule, outcome in outcomes.items():
            weight = weights.get(rule, 0.0)
            if weight == 0.0:
                continue
            denominator = max(1, outcome.satisfying_after)
            benefit += weight * probability * outcome.vio_reduction / denominator
        return benefit

    def group_benefit(self, group: UpdateGroup, probability: ProbabilityFn) -> float:
        """``E[g(c)]`` of Eq. 6 for one group.

        Parameters
        ----------
        group:
            The update group ``c``.
        probability:
            Callable producing ``p̃_j`` per update (learner confirm
            probability, falling back to the update score).
        """
        weights = self._weights()
        return sum(
            self.update_benefit(update, probability(update), weights)
            for update in group.updates
        )

    def rank_groups(
        self,
        groups: list[UpdateGroup],
        probability: ProbabilityFn,
    ) -> list[tuple[UpdateGroup, float]]:
        """All groups with their benefits, most beneficial first.

        Ties break toward larger groups, then lexicographic key, so the
        ranking is deterministic.
        """
        scored = [(group, self.group_benefit(group, probability)) for group in groups]
        scored.sort(key=lambda pair: (-pair[1], -pair[0].size, pair[0].attribute, str(pair[0].value)))
        return scored
