"""Value-of-information group benefit (paper Eq. 6).

The estimated data-quality gain of acquiring feedback for a group
``c = {r_1, ..., r_J}`` is::

    E[g(c)] = Σ_{φ_i} w_i Σ_{r_j ∈ c} p̃_j · (vio(D,{φ_i}) − vio(D^{r_j},{φ_i}))
                                        / |D^{r_j} ⊨ φ_i|

where ``p̃_j`` approximates the probability that the user confirms
``r_j`` (the learner's confirm probability once trained, the update
score ``s_j`` before that), ``vio`` is the Definition 1 violation count
and ``|D^{r_j} ⊨ φ_i|`` counts context tuples satisfying the rule after
hypothetically applying the update.

The estimator works against any *stats provider* exposing the
:class:`~repro.constraints.violations.ViolationDetector` what-if
interface, which keeps the arithmetic unit-testable against the paper's
worked example (§4.1, expected benefit 1.05). Providers additionally
exposing the batched ``what_if_many`` (the columnar detector does) get
all probes for one cell evaluated in a single pass over the partition
statistics; plain scalar providers fall back to per-update probes.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Mapping, Sequence
from typing import Protocol

from repro.constraints.cfd import CFD
from repro.constraints.violations import ViolationDetector, WhatIfOutcome
from repro.core.grouping import GroupIndex, UpdateGroup, group_sort_key
from repro.core.learner import FeedbackLearner
from repro.db.changelog import CellChange
from repro.db.database import Database
from repro.repair.candidate import CandidateUpdate

__all__ = ["GroupBenefitCache", "UpdateStatsProvider", "VOIEstimator"]

#: Maps an update to its confirm probability ``p̃``.
ProbabilityFn = Callable[[CandidateUpdate], float]

#: Entry bound of the estimator's persistent Eq. 6 term memo; cleared
#: wholesale on overflow (terms are one sparse probe to recompute).
_TERM_MEMO_CAPACITY = 1 << 20


class UpdateStatsProvider(Protocol):
    """What the VOI arithmetic needs from the violation machinery.

    ``what_if_many(tid, attribute, values)`` is an optional extension
    detected at runtime: when present it is used to batch all candidate
    probes for a cell.
    """

    def what_if(self, tid: int, attribute: str, value: object) -> Mapping[CFD, WhatIfOutcome]:
        """Hypothetical per-rule effect of one cell update."""
        ...  # pragma: no cover - protocol

    def weights(self) -> Mapping[CFD, float]:
        """Current rule weights ``w_i``."""
        ...  # pragma: no cover - protocol


def _benefit_from_outcomes(
    outcomes: Mapping[CFD, WhatIfOutcome],
    probability: float,
    weights: Mapping[CFD, float],
) -> float:
    """The inner Eq. 6 term given the per-rule what-if outcomes."""
    benefit = 0.0
    for rule, outcome in outcomes.items():
        weight = weights.get(rule, 0.0)
        if weight == 0.0:
            continue
        denominator = max(1, outcome.satisfying_after)
        benefit += weight * probability * outcome.vio_reduction / denominator
    return benefit


class VOIEstimator:
    """Computes Eq. 6 group benefits from what-if statistics.

    Parameters
    ----------
    stats:
        A :class:`UpdateStatsProvider` — in production the live
        :class:`~repro.constraints.violations.ViolationDetector`.
    weights:
        Optional fixed rule-weight override; when omitted, weights are
        read from ``stats.weights()`` at every evaluation (the paper's
        ``w_i = |D(φ_i)|/|D|`` on the current instance).

    Examples
    --------
    See ``tests/core/test_voi.py::test_paper_worked_example`` for the
    §4.1 reproduction yielding exactly 1.05.
    """

    def __init__(
        self,
        stats: UpdateStatsProvider,
        weights: Mapping[CFD, float] | None = None,
    ) -> None:
        self._stats = stats
        self._fixed_weights = dict(weights) if weights is not None else None
        # (attribute, probe signature, value) -> (attr stats version,
        # Eq. 6 term list); valid while the attribute's rule statistics
        # hold still — reject/retain feedback and learner refits leave
        # them untouched, so most re-rankings reuse every term
        self._term_memo: dict[tuple, tuple[int, list[tuple[float, int, int]]]] = {}
        self._term_memo_hits = 0
        self._term_memo_misses = 0
        self._term_memo_clears = 0

    def _weights(self) -> Mapping[CFD, float]:
        if self._fixed_weights is not None:
            return self._fixed_weights
        return self._stats.weights()

    @property
    def term_memo_size(self) -> int:
        """Current occupancy of the persistent Eq. 6 term memo."""
        return len(self._term_memo)

    @property
    def stats(self) -> dict[str, int]:
        """Cache-health counters for the persistent Eq. 6 term memo."""
        return {
            "term_memo_size": len(self._term_memo),
            "term_memo_capacity": _TERM_MEMO_CAPACITY,
            "term_memo_hits": self._term_memo_hits,
            "term_memo_misses": self._term_memo_misses,
            "term_memo_clears": self._term_memo_clears,
        }

    def update_benefit(
        self,
        update: CandidateUpdate,
        probability: float,
        weights: Mapping[CFD, float] | None = None,
    ) -> float:
        """The inner Eq. 6 term for a single update ``r_j``."""
        if weights is None:
            weights = self._weights()
        outcomes = self._stats.what_if(update.tid, update.attribute, update.value)
        return _benefit_from_outcomes(outcomes, probability, weights)

    def update_benefits_many(
        self,
        updates: Sequence[CandidateUpdate],
        probabilities: Sequence[float],
        weights: Mapping[CFD, float] | None = None,
    ) -> list[float]:
        """Eq. 6 terms for many updates, batching probes per cell.

        Updates targeting the same ``(tid, attribute)`` cell share one
        ``what_if_many`` call, so evaluating a whole candidate pool
        costs one partition-statistics pass per distinct cell instead of
        one apply/revert cycle per update.
        """
        caller_weights = weights
        if weights is None:
            weights = self._weights()
        what_if_many = getattr(self._stats, "what_if_many", None)
        if what_if_many is None:
            return [
                self.update_benefit(update, probability, weights)
                for update, probability in zip(updates, probabilities)
            ]
        moved_many = getattr(self._stats, "what_if_moved_many", None)
        if moved_many is None:
            benefits = [0.0] * len(updates)
            by_cell: dict[tuple[int, str], list[int]] = {}
            for i, update in enumerate(updates):
                by_cell.setdefault(update.cell, []).append(i)
            for (tid, attribute), indices in by_cell.items():
                outcome_maps = what_if_many(
                    tid, attribute, [updates[i].value for i in indices]
                )
                for i, outcomes in zip(indices, outcome_maps):
                    benefits[i] = _benefit_from_outcomes(outcomes, probabilities[i], weights)
            return benefits
        # Sparse fast path: only rules whose violation count would move
        # are reported; every omitted rule's term is exactly zero, so
        # the sum (same term expression, same rule order) is
        # byte-identical to the dense loop. Term lists are additionally
        # shared through the probe signature — tuples whose rows carry
        # identical codes at every probed column are indistinguishable
        # to the what-if arithmetic, so one term computation serves them
        # all. With provider-owned weights the memo persists across
        # calls, stamped by the attribute's stats version (terms only
        # depend on row codes — the signature — and rule statistics);
        # caller-supplied weight mappings get a call-scoped memo, since
        # baked-in weights would outlive them.
        probe_signature = getattr(self._stats, "probe_signature", None)
        stats_version = getattr(self._stats, "attr_stats_version", None)
        persistent = caller_weights is None and stats_version is not None
        if persistent and len(self._term_memo) > _TERM_MEMO_CAPACITY:
            self._term_memo.clear()
            self._term_memo_clears += 1
        term_memo = self._term_memo if persistent else {}
        attr_versions: dict[str, int] = {}
        weights_get = weights.get
        benefits = [0.0] * len(updates)
        terms_of: list[list[tuple[float, int, int]] | None] = [None] * len(updates)
        memo_keys: list[tuple | None] = [None] * len(updates)
        # pass 1: memo lookups; schedule one computation per distinct
        # memo key (followers resolve from the memo after pass 2)
        miss_by_cell: dict[tuple[int, str], list[int]] = {}
        scheduled: set[tuple] = set()
        for i, update in enumerate(updates):
            tid, attribute = update.cell
            if probe_signature is not None:
                memo_key = (attribute, probe_signature(tid, attribute), update.value)
                memo_keys[i] = memo_key
                if persistent:
                    version = attr_versions.get(attribute)
                    if version is None:
                        version = attr_versions[attribute] = stats_version(attribute)
                    entry = term_memo.get(memo_key)
                    if entry is not None and entry[0] == version:
                        self._term_memo_hits += 1
                        terms_of[i] = entry[1]
                        continue
                    self._term_memo_misses += 1
                else:
                    terms = term_memo.get(memo_key)
                    if terms is not None:
                        terms_of[i] = terms
                        continue
                if memo_key in scheduled:
                    continue  # a leader already computes this key
                scheduled.add(memo_key)
            miss_by_cell.setdefault(update.cell, []).append(i)
        # pass 2: one sparse probe per missed cell — all of a cell's
        # candidate values share the probe's per-cell setup, exactly
        # like the dense path's per-cell what_if_many batching.
        # Providers exposing the bulk entry point (the detector's serial
        # loop, or the sharded engine's partition-parallel dispatch) get
        # every missed cell in one call.
        cell_items = list(miss_by_cell.items())
        moved_many_cells = getattr(self._stats, "what_if_moved_many_cells", None)
        pair_rows = None
        if moved_many_cells is not None and cell_items:
            pair_rows = moved_many_cells(
                [
                    (tid, attribute, [updates[i].value for i in indices])
                    for (tid, attribute), indices in cell_items
                ]
            )
        for j, ((tid, attribute), indices) in enumerate(cell_items):
            if pair_rows is not None:
                rows = self._terms_from_pairs(pair_rows[j], weights_get)
            else:
                rows = self._term_rows(
                    moved_many,
                    tid,
                    attribute,
                    [updates[i].value for i in indices],
                    weights_get,
                )
            for i, terms in zip(indices, rows):
                terms_of[i] = terms
                memo_key = memo_keys[i]
                if memo_key is not None:
                    if persistent:
                        term_memo[memo_key] = (attr_versions[memo_key[0]], terms)
                    else:
                        term_memo[memo_key] = terms
        # pass 3: Eq. 6 accumulation (followers read their leader's terms)
        for i, terms in enumerate(terms_of):
            if terms is None:
                entry = term_memo[memo_keys[i]]
                terms = entry[1] if persistent else entry
            probability = probabilities[i]
            benefit = 0.0
            for weight, reduction, denominator in terms:
                benefit += weight * probability * reduction / denominator
            benefits[i] = benefit
        return benefits

    @staticmethod
    def _term_rows(
        moved_many, tid: int, attribute: str, values, weights_get
    ) -> list[list[tuple[float, int, int]]]:
        """Per candidate, the nonzero Eq. 6 terms ``(w, red, denom)``.

        Rules with zero weight are dropped exactly where the dense loop
        ``continue``s; term order matches the outcome-map rule order.
        """
        return VOIEstimator._terms_from_pairs(
            moved_many(tid, attribute, values), weights_get
        )

    @staticmethod
    def _terms_from_pairs(
        pair_rows, weights_get
    ) -> list[list[tuple[float, int, int]]]:
        """Convert per-candidate ``(rule, outcome)`` pairs into terms."""
        rows: list[list[tuple[float, int, int]]] = []
        for pairs in pair_rows:
            terms: list[tuple[float, int, int]] = []
            for rule, outcome in pairs:
                weight = weights_get(rule, 0.0)
                if weight == 0.0:
                    continue
                terms.append((weight, outcome[3], max(1, outcome[2])))
            rows.append(terms)
        return rows

    def group_benefit(self, group: UpdateGroup, probability: ProbabilityFn) -> float:
        """``E[g(c)]`` of Eq. 6 for one group.

        Parameters
        ----------
        group:
            The update group ``c``.
        probability:
            Callable producing ``p̃_j`` per update (learner confirm
            probability, falling back to the update score).
        """
        benefits = self.update_benefits_many(
            group.updates, [probability(update) for update in group.updates]
        )
        return sum(benefits)

    def rank_groups(
        self,
        groups: list[UpdateGroup],
        probability: ProbabilityFn,
    ) -> list[tuple[UpdateGroup, float]]:
        """All groups with their benefits, most beneficial first.

        Every update across every group is evaluated through one batched
        pass (:meth:`update_benefits_many`); ties break toward larger
        groups, then lexicographic key, so the ranking is deterministic.
        """
        flat_updates: list[CandidateUpdate] = []
        spans: list[tuple[int, int]] = []
        for group in groups:
            start = len(flat_updates)
            flat_updates.extend(group.updates)
            spans.append((start, len(flat_updates)))
        benefits = self.update_benefits_many(
            flat_updates, [probability(update) for update in flat_updates]
        )
        scored = [
            (group, sum(benefits[start:end])) for group, (start, end) in zip(groups, spans)
        ]
        scored.sort(key=lambda pair: (-pair[1], -pair[0].size, *group_sort_key(pair[0].key)))
        return scored


class GroupBenefitCache:
    """Cached Eq. 6 group benefits over an incremental group index.

    The interactive loop used to re-score *every* group through the
    estimator each iteration — every member update costing a committee
    prediction (``p̃``) plus a what-if probe — even though one labelling
    session only perturbs a handful of groups. The cache re-scores a
    group only when something its benefit depends on provably moved:

    * **membership** — the group index's per-key version (suggestions
      added/removed/replaced);
    * **partition statistics** — the detector's per-attribute stats
      version (a rule touching the group's attribute re-evaluated,
      which also covers the rule weights ``w_i``);
    * **the learner** — the attribute committee's fit counter;
    * **rows** — any member tuple written since the last scoring
      (committee features read the row);
    * **instance size** — ``len(db)`` (the weight denominator).

    ``p̃`` values are additionally memoised per ``(cell, value, score)``
    against row/model versions, so re-scoring a group whose partition
    stats moved but whose rows and model did not costs only what-if
    arithmetic, no forest predictions.

    The partition-statistics stamp is backed by the detector's
    *per-rule* statistics versions (aggregated per attribute): a rule's
    version moves only when its observable statistics actually changed,
    so a write that re-evaluated rules without moving them — the common
    case on wide constant rule sets — invalidates nothing.

    Both memo structures are **bounded** for million-tuple instances:

    * the p̃ memo is an LRU capped at *prob_memo_capacity* entries
      (least-recently-used entries evicted on overflow);
    * the per-tuple row-version map is capped at
      *row_version_capacity*; overflowing it bumps a *generation*
      baked into every memo stamp, lazily invalidating the whole memo
      instead of letting version counters reset ambiguously.

    Hit/miss/eviction counters are exposed through :attr:`stats` and
    surfaced by the drain benchmark.

    Selection is a lazy max-heap ordered exactly like
    :meth:`VOIEstimator.rank_groups` — entries are pushed on every
    (re)scoring and validated against a per-key token on pop — so
    picking the top group costs O(stale · log G) instead of a full
    sort.
    """

    def __init__(
        self,
        estimator: VOIEstimator,
        index: GroupIndex,
        detector: ViolationDetector,
        db: Database,
        learner: FeedbackLearner | None = None,
        probability_many: Callable[[list[CandidateUpdate]], list[float]] | None = None,
        prob_memo_capacity: int = 1 << 20,
        row_version_capacity: int = 1 << 20,
    ) -> None:
        self._estimator = estimator
        self._index = index
        self._detector = detector
        self._db = db
        self._learner = learner
        # optional batched p̃ evaluator for memo misses (must agree
        # value-for-value with the scalar probability function)
        self._probability_many = probability_many
        self._cursor = index.dirty_cursor()
        self._benefit: dict[tuple[str, object], float] = {}
        # key -> (member version, attr stats version, model version, db size)
        self._stamp: dict[tuple[str, object], tuple[int, int, int, int]] = {}
        # lazy-heap bookkeeping: entry valid iff its token is current
        self._token: dict[tuple[str, object], int] = {}
        self._token_counter = 0
        self._heap: list[tuple] = []
        # row staleness: tuples written since the last refresh, and a
        # per-tuple write stamp guarding the p̃ memo. Stamps are drawn
        # from one monotonic write sequence (never per-tid counters), so
        # evicting and re-creating an entry can never reproduce an old
        # stamp; the generation covers the remaining hazard of a map
        # prune making absent tids read as stamp 0 again.
        self._written: set[int] = set()
        self._row_versions: dict[int, int] = {}
        self._write_seq = 0
        self._row_generation = 0
        self._row_version_capacity = max(1, int(row_version_capacity))
        # (tid, attribute, value, score) ->
        #     (generation, row stamp, model version, p̃); LRU-ordered
        self._prob_memo: dict[tuple, tuple[int, int, int, float]] = {}
        self._prob_memo_capacity = max(1, int(prob_memo_capacity))
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._generation_bumps = 0
        db.add_listener(self._on_db_change)

    def detach(self) -> None:
        """Stop listening to database writes."""
        self._db.remove_listener(self._on_db_change)

    def _on_db_change(self, change: CellChange) -> None:
        self._written.add(change.tid)
        self._write_seq += 1
        rows = self._row_versions
        rows[change.tid] = self._write_seq
        if len(rows) > self._row_version_capacity:
            # generation eviction: absent tids read as stamp 0, which
            # must not collide with memo entries recorded before the
            # prune — bumping the generation retires them all lazily
            rows.clear()
            self._row_generation += 1
            self._generation_bumps += 1

    @property
    def stats(self) -> dict[str, int]:
        """Cache-health counters (p̃ memo and row-version map).

        ``prob_memo_hits`` / ``prob_memo_misses`` count memo lookups,
        ``prob_memo_evictions`` LRU evictions, ``row_generation_bumps``
        whole-memo invalidations from row-version map overflow; the
        ``*_size`` entries are current occupancies.
        """
        return {
            "prob_memo_hits": self._hits,
            "prob_memo_misses": self._misses,
            "prob_memo_evictions": self._evictions,
            "prob_memo_size": len(self._prob_memo),
            "row_versions_size": len(self._row_versions),
            "row_generation_bumps": self._generation_bumps,
        }

    # ------------------------------------------------------------------
    def _model_version(self, attribute: str) -> int:
        if self._learner is None:
            return 0
        return self._learner.model_version(attribute)

    def _probabilities(
        self, updates: list[CandidateUpdate], probability: ProbabilityFn
    ) -> list[float]:
        """Memoised ``p̃`` per update; misses evaluated in one batch.

        Hits are refreshed to the LRU tail; misses are filled through
        the batched evaluator and inserted under the capacity bound
        (evicting the least recently used entries on overflow).
        """
        memo = self._prob_memo
        generation = self._row_generation
        values: list[float | None] = [None] * len(updates)
        misses: list[int] = []
        miss_stamps: list[tuple[int, int]] = []
        row_version_of = self._row_versions.get
        model_versions: dict[str, int] = {}
        for i, update in enumerate(updates):
            memo_key = (update.tid, update.attribute, update.value, update.score)
            row_version = row_version_of(update.tid, 0)
            model_version = model_versions.get(update.attribute)
            if model_version is None:
                model_version = model_versions[update.attribute] = self._model_version(
                    update.attribute
                )
            hit = memo.get(memo_key)
            if (
                hit is not None
                and hit[0] == generation
                and hit[1] == row_version
                and hit[2] == model_version
            ):
                self._hits += 1
                values[i] = hit[3]
                # LRU touch: re-insert at the tail of the dict order
                del memo[memo_key]
                memo[memo_key] = hit
            else:
                self._misses += 1
                misses.append(i)
                miss_stamps.append((row_version, model_version))
        if misses:
            missed_updates = [updates[i] for i in misses]
            if self._probability_many is not None:
                fresh = self._probability_many(missed_updates)
            else:
                fresh = [probability(update) for update in missed_updates]
            capacity = self._prob_memo_capacity
            for i, (row_version, model_version), value in zip(misses, miss_stamps, fresh):
                update = updates[i]
                memo_key = (update.tid, update.attribute, update.value, update.score)
                if memo_key in memo:
                    del memo[memo_key]  # re-insert at the LRU tail
                elif len(memo) >= capacity:
                    memo.pop(next(iter(memo)))
                    self._evictions += 1
                memo[memo_key] = (generation, row_version, model_version, value)
                values[i] = value
        return values

    def _current_stamp(self, key: tuple[str, object]) -> tuple[int, int, int, int]:
        attribute = key[0]
        return (
            self._index.version(key),
            self._detector.attr_stats_version(attribute),
            self._model_version(attribute),
            len(self._db),
        )

    def refresh(self, probability: ProbabilityFn) -> int:
        """Re-score every group whose benefit inputs moved.

        Returns the number of groups re-scored. All stale groups are
        evaluated through one batched
        :meth:`VOIEstimator.update_benefits_many` pass, preserving the
        per-cell probe batching of the full ranking.
        """
        index = self._index
        stale = index.poll_dirty_keys(self._cursor)
        if self._written:
            for tid in self._written:
                stale.update(index.keys_for_tid(tid))
            self._written.clear()
        live = index.keys()
        live_set = set(live)
        # drop cache rows for groups that emptied
        for key in [k for k in self._benefit if k not in live_set]:
            del self._benefit[key]
            del self._stamp[key]
            self._token.pop(key, None)
        stamps = {}
        for key in live:
            if key in stale:
                continue
            stamp = self._current_stamp(key)
            if self._stamp.get(key) != stamp:
                stale.add(key)
            else:
                continue
            stamps[key] = stamp
        stale &= live_set
        # the ungrouped pseudo-group spans attributes; its versions are
        # not meaningful, so it is always re-scored
        for key in live:
            if key[0] == "*":
                stale.add(key)
        if not stale:
            return 0
        groups = [index.group(key) for key in sorted(stale, key=group_sort_key)]
        flat: list[CandidateUpdate] = []
        spans: list[tuple[int, int]] = []
        for group in groups:
            start = len(flat)
            flat.extend(group.updates)
            spans.append((start, len(flat)))
        probabilities = self._probabilities(flat, probability)
        benefits = self._estimator.update_benefits_many(flat, probabilities)
        for group, (start, end) in zip(groups, spans):
            key = group.key
            benefit = sum(benefits[start:end])
            self._benefit[key] = benefit
            self._stamp[key] = stamps.get(key) or self._current_stamp(key)
            self._token_counter += 1
            self._token[key] = self._token_counter
            heapq.heappush(
                self._heap,
                (-benefit, -group.size, group_sort_key(key), self._token_counter, key),
            )
        # bound heap growth from repeated re-scorings
        if len(self._heap) > 4 * max(16, len(live)):
            self._heap = [
                entry for entry in self._heap if self._token.get(entry[4]) == entry[3]
            ]
            heapq.heapify(self._heap)
        return len(groups)

    def invalidate(self) -> None:
        """Drop every cached benefit, stamp and memoised ``p̃``.

        The recovery action when the invariant guard finds a cached
        benefit diverging from the Eq. 6 reference while its stamp
        still reads current: the next :meth:`refresh` re-scores every
        live group from scratch. Counters are kept.
        """
        self._benefit.clear()
        self._stamp.clear()
        self._token.clear()
        self._heap.clear()
        self._prob_memo.clear()
        self._written.clear()
        self._row_versions.clear()
        self._row_generation += 1
        # mark every live key dirty for the next refresh
        self._index.poll_dirty_keys(self._cursor)

    def top(self, probability: ProbabilityFn) -> tuple[UpdateGroup, float] | None:
        """The most beneficial group and its benefit (``None`` if empty).

        Ordered exactly like :meth:`VOIEstimator.rank_groups`[0]:
        highest benefit, ties toward larger groups, then the
        type-aware key order.
        """
        self.refresh(probability)
        heap = self._heap
        while heap:
            entry = heap[0]
            key = entry[4]
            if self._token.get(key) != entry[3]:
                heapq.heappop(heap)  # superseded or vanished
                continue
            return self._index.group(key), self._benefit[key]
        return None

    def rank_all(self, probability: ProbabilityFn) -> list[tuple[UpdateGroup, float]]:
        """All groups with benefits, ordered like ``rank_groups``.

        Primarily for parity testing the cache against the
        rebuild-from-scratch ranking.
        """
        self.refresh(probability)
        scored = [(self._index.group(key), self._benefit[key]) for key in self._index.keys()]
        scored.sort(key=lambda pair: (-pair[1], -pair[0].size, *group_sort_key(pair[0].key)))
        return scored
