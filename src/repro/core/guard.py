"""Invariant guard: sampling auditor with graceful degradation.

The delta pipeline trades per-iteration rebuilds for incrementally
maintained structures — the event-driven
:class:`~repro.core.grouping.GroupIndex`, the stamp-guarded
:class:`~repro.core.voi.GroupBenefitCache`, the code-space
:class:`~repro.repair.similarity.SimilarityCache` and the columnar
mirror. Each keeps its rebuild-from-scratch reference path alive for
parity testing; the guard turns those references into a *runtime*
safety net:

* every engine iteration calls :meth:`InvariantGuard.tick`; every
  *interval*-th tick runs one audit pass cross-checking each live
  structure against its reference;
* a divergence is recorded as a structured :class:`Incident` and the
  corrupted component alone is evicted/rebuilt. For the ranking
  structures (``group_index``, ``benefit_cache``) the next group
  selection additionally runs through the rebuild reference path
  (*graceful degradation* — one slow step instead of a crash or a
  silently wrong ranking); for ``sim_cache`` and ``columns`` the
  recovery action itself (clear / re-encode) already restores
  correctness — later reads recompute from the scalar reference — so
  no degraded step is needed;
* incidents beyond *max_incidents* escalate to
  :class:`~repro.errors.IntegrityError` — past that point the session
  keeps diverging faster than it can repair itself and hard failure is
  the only trustworthy answer.

Audits are read-only with respect to engine results: re-scoring the
benefit cache is exactly the refresh the next ``top()`` would perform,
and rebuilding a corrupted structure restores precisely the state the
incremental path is specified (and tested) to maintain — so a guarded
run produces the same ``GDRResult`` as an unguarded one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.grouping import group_sort_key
from repro.errors import IntegrityError
from repro.repair.similarity import similarity

__all__ = ["Incident", "InvariantGuard"]

#: Components the guard audits, in audit order.
COMPONENTS = ("group_index", "benefit_cache", "sim_cache", "columns")


@dataclass(frozen=True, slots=True)
class Incident:
    """One detected divergence between a live structure and its reference.

    Attributes
    ----------
    component:
        Which structure diverged (one of :data:`COMPONENTS`).
    detail:
        Human-readable description of the divergence.
    tick:
        The guard tick at which the audit caught it.
    recovered:
        True when the component was evicted/rebuilt in place.
    """

    component: str
    detail: str
    tick: int
    recovered: bool = True

    def as_dict(self) -> dict:
        """JSON-friendly form (for incident logs)."""
        return {
            "component": self.component,
            "detail": self.detail,
            "tick": self.tick,
            "recovered": self.recovered,
        }


@dataclass(slots=True)
class _Cursor:
    """Rotating sample cursor over an ordered id space."""

    offset: int = 0

    def take(self, ids: list, count: int) -> list:
        if not ids or count <= 0:
            return []
        start = self.offset % len(ids)
        self.offset = (start + count) % len(ids)
        doubled = ids + ids
        return doubled[start : start + min(count, len(ids))]


class InvariantGuard:
    """Samples the engine's live structures against their references.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.gdr.GDREngine` to watch.
    interval:
        Run one audit pass every *interval* ticks (1 = every tick).
    max_incidents:
        Incident budget; exceeding it raises
        :class:`~repro.errors.IntegrityError`.
    sample:
        How many sim-cache entries and how many tuples the per-audit
        samples cover (full structures are still verified for the
        group index and benefit cache, whose references are cheap
        relative to their structures' sizes).
    """

    def __init__(
        self, engine, interval: int = 4, max_incidents: int = 25, sample: int = 16
    ) -> None:
        self.engine = engine
        self.interval = max(1, int(interval))
        self.max_incidents = max(1, int(max_incidents))
        self.sample = max(1, int(sample))
        self.incidents: list[Incident] = []
        self._ticks = 0
        self._audits = 0
        self._degraded: set[str] = set()
        self._degraded_steps = 0
        self._tuple_cursor = _Cursor()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        """Guard-health counters (surfaced by ``GDREngine.health()``)."""
        return {
            "ticks": self._ticks,
            "audits": self._audits,
            "incidents": len(self.incidents),
            "degraded_steps": self._degraded_steps,
        }

    def consume_degraded(self, component: str) -> bool:
        """One-shot degradation flag for *component*.

        Returns True exactly once after an audit recovered the
        component; the caller routes that step through the reference
        path (the rebuilt structure is trusted again afterwards).
        Only ``group_index`` and ``benefit_cache`` incidents set the
        flag — they are consumed by the engine's next group selection;
        ``sim_cache`` and ``columns`` recover fully in place.
        """
        if component in self._degraded:
            self._degraded.discard(component)
            self._degraded_steps += 1
            return True
        return False

    def tick(self) -> list[Incident]:
        """Count one engine step; audit on every *interval*-th.

        Returns the incidents found by this tick's audit (empty when no
        audit ran or everything matched).
        """
        self._ticks += 1
        if self._ticks % self.interval != 0:
            return []
        return self.audit()

    # ------------------------------------------------------------------
    def audit(self) -> list[Incident]:
        """One audit pass over every component; records incidents.

        Raises :class:`~repro.errors.IntegrityError` when the total
        incident count exceeds the budget.
        """
        self._audits += 1
        found: list[Incident] = []
        found.extend(self._audit_group_index())
        found.extend(self._audit_benefit_cache())
        found.extend(self._audit_sim_cache())
        found.extend(self._audit_columns())
        self.incidents.extend(found)
        if len(self.incidents) > self.max_incidents:
            raise IntegrityError(
                f"invariant guard recorded {len(self.incidents)} incidents "
                f"(budget {self.max_incidents}); latest: "
                f"{self.incidents[-1].detail}"
            )
        return found

    def _record(self, component: str, detail: str, degrade: bool = True) -> Incident:
        """Build one incident; optionally flag *component* for degradation.

        *degrade* is False for components whose recovery action alone
        restores correctness (``sim_cache`` clear, ``columns``
        re-encode): nothing consumes a degraded flag for them, so
        setting one would only linger and skew ``degraded_steps``.
        """
        incident = Incident(component=component, detail=detail, tick=self._ticks)
        if degrade:
            self._degraded.add(component)
        return incident

    # -- group index ---------------------------------------------------
    def _audit_group_index(self) -> list[Incident]:
        index = self.engine.group_index
        if index is None:
            return []
        if index.verify():
            return []
        incident = self._record(
            "group_index",
            f"incremental partition diverged from group_updates over "
            f"{len(index)} groups; rebuilt from the live pool",
        )
        index.rebuild()
        return [incident]

    # -- benefit cache -------------------------------------------------
    def _audit_benefit_cache(self) -> list[Incident]:
        cache = self.engine.benefit_cache
        if cache is None:
            return []
        probability = self.engine.probability
        cached = {
            group.key: benefit for group, benefit in cache.rank_all(probability)
        }
        reference = {
            group.key: benefit
            for group, benefit in self.engine.voi.rank_groups(
                self.engine.group_index.groups(), probability
            )
        }
        diverged = sorted(
            (
                key
                for key in cached.keys() | reference.keys()
                if abs(cached.get(key, float("nan")) - reference.get(key, float("nan")))
                > 1e-9
                or (key in cached) != (key in reference)
            ),
            key=group_sort_key,
        )
        if not diverged:
            return []
        key = diverged[0]
        incident = self._record(
            "benefit_cache",
            f"cached Eq. 6 benefit for group {key!r} reads "
            f"{cached.get(key)!r} but the reference ranking computes "
            f"{reference.get(key)!r} ({len(diverged)} groups diverged); "
            f"cache invalidated",
        )
        cache.invalidate()
        return [incident]

    # -- similarity cache ----------------------------------------------
    def _audit_sim_cache(self) -> list[Incident]:
        sim_cache = self.engine.sim_cache
        columns = self.engine.db.columns
        for entry in sim_cache.sample_entries(self.sample):
            if len(entry) == 4:
                pos, cur_code, cand_code, cached = entry
                vocab = columns.vocabulary(pos)
                a, b = vocab.decode(cur_code), vocab.decode(cand_code)
            else:
                a, b, cached = entry
            expected = similarity(a, b)
            if abs(cached - expected) > 1e-9:
                incident = self._record(
                    "sim_cache",
                    f"cached Eq. 7 similarity({a!r}, {b!r}) reads {cached!r}, "
                    f"scalar reference computes {expected!r}; cache cleared",
                    degrade=False,
                )
                sim_cache.clear()
                return [incident]
        return []

    # -- columnar mirror -----------------------------------------------
    def _audit_columns(self) -> list[Incident]:
        db = self.engine.db
        if db._columns is None:
            return []  # mirror not built yet; nothing to diverge
        columns = db.columns
        tids = db.tids()
        found: list[Incident] = []
        for tid in self._tuple_cursor.take(tids, self.sample):
            row = columns.position_of(tid)
            truth = db.values_snapshot(tid)
            for pos, expected in enumerate(truth):
                decoded = columns.vocabulary(pos).decode(columns.code_at(row, pos))
                if decoded != expected:
                    found.append(
                        self._record(
                            "columns",
                            f"columnar mirror holds {decoded!r} at "
                            f"t{tid}.{db.schema.attributes[pos]}, row store "
                            f"holds {expected!r}; cell re-encoded",
                            degrade=False,
                        )
                    )
                    columns.set_cell(tid, pos, expected)
            if found:
                break
        return found
