"""User models: the simulated domain expert (paper §5).

The paper simulates the user "by providing answers as determined by the
ground truth". :class:`GroundTruthOracle` reproduces that protocol;
:class:`NoisyOracle` wraps any oracle with a configurable error rate
for robustness studies (an extension the paper leaves implicit);
:class:`CallbackOracle` adapts a plain function — e.g. an interactive
prompt — to the oracle interface.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol

import numpy as np

from repro.db.database import Database
from repro.repair.candidate import CandidateUpdate
from repro.repair.feedback import Feedback, UserFeedback

__all__ = ["CallbackOracle", "GroundTruthOracle", "NoisyOracle", "UserOracle"]


class UserOracle(Protocol):
    """Anything able to review a suggested update."""

    def review(self, update: CandidateUpdate, current_value: object) -> UserFeedback:
        """Decide confirm / reject / retain for one suggestion."""
        ...  # pragma: no cover - protocol


class GroundTruthOracle:
    """Answers feedback queries from the clean reference instance.

    Decision rule for update ``⟨t, A, v⟩`` with current value ``u`` and
    ground-truth value ``g``:

    * ``u == g``  → **retain** (the cell was never wrong);
    * ``v == g``  → **confirm**;
    * otherwise   → **reject**, optionally volunteering ``g`` as the
      correction (paper §4.2 allows the user to suggest ``v'``).

    Parameters
    ----------
    clean_db:
        Ground-truth instance sharing tids with the dirty one.
    provide_corrections:
        When True (default) a reject carries the true value, which the
        framework applies as a confirmed update ``⟨t, A, v', 1⟩``. With
        False the oracle only ever answers the three classes, and the
        repair algorithm must find the right value itself.
    """

    def __init__(self, clean_db: Database, provide_corrections: bool = True) -> None:
        self.clean_db = clean_db
        self.provide_corrections = provide_corrections
        self.consultations = 0

    def review(self, update: CandidateUpdate, current_value: object) -> UserFeedback:
        """Apply the ground-truth decision rule to one suggestion."""
        self.consultations += 1
        truth = self.clean_db.value(update.tid, update.attribute)
        if current_value == truth:
            return UserFeedback.retain()
        if update.value == truth:
            return UserFeedback.confirm()
        if self.provide_corrections:
            return UserFeedback.reject(correction=truth)
        return UserFeedback.reject()


class NoisyOracle:
    """Wraps an oracle and corrupts a fraction of its answers.

    With probability *error_rate* the wrapped answer is replaced by a
    uniformly random different feedback class (corrections are dropped
    in that case). Used by the robustness ablation bench.
    """

    def __init__(self, inner: UserOracle, error_rate: float, seed: int | None = 0) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
        self.inner = inner
        self.error_rate = error_rate
        self._rng = np.random.default_rng(seed)
        self.corrupted = 0

    def review(self, update: CandidateUpdate, current_value: object) -> UserFeedback:
        """Return the inner answer, randomly corrupted."""
        answer = self.inner.review(update, current_value)
        if self._rng.random() >= self.error_rate:
            return answer
        self.corrupted += 1
        others = [k for k in Feedback if k is not answer.kind]
        wrong = others[int(self._rng.integers(0, len(others)))]
        return UserFeedback(wrong)


class CallbackOracle:
    """Adapts a plain function to the oracle interface.

    Parameters
    ----------
    fn:
        ``fn(update, current_value) -> UserFeedback`` — e.g. a CLI
        prompt in the interactive example.
    """

    def __init__(self, fn: Callable[[CandidateUpdate, object], UserFeedback]) -> None:
        self._fn = fn
        self.consultations = 0

    def review(self, update: CandidateUpdate, current_value: object) -> UserFeedback:
        """Delegate the decision to the wrapped callable."""
        self.consultations += 1
        return self._fn(update, current_value)
