"""Repair-accuracy metrics (paper Appendix B.1) and trajectories.

Precision = correctly updated values / all updated values.
Recall    = correctly updated values / all initially incorrect values.

Both are computed cell-wise against the ground truth, comparing the
final instance with the original dirty snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.database import Database

__all__ = ["RepairReport", "TrajectoryPoint", "evaluate_repair"]


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One sample of the repair trajectory.

    Attributes
    ----------
    feedback:
        User labels consumed so far.
    learner_decisions:
        Suggestions decided by the learner so far.
    loss:
        Eq. 3 quality loss at this point.
    """

    feedback: int
    learner_decisions: int
    loss: float


@dataclass(frozen=True, slots=True)
class RepairReport:
    """Cell-level accuracy of a finished repair run.

    Attributes
    ----------
    changed:
        Cells whose value differs from the dirty snapshot.
    correct_changes:
        Changed cells that now match the ground truth.
    initial_errors:
        Cells that were wrong in the dirty snapshot.
    remaining_errors:
        Cells still differing from the ground truth.
    broken:
        Cells that were correct initially and are now wrong.
    """

    changed: int
    correct_changes: int
    initial_errors: int
    remaining_errors: int
    broken: int
    cells: int = field(default=0)

    @property
    def precision(self) -> float:
        """Fraction of performed updates that were correct (1.0 if none)."""
        if self.changed == 0:
            return 1.0
        return self.correct_changes / self.changed

    @property
    def recall(self) -> float:
        """Fraction of initial errors that were fixed (1.0 if none)."""
        if self.initial_errors == 0:
            return 1.0
        return self.correct_changes / self.initial_errors

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)

    @property
    def cell_accuracy(self) -> float:
        """Fraction of all cells matching the ground truth."""
        if self.cells == 0:
            return 1.0
        return (self.cells - self.remaining_errors) / self.cells

    def describe(self) -> str:
        """Human-readable summary line."""
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"f1={self.f1:.3f} errors {self.initial_errors}->{self.remaining_errors}"
        )


def evaluate_repair(dirty: Database, repaired: Database, clean: Database) -> RepairReport:
    """Compare a repaired instance with its dirty snapshot and the truth.

    All three instances must share schema and tuple ids. Each cell is
    classified by (was it changed?, is it now correct?, was it wrong
    initially?).

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> schema = Schema("r", ["a"])
    >>> dirty = Database(schema, [["x"], ["y"]])
    >>> clean = Database(schema, [["x"], ["z"]])
    >>> repaired = Database(schema, [["x"], ["z"]])
    >>> report = evaluate_repair(dirty, repaired, clean)
    >>> report.precision, report.recall
    (1.0, 1.0)
    """
    changed = 0
    correct_changes = 0
    initial_errors = 0
    remaining_errors = 0
    broken = 0
    cells = 0
    attributes = dirty.schema.attributes
    for tid in dirty.tids():
        before = dirty.values_snapshot(tid)
        after = repaired.values_snapshot(tid)
        truth = clean.values_snapshot(tid)
        for pos, _attr in enumerate(attributes):
            cells += 1
            was_wrong = before[pos] != truth[pos]
            is_wrong = after[pos] != truth[pos]
            did_change = before[pos] != after[pos]
            if was_wrong:
                initial_errors += 1
            if is_wrong:
                remaining_errors += 1
            if did_change:
                changed += 1
                if not is_wrong:
                    correct_changes += 1
            if not was_wrong and is_wrong:
                broken += 1
    return RepairReport(
        changed=changed,
        correct_changes=correct_changes,
        initial_errors=initial_errors,
        remaining_errors=remaining_errors,
        broken=broken,
        cells=cells,
    )
