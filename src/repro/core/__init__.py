"""GDR core: grouping, VOI ranking, active learning, the engine."""

from repro.core.effort import EffortPolicy, FeedbackBudget
from repro.core.gdr import GDRConfig, GDREngine, GDRResult
from repro.core.grouping import GroupIndex, UpdateGroup, group_sort_key, group_updates
from repro.core.guard import Incident, InvariantGuard
from repro.core.learner import FeedbackLearner, LearnerPrediction
from repro.core.metrics import RepairReport, TrajectoryPoint, evaluate_repair
from repro.core.quality import QualityEvaluator, quality_improvement
from repro.core.ranking import GreedyRanking, RandomRanking, RankingStrategy, VOIRanking
from repro.core.session import InteractiveSession, SessionReport
from repro.core.user import CallbackOracle, GroundTruthOracle, NoisyOracle, UserOracle
from repro.core.voi import GroupBenefitCache, VOIEstimator

__all__ = [
    "CallbackOracle",
    "EffortPolicy",
    "FeedbackBudget",
    "FeedbackLearner",
    "GDRConfig",
    "GDREngine",
    "GDRResult",
    "GreedyRanking",
    "GroundTruthOracle",
    "GroupBenefitCache",
    "GroupIndex",
    "Incident",
    "InteractiveSession",
    "InvariantGuard",
    "LearnerPrediction",
    "NoisyOracle",
    "QualityEvaluator",
    "RandomRanking",
    "RankingStrategy",
    "RepairReport",
    "SessionReport",
    "TrajectoryPoint",
    "UpdateGroup",
    "UserOracle",
    "VOIEstimator",
    "VOIRanking",
    "evaluate_repair",
    "group_sort_key",
    "group_updates",
    "quality_improvement",
]
