"""The GDR engine: the full guided-repair loop (paper Procedure 1).

Wires every substrate together and exposes the experiment variants of
§5 through :class:`GDRConfig` presets:

=====================  ========  ==========  ========  ===============
Variant                ranking   learning    grouping  per-group quota
=====================  ========  ==========  ========  ===============
``GDRConfig.gdr()``    VOI       active      yes       d_i = E(1−g/gmax)
``.s_learning()``      VOI       passive     yes       d_i = E(1−g/gmax)
``.active_learning()`` —         active      no        whole pool
``.no_learning()``     VOI       none        yes       whole group
=====================  ========  ==========  ========  ===============

(The *Automatic-Heuristic* baseline lives in
:func:`repro.repair.heuristic.batch_repair` — it needs no engine.)
"""

from __future__ import annotations

import os
import pickle
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.constraints.repository import RuleSet
from repro.constraints.violations import ViolationDetector
from repro.core.effort import EffortPolicy, FeedbackBudget
from repro.core.grouping import GroupIndex, UpdateGroup, group_updates
from repro.core.guard import InvariantGuard
from repro.core.learner import FeedbackLearner
from repro.core.metrics import RepairReport, TrajectoryPoint, evaluate_repair
from repro.core.quality import QualityEvaluator, quality_improvement
from repro.core.ranking import GreedyRanking, RandomRanking, RankingStrategy, VOIRanking
from repro.core.session import (
    InteractiveSession,
    decide_batched,
    delegation_allowed,
    predict_many_snapshot,
)
from repro.core.user import UserOracle
from repro.core.parallel import ShardedViolationEngine
from repro.core.voi import GroupBenefitCache, VOIEstimator
from repro.db.database import Database
from repro.db.journal import FeedbackJournal, ReplayOracle
from repro.db.schema import Schema
from repro.errors import ConfigError
from repro.testing.faults import fault_hit
from repro.repair.candidate import CandidateUpdate
from repro.repair.consistency import ConsistencyManager
from repro.repair.feedback import UserFeedback
from repro.repair.generator import UpdateGenerator
from repro.repair.similarity import SimilarityCache
from repro.repair.state import RepairState

__all__ = ["GDRConfig", "GDREngine", "GDRResult"]

_RANKINGS = ("voi", "greedy", "random")
_LEARNINGS = ("active", "passive", "none")
_PIPELINES = ("delta", "rebuild")
_DRAINS = ("batched", "sequential")
_SUGGESTS = ("batched", "scalar")
_LEARNERS = ("hist", "exact")


@dataclass(slots=True)
class GDRConfig:
    """Tunable knobs of the GDR engine.

    Attributes
    ----------
    ranking:
        Group ranking strategy: ``"voi"``, ``"greedy"`` or ``"random"``.
    learning:
        ``"active"`` (uncertainty ordering + delegation), ``"passive"``
        (random ordering + delegation) or ``"none"``.
    grouping:
        When False all updates form one pool (Active-Learning variant).
    batch_size:
        ``n_s`` labels between learner retrains.
    min_labels:
        Per-group quota floor for the benefit formula.
    use_benefit_quota:
        Apply ``d_i = E(1 − g/g_max)``; otherwise label whole groups
        (bounded by the global budget).
    n_estimators / max_depth / min_examples:
        Committee hyper-parameters of the feedback learner.
    seed:
        Master seed for every stochastic component.
    max_iterations:
        Safety cap on interactive iterations.
    pipeline:
        ``"delta"`` (default) drives each iteration from incremental
        structures — O(delta) suggestion refresh, the event-maintained
        :class:`~repro.core.grouping.GroupIndex` and the stamped
        :class:`~repro.core.voi.GroupBenefitCache` — so iteration cost
        scales with what the last batch touched. ``"rebuild"`` re-scans,
        re-groups and re-scores everything per iteration: the original
        reference path, kept because the delta path is required (and
        tested) to reproduce its results byte-for-byte.
    drain:
        ``"batched"`` (default) runs every learner decision path — the
        post-budget drain and in-session delegation — through
        wave-partitioned ``predict_many`` batches against a
        copy-on-write snapshot view. ``"sequential"`` is the retained
        predict-one-apply-one reference; the batched path reproduces
        its ``GDRResult`` byte-for-byte (tested across presets and
        datasets).
    voi_cache_capacity:
        Entry bound for the benefit cache's p̃ memo and row-version
        map (LRU / generation eviction); the default comfortably holds
        million-tuple instances while keeping memory bounded.
    suggest:
        ``"batched"`` (default) runs Algorithm 1 through the vectorized
        suggestion engine — cells batched per refresh, witness-signature
        decision sharing, candidate pools scored in code space through
        the batched Eq. 7 Levenshtein kernel. ``"scalar"`` is the
        retained per-cell reference path (one Python DP per candidate
        pair); the batched path reproduces its ``GDRResult``
        byte-for-byte (tested across presets and datasets).
    learner:
        ``"hist"`` (default) trains the per-attribute committees as
        histogram forests over warm, incrementally binned training
        matrices — the fused split search and batched inference of
        :class:`~repro.ml.forest.HistogramForestClassifier`.
        ``"exact"`` keeps the exact-sort CART committees: the retained
        reference, which the histogram path reproduces bit for bit
        (same models, predictions and repair trajectories — tested
        across presets and datasets).
    shards:
        ``0`` (default) keeps the single-process reference violation
        path. ``N >= 1`` fronts the detector with the sharded violation
        engine (``core/parallel.py``): tuples are hash-partitioned by
        the CFD shard key into ``N`` shards, worker processes map the
        code matrix zero-copy through shared memory, and the bulk
        what-if / detect entry points run partition-parallel. The
        sharded path reproduces the ``shards=0`` ``GDRResult``
        byte-for-byte (tested across presets and datasets); incremental
        maintenance, journal, guard and checkpoint machinery stay on
        the coordinator unchanged.
    sim_cache_capacity:
        Entry bound for the engine-owned Eq. 7 similarity cache (the
        code-space pair memo shared by the generator and the learner's
        feature encoder). The cache replaces the old module-global
        ``lru_cache``, which leaked entries across engines and datasets
        in one process; hit/miss counters are exposed through
        ``GDREngine.sim_cache.stats``.
    guard / guard_interval / guard_max_incidents:
        When *guard* is on, an :class:`~repro.core.guard.InvariantGuard`
        audits the live incremental structures against their reference
        paths every *guard_interval* engine steps, recovering corrupted
        components in place and escalating to
        :class:`~repro.errors.IntegrityError` past *guard_max_incidents*
        recorded incidents.
    journal_path / journal_fsync:
        When *journal_path* is set, every feedback decision and
        database write is appended to a write-ahead
        :class:`~repro.db.journal.FeedbackJournal` before application;
        *journal_fsync* additionally fsyncs each record.
    checkpoint_path / checkpoint_every:
        When *checkpoint_path* is set, the run auto-serialises its full
        session state there every *checkpoint_every* interactive
        iterations and once at drain start;
        :meth:`GDREngine.restore` + :meth:`GDREngine.resume` continue a
        killed session from the latest checkpoint plus the journal
        tail.
    """

    ranking: str = "voi"
    learning: str = "active"
    grouping: bool = True
    batch_size: int = 10
    min_labels: int = 2
    use_benefit_quota: bool = True
    n_estimators: int = 10
    max_depth: int | None = 12
    # A committee trained on a handful of examples can be confidently
    # wrong; requiring 10 labelled examples per attribute before the
    # learner may decide prevents small-budget vandalism.
    min_examples: int = 10
    # 0.5 admits an 8-of-10 committee majority (vote entropy ≈ 0.46)
    # and rejects 7-of-10 (≈ 0.56) for the default 10-tree committee.
    max_decision_uncertainty: float = 0.5
    # p̃ prior before the learner is trained: "score" uses the update
    # evaluation score s (the paper's choice); "uniform" uses 0.5 and
    # exists for the ablation benches.
    voi_prior: str = "score"
    seed: int = 0
    max_iterations: int = 100_000
    pipeline: str = "delta"
    drain: str = "batched"
    voi_cache_capacity: int = 1 << 20
    suggest: str = "batched"
    learner: str = "hist"
    shards: int = 0
    sim_cache_capacity: int = 1 << 20
    guard: bool = False
    guard_interval: int = 4
    guard_max_incidents: int = 25
    journal_path: str | None = None
    journal_fsync: bool = False
    checkpoint_path: str | None = None
    checkpoint_every: int = 25

    def __post_init__(self) -> None:
        if self.ranking not in _RANKINGS:
            raise ConfigError(f"ranking must be one of {_RANKINGS}, got {self.ranking!r}")
        if self.learning not in _LEARNINGS:
            raise ConfigError(f"learning must be one of {_LEARNINGS}, got {self.learning!r}")
        if self.voi_prior not in ("score", "uniform"):
            raise ConfigError(f"voi_prior must be 'score' or 'uniform', got {self.voi_prior!r}")
        if self.pipeline not in _PIPELINES:
            raise ConfigError(f"pipeline must be one of {_PIPELINES}, got {self.pipeline!r}")
        if self.drain not in _DRAINS:
            raise ConfigError(f"drain must be one of {_DRAINS}, got {self.drain!r}")
        if self.voi_cache_capacity < 1:
            raise ConfigError(
                f"voi_cache_capacity must be positive, got {self.voi_cache_capacity!r}"
            )
        if self.suggest not in _SUGGESTS:
            raise ConfigError(f"suggest must be one of {_SUGGESTS}, got {self.suggest!r}")
        if self.learner not in _LEARNERS:
            raise ConfigError(f"learner must be one of {_LEARNERS}, got {self.learner!r}")
        if not isinstance(self.shards, int) or self.shards < 0:
            raise ConfigError(f"shards must be a non-negative int, got {self.shards!r}")
        if self.sim_cache_capacity < 1:
            raise ConfigError(
                f"sim_cache_capacity must be positive, got {self.sim_cache_capacity!r}"
            )
        if not isinstance(self.guard, bool):
            raise ConfigError(f"guard must be a bool, got {self.guard!r}")
        if self.guard_interval < 1:
            raise ConfigError(
                f"guard_interval must be >= 1, got {self.guard_interval!r}"
            )
        if self.guard_max_incidents < 1:
            raise ConfigError(
                f"guard_max_incidents must be >= 1, got {self.guard_max_incidents!r}"
            )
        if self.journal_path is not None and not str(self.journal_path):
            raise ConfigError("journal_path must be None or a non-empty path")
        if not isinstance(self.journal_fsync, bool):
            raise ConfigError(f"journal_fsync must be a bool, got {self.journal_fsync!r}")
        if self.checkpoint_path is not None and not str(self.checkpoint_path):
            raise ConfigError("checkpoint_path must be None or a non-empty path")
        if self.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every!r}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def gdr(cls, **overrides) -> "GDRConfig":
        """The full proposed approach (VOI + active learning)."""
        return cls(**{"ranking": "voi", "learning": "active", **overrides})

    @classmethod
    def s_learning(cls, **overrides) -> "GDRConfig":
        """GDR-S-Learning: VOI ranking, passive (random-order) learning."""
        return cls(**{"ranking": "voi", "learning": "passive", **overrides})

    @classmethod
    def active_learning(cls, **overrides) -> "GDRConfig":
        """Plain active learning: no grouping, no VOI, no quota."""
        return cls(
            **{
                "ranking": "random",
                "learning": "active",
                "grouping": False,
                "use_benefit_quota": False,
                **overrides,
            }
        )

    @classmethod
    def no_learning(cls, **overrides) -> "GDRConfig":
        """GDR-NoLearning: VOI ranking, user verifies everything."""
        return cls(**{"ranking": "voi", "learning": "none", "use_benefit_quota": False, **overrides})


@dataclass(slots=True)
class GDRResult:
    """Outcome of one engine run.

    Attributes
    ----------
    feedback_used / learner_decisions / iterations:
        Effort counters.
    initial_loss / final_loss:
        Eq. 3 loss before and after (against the ground truth when an
        evaluator is available, else the violation-based proxy).
    trajectory:
        Loss samples after every user label and learner decision.
    initial_dirty / remaining_dirty:
        Dirty-tuple counts before and after.
    report:
        Cell-level precision/recall (only when ground truth is known).
    """

    feedback_used: int = 0
    learner_decisions: int = 0
    iterations: int = 0
    initial_loss: float = 0.0
    final_loss: float = 0.0
    trajectory: list[TrajectoryPoint] = field(default_factory=list)
    initial_dirty: int = 0
    remaining_dirty: int = 0
    report: RepairReport | None = None

    @property
    def improvement(self) -> float:
        """Final % quality improvement over the initial instance."""
        return quality_improvement(self.initial_loss, self.final_loss)


class GDREngine:
    """Guided data repair over one database instance.

    Parameters
    ----------
    db:
        The dirty instance; repaired **in place**.
    rules:
        The quality rules Σ.
    oracle:
        The user (simulated or real).
    config:
        Engine knobs; defaults to the full GDR preset.
    clean_db:
        Optional ground truth enabling loss-vs-truth trajectories and
        the precision/recall report.

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> from repro.constraints import RuleSet, parse_rules
    >>> from repro.core import GDREngine, GroundTruthOracle
    >>> schema = Schema("r", ["zip", "city"])
    >>> dirty = Database(schema, [["46360", "Westville"]])
    >>> clean = Database(schema, [["46360", "Michigan City"]])
    >>> rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
    >>> engine = GDREngine(dirty, rules, GroundTruthOracle(clean), clean_db=clean)
    >>> result = engine.run()
    >>> dirty.value(0, "city")
    'Michigan City'
    """

    def __init__(
        self,
        db: Database,
        rules: RuleSet,
        oracle: UserOracle,
        config: GDRConfig | None = None,
        clean_db: Database | None = None,
        generate: bool = True,
    ) -> None:
        self.db = db
        self.rules = rules
        self.oracle = oracle
        self.config = config if config is not None else GDRConfig.gdr()
        self.clean_db = clean_db
        self.initial_db = db.snapshot()

        self.detector = ViolationDetector(db, rules)
        # shards > 0 fronts the detector with the partition-parallel
        # engine; every bulk consumer below receives the front (it
        # delegates everything it does not parallelise), shards=0 keeps
        # the single-process reference wiring byte-identical
        self.sharding = (
            ShardedViolationEngine(self.detector, self.config.shards)
            if self.config.shards > 0
            else None
        )
        self.state = RepairState()
        # engine-owned Eq. 7 cache: one code-space memo shared by the
        # suggestion engine and the learner's feature encoder — no
        # module-global state leaking across engines or datasets
        self.sim_cache = SimilarityCache(
            db.columns, capacity=self.config.sim_cache_capacity
        )
        self.generator = UpdateGenerator(
            db,
            rules,
            self.detector,
            self.state,
            sim=self.sim_cache,
            batched=self.config.suggest == "batched",
        )
        self.manager = ConsistencyManager(db, rules, self.detector, self.state, self.generator)
        self.learner: FeedbackLearner | None = None
        if self.config.learning != "none":
            self.learner = FeedbackLearner(
                db.schema,
                sim=self.sim_cache,
                n_estimators=self.config.n_estimators,
                max_depth=self.config.max_depth,
                min_examples=self.config.min_examples,
                seed=self.config.seed,
                kind=self.config.learner,
            )
        self.voi = VOIEstimator(self.sharding or self.detector)
        self.strategy = self._build_strategy()
        self.policy = EffortPolicy(
            batch_size=self.config.batch_size,
            min_labels=self.config.min_labels,
            use_benefit_quota=self.config.use_benefit_quota,
        )
        self.evaluator: QualityEvaluator | None = None
        if clean_db is not None:
            self.evaluator = QualityEvaluator(clean_db, rules)

        # delta pipeline substrate: the incrementally maintained group
        # partition, and (for VOI ranking) the stamped benefit cache.
        # Attached before the initial generation pass so every
        # suggestion flows through the event stream.
        self.group_index: GroupIndex | None = None
        self.benefit_cache: GroupBenefitCache | None = None
        if self.config.pipeline == "delta":
            self.group_index = GroupIndex(self.state, grouping=self.config.grouping)
            if self.config.ranking == "voi":
                self.benefit_cache = GroupBenefitCache(
                    self.voi,
                    self.group_index,
                    self.detector,
                    db,
                    self.learner,
                    probability_many=self.probability_many,
                    prob_memo_capacity=self.config.voi_cache_capacity,
                    row_version_capacity=self.config.voi_cache_capacity,
                )

        # robustness layer: write-ahead journal + invariant guard
        self.journal: FeedbackJournal | None = None
        if self.config.journal_path is not None:
            self.journal = FeedbackJournal(
                self.config.journal_path, fsync=self.config.journal_fsync
            )
            self.manager.journal = self.journal
            db.add_write_hook(self._journal_write_hook)
            if self.journal.seq == 0:
                self.journal.log_meta(db, asdict(self.config))
        self.guard: InvariantGuard | None = None
        if self.config.guard:
            self.guard = InvariantGuard(
                self,
                interval=self.config.guard_interval,
                max_incidents=self.config.guard_max_incidents,
            )

        if generate:
            self.generator.generate_all()
        self.initial_dirty = self.detector.dirty_count()
        # group keys the user has given feedback on; the learner only
        # ever decides inside these contexts (the paper's grouping
        # locality: models "adapt locally to the current group")
        self._visited_groups: set[tuple[str, object]] = set()
        # loop-position snapshot maintained during run(); what
        # checkpoint() serialises alongside the structural state
        self._loop_state: dict = {
            "phase": "interactive",
            "iterations": 0,
            "feedback_used": 0,
            "learner_decisions": 0,
            "trajectory": [],
            "stalled": 0,
            "feedback_limit": None,
            "drain": True,
            "initial_loss": None,
            "session_rng": None,
            "strategy_rng": None,
        }
        # set by GDREngine.restore(); consumed by resume()
        self._resume_state: dict | None = None

    def _journal_write_hook(
        self, tid: int, attribute: str, old: object, new: object, source: str
    ) -> None:
        self.journal.log_write(tid, attribute, old, new, source)

    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Release every listener the engine's substrate registered.

        Call when the database (or repair state) outlives the engine —
        e.g. when constructing several engines over one instance to
        compare configurations — so discarded engines stop receiving
        write and state events.
        """
        if self.sharding is not None:
            self.sharding.detach()
        self.detector.detach()
        self.manager.detach()
        self.generator.detach()
        if self.group_index is not None:
            self.group_index.detach()
        if self.benefit_cache is not None:
            self.benefit_cache.detach()
        if self.journal is not None:
            self.db.remove_write_hook(self._journal_write_hook)
            self.manager.journal = None
            self.journal.close()

    # ------------------------------------------------------------------
    # durability: checkpoint / restore / resume
    # ------------------------------------------------------------------
    _CHECKPOINT_FORMAT = 1

    def checkpoint(self, path: str | Path) -> None:
        """Serialise the full session state to *path*, atomically.

        Captures the instance (rows by tid), the repair state
        (suggestions, prevented values, frozen cells), the learner's
        training set and fitted committees, the loop position recorded
        at the last safe point (iteration top / drain start, including
        RNG states), and the journal sequence covered — everything
        :meth:`restore` + :meth:`resume` need to continue the session.
        Written to a temp file and renamed, so a kill mid-checkpoint
        leaves the previous checkpoint intact.
        """
        rows, next_tid = self.db.export_rows()
        initial_rows, initial_next_tid = self.initial_db.export_rows()
        payload = {
            "format": self._CHECKPOINT_FORMAT,
            "config": asdict(self.config),
            "schema": (self.db.schema.name, list(self.db.schema.attributes)),
            "rows": rows,
            "next_tid": next_tid,
            "initial_rows": initial_rows,
            "initial_next_tid": initial_next_tid,
            "initial_dirty": self.initial_dirty,
            "pool": [
                (u.tid, u.attribute, u.value, u.score) for u in self.state.updates()
            ],
            "prevented": self.state.prevented_map(),
            "frozen": self.state.frozen_cells(),
            "visited_groups": set(self._visited_groups),
            "learner": self.learner.export_state() if self.learner is not None else None,
            "loop": dict(self._loop_state),
            "journal_seq": self.journal.seq if self.journal is not None else 0,
        }
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self.journal is not None:
            self.journal.log_checkpoint(path, payload["loop"]["phase"])

    @classmethod
    def restore(
        cls,
        path: str | Path,
        rules: RuleSet,
        oracle: UserOracle,
        clean_db: Database | None = None,
    ) -> "GDREngine":
        """Rebuild an engine from a :meth:`checkpoint` file.

        The caller supplies the non-serialisable collaborators (rules
        and oracle — and the ground truth, when loss trajectories are
        wanted); everything else comes from the checkpoint. Follow with
        :meth:`resume` to continue the interrupted run.
        """
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except OSError as exc:
            raise ConfigError(f"cannot read checkpoint {path}: {exc}") from exc
        if payload.get("format") != cls._CHECKPOINT_FORMAT:
            raise ConfigError(
                f"checkpoint {path} has format {payload.get('format')!r}, "
                f"expected {cls._CHECKPOINT_FORMAT}"
            )
        schema = Schema(payload["schema"][0], payload["schema"][1])
        db = Database.from_rows(schema, payload["rows"], payload["next_tid"])
        config = GDRConfig(**payload["config"])
        engine = cls(db, rules, oracle, config, clean_db, generate=False)
        engine.initial_db = Database.from_rows(
            schema, payload["initial_rows"], payload["initial_next_tid"]
        )
        engine.initial_dirty = payload["initial_dirty"]
        # order matters: flags first (they carry no pool entries), then
        # the pool itself — each put flows through the state events into
        # the incremental group index
        for cell in sorted(payload["frozen"]):
            engine.state.freeze(cell)
        for cell in sorted(payload["prevented"]):
            for value in sorted(payload["prevented"][cell], key=repr):
                engine.state.prevent(cell, value)
        for tid, attribute, value, score in payload["pool"]:
            engine.state.put(CandidateUpdate(tid, attribute, value, score))
        if engine.learner is not None and payload["learner"] is not None:
            engine.learner.restore_state(payload["learner"])
        engine._visited_groups = set(payload["visited_groups"])
        engine._loop_state = dict(payload["loop"])
        engine._resume_state = {
            "journal_seq": payload["journal_seq"],
            "loop": dict(payload["loop"]),
        }
        return engine

    def resume(self) -> GDRResult:
        """Continue the interrupted run a restored engine checkpointed.

        Re-enters :meth:`run` at the checkpointed loop position. User
        answers recorded in the journal after the checkpoint are
        replayed through a :class:`~repro.db.journal.ReplayOracle`
        (falling through to the live oracle once the tail is dry), so
        re-execution reaches the kill point without re-asking the user
        and then simply keeps going. A session checkpointed at drain
        start replays nothing — the drain consults no oracle — and
        re-runs the drain deterministically. The re-execution journals
        its own records; the resumed ``run`` marker's ``base_seq``
        marks the post-checkpoint originals as superseded so the
        journal's effective history stays linear (see
        :meth:`FeedbackJournal.effective_records`).
        """
        if self._resume_state is None:
            raise ConfigError(
                "resume() requires an engine built by GDREngine.restore()"
            )
        resume = self._resume_state
        self._resume_state = None
        loop = dict(resume["loop"])
        if self.journal is not None:
            # fail fast on a journal from a different session: the meta
            # fingerprint must match the restored initial instance and
            # the recorded config must match the checkpoint's
            FeedbackJournal.verify_meta(
                self.journal.path, self.initial_db, asdict(self.config)
            )
            tail = FeedbackJournal.feedback_tail(
                self.journal.path, after_seq=resume["journal_seq"]
            )
            if tail:
                self.oracle = ReplayOracle(tail, self.oracle)
            # recorded on the resumed run marker so effective_records /
            # replay_writes / feedback_tail can drop the post-checkpoint
            # records this re-execution supersedes
            loop["base_seq"] = resume["journal_seq"]
        if loop["initial_loss"] is None:
            # checkpointed before the run ever started: plain fresh run
            return self.run(loop["feedback_limit"], drain=loop["drain"])
        return self.run(loop["feedback_limit"], drain=loop["drain"], _resume=loop)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """One aggregated snapshot of every cache/guard/journal counter.

        The benches read this instead of plumbing individual counters;
        keys mirror the component names (``sim`` →
        ``SimilarityCache.stats``, ``cache`` →
        ``GroupBenefitCache.stats``, ``voi`` → term-memo occupancy,
        ``shards`` → sharded-engine pool size, dispatch/build/merge
        timings and respawn counters (empty when ``shards=0``),
        ``guard`` → tick/audit/incident counters plus the structured
        incident records, ``journal`` → path and sequence, ``faults`` →
        the registered fault points (from the machine-readable
        ``FAULT_POINT_REGISTRY``) and whichever are currently armed).
        """
        from repro.testing.faults import armed_points, fault_points

        snapshot: dict = {
            "sim": dict(self.sim_cache.stats),
            "cache": dict(self.benefit_cache.stats) if self.benefit_cache is not None else {},
            "voi": {"term_memo_size": self.voi.term_memo_size},
            "shards": self.sharding.health_info() if self.sharding is not None else {},
            "guard": dict(self.guard.stats) if self.guard is not None else {},
            "journal": (
                {"path": str(self.journal.path), "seq": self.journal.seq}
                if self.journal is not None
                else {}
            ),
            "faults": {
                "registered": {
                    name: point.module for name, point in fault_points().items()
                },
                "armed": armed_points(),
            },
        }
        if self.guard is not None:
            snapshot["incidents"] = [i.as_dict() for i in self.guard.incidents]
        return snapshot

    # ------------------------------------------------------------------
    def _build_strategy(self) -> RankingStrategy:
        if self.config.ranking == "voi":
            return VOIRanking(self.voi)
        if self.config.ranking == "greedy":
            return GreedyRanking()
        return RandomRanking(seed=self.config.seed)

    def probability(self, update: CandidateUpdate) -> float:
        """``p̃``: learner confirm probability, score prior while cold."""
        prior = update.score if self.config.voi_prior == "score" else 0.5
        if self.learner is None:
            return prior
        row = self.db.values_snapshot(update.tid)
        prediction = self.learner.predict(update, row)
        if prediction.feedback is None:
            return prior
        return prediction.confirm_probability

    def probability_many(self, updates: list[CandidateUpdate]) -> list[float]:
        """``p̃`` for many updates at once (same values as :meth:`probability`).

        Batches the committee passes per attribute; used by the benefit
        cache to fill probability-memo misses without one single-row
        forest pass per update.
        """
        use_score = self.config.voi_prior == "score"
        priors = [update.score if use_score else 0.5 for update in updates]
        if self.learner is None:
            return priors
        predictions = predict_many_snapshot(self.db, self.learner, updates)
        return [
            prior if prediction.feedback is None else prediction.confirm_probability
            for prior, prediction in zip(priors, predictions)
        ]

    def current_loss(self) -> float:
        """Eq. 3 loss now (vs ground truth when available)."""
        if self.evaluator is not None:
            return self.evaluator.loss(self.detector)
        # proxy without ground truth: weighted violation mass
        weights = self.detector.weights()
        total = 0.0
        for rule in self.rules:
            context = max(1, self.detector.context_size(rule))
            total += weights[rule] * self.detector.violating_tuple_count(rule) / context
        return total

    # ------------------------------------------------------------------
    def run(
        self,
        feedback_limit: int | None = None,
        drain: bool = True,
        _resume: dict | None = None,
    ) -> GDRResult:
        """Execute the interactive loop until done or out of budget.

        Parameters
        ----------
        feedback_limit:
            The user's total label budget ``F``; ``None`` means the
            user is available until no suggestions remain.
        drain:
            When False, stop after the interactive phase without the
            Figure 5 automatic drain — the drain benchmark uses this to
            time the drain phase in isolation.
        _resume:
            Internal: the checkpointed loop position a restored session
            continues from (see :meth:`resume`). Presets the budget,
            counters, trajectory and RNG states; everything after the
            checkpoint is re-derived by deterministic re-execution.
        """
        budget = FeedbackBudget(feedback_limit)
        if _resume is not None:
            budget.used = _resume["feedback_used"]
            result = GDRResult(
                initial_loss=_resume["initial_loss"],
                initial_dirty=self.initial_dirty,
            )
            result.iterations = _resume["iterations"]
            result.trajectory = list(_resume["trajectory"])
            learner_decisions = _resume["learner_decisions"]
            stalled = _resume["stalled"]
        else:
            result = GDRResult(
                initial_loss=self.current_loss(),
                initial_dirty=self.initial_dirty,
            )
            result.trajectory.append(TrajectoryPoint(0, 0, result.initial_loss))
            learner_decisions = 0
            stalled = 0
        if self.journal is not None:
            self.journal.log_run(
                feedback_limit,
                drain,
                resumed=_resume is not None,
                base_seq=_resume.get("base_seq", 0) if _resume is not None else None,
            )

        def on_feedback() -> None:
            result.trajectory.append(
                TrajectoryPoint(budget.used, learner_decisions, self.current_loss())
            )

        def on_learner_decision() -> None:
            nonlocal learner_decisions
            learner_decisions += 1
            result.trajectory.append(
                TrajectoryPoint(budget.used, learner_decisions, self.current_loss())
            )

        session = InteractiveSession(
            self.db,
            self.state,
            self.manager,
            self.oracle,
            self.learner,
            ordering="random" if self.config.learning == "passive" else "uncertainty",
            batch_size=self.config.batch_size,
            seed=self.config.seed,
            max_decision_uncertainty=self.config.max_decision_uncertainty,
            drain=self.config.drain,
        )
        if _resume is not None:
            session.rng_state = _resume["session_rng"]
            if _resume["strategy_rng"] is not None:
                self.strategy.rng_state = _resume["strategy_rng"]

        def capture(phase: str) -> dict:
            """Loop position at a safe point (top of iteration / drain)."""
            return {
                "phase": phase,
                "iterations": result.iterations,
                "feedback_used": budget.used,
                "learner_decisions": learner_decisions,
                "trajectory": list(result.trajectory),
                "stalled": stalled,
                "feedback_limit": feedback_limit,
                "drain": drain,
                "initial_loss": result.initial_loss,
                "session_rng": session.rng_state,
                "strategy_rng": getattr(self.strategy, "rng_state", None),
            }

        auto_path = self.config.checkpoint_path
        delta = self.group_index is not None
        phase = _resume["phase"] if _resume is not None else "interactive"
        while (
            phase == "interactive"
            and not budget.exhausted
            and result.iterations < self.config.max_iterations
        ):
            fault_hit("engine.iteration", iteration=result.iterations)
            if self.guard is not None:
                self.guard.tick()
            self._loop_state = capture("interactive")
            if auto_path is not None and result.iterations % self.config.checkpoint_every == 0:
                self.checkpoint(auto_path)
            if delta:
                self.manager.refresh_suggestions()
                if len(self.state) == 0:
                    break
                group, benefit, max_benefit, group_count = self._pick_top_group()
            else:
                self.manager.refresh_suggestions_full()
                updates = self.state.updates()
                if not updates:
                    break
                groups = group_updates(updates, grouping=self.config.grouping)
                ranked = self.strategy.rank(groups, self.probability)
                group, benefit = ranked[0]
                max_benefit = max(score for __, score in ranked)
                group_count = len(groups)
            if self.config.learning == "none" or not self.config.use_benefit_quota:
                quota = group.size
            else:
                quota = self.policy.group_quota(
                    group.size, benefit, max_benefit, self.initial_dirty
                )
            report = session.run(
                group, quota, budget, on_feedback=on_feedback, on_learner_decision=on_learner_decision
            )
            if report.labeled > 0:
                self._visited_groups.add(group.key)
            result.iterations += 1
            if report.labeled == 0 and report.learner_decided == 0:
                stalled += 1
                if stalled >= group_count:
                    break  # nothing labelable or decidable remains
            else:
                stalled = 0

        if drain and self.learner is not None:
            # the drain consults no oracle, so a drain-start checkpoint
            # plus deterministic re-execution recovers any mid-drain kill
            self._loop_state = capture("drain")
            if auto_path is not None:
                self.checkpoint(auto_path)
            # the callback increments learner_decisions for every decision
            self._drain_with_learner(on_learner_decision)

        result.feedback_used = budget.used
        result.learner_decisions = learner_decisions
        result.final_loss = self.current_loss()
        result.remaining_dirty = self.detector.dirty_count()
        if self.clean_db is not None:
            result.report = evaluate_repair(self.initial_db, self.db, self.clean_db)
        return result

    # ------------------------------------------------------------------
    def _pick_top_group(self) -> tuple[UpdateGroup, float, float, int]:
        """Delta-path group selection: ``(group, benefit, max benefit, #groups)``.

        Reproduces the rebuild path's ``strategy.rank(...)[0]`` choice
        without re-scoring the world:

        * VOI — the benefit cache re-scores only stale groups and
          heap-selects the top; the top's benefit *is* the maximum
          (benefit is the primary sort key).
        * Greedy — largest group first straight off the maintained
          index; the score (and thus the maximum score) is the top
          group's size.
        * Random — one permutation over the index's group list,
          consuming the RNG exactly like the rebuild path.
        """
        index = self.group_index
        if self.guard is not None:
            # graceful degradation: an audit that just recovered the
            # partition or the benefit cache routes this one selection
            # through the rebuild reference; the repaired structure is
            # trusted again from the next iteration on
            degraded = self.guard.consume_degraded("benefit_cache")
            if self.guard.consume_degraded("group_index"):
                degraded = True
            if degraded:
                groups = group_updates(self.state.updates(), grouping=self.config.grouping)
                ranked = self.strategy.rank(groups, self.probability)
                group, benefit = ranked[0]
                return group, benefit, max(score for __, score in ranked), len(ranked)
        if self.benefit_cache is not None:
            group, benefit = self.benefit_cache.top(self.probability)
            return group, benefit, benefit, len(index)
        if self.config.ranking == "greedy":
            # the index's cached key order is the greedy tie-break
            # (type-aware key sort), so the first maximum-size key IS
            # the ranked winner — O(1) size reads, no group
            # materialisation for the losers
            best_key = None
            best_size = -1
            for key in index.keys():
                size = index.size(key)
                if size > best_size:
                    best_key, best_size = key, size
            group = index.group(best_key)
            return group, float(best_size), float(best_size), len(index)
        ranked = self.strategy.rank(index.groups(), self.probability)
        group, benefit = ranked[0]
        return group, benefit, max(score for __, score in ranked), len(ranked)

    # ------------------------------------------------------------------
    def drain_remaining(
        self,
        on_learner_decision=None,
        restrict: bool | None = None,
        max_passes: int = 25,
    ) -> int:
        """Run the Figure 5 automatic phase on demand.

        Lets the learner decide the remaining suggestions — the
        protocol's "GDR decides about the rest of the updates
        automatically". *restrict* ``None`` honours the engine's
        grouping locality (decisions stay inside group contexts the
        user inspected); ``False`` decides the whole remaining pool,
        the literal Figure 5 reading (and what the drain benchmark
        exercises). Returns the number of decisions made.
        """
        if self.learner is None:
            return 0
        callback = on_learner_decision if on_learner_decision is not None else lambda: None
        return self._drain_with_learner(callback, max_passes=max_passes, restrict=restrict)

    def _drain_with_learner(
        self, on_learner_decision, max_passes: int = 25, restrict: bool | None = None
    ) -> int:
        """After the user stops, let the learner decide what remains.

        This is the Figure 5 protocol: the user affords ``F`` labels,
        then "GDR decides about the rest of the updates automatically".
        With grouping enabled, decisions stay inside group contexts the
        user actually inspected — the model has only adapted locally to
        those (§5.2) and deciding unseen contexts is how a committee
        becomes confidently wrong. Passes repeat because decisions
        regenerate suggestions; the drain stops at a fixpoint or after
        *max_passes*.

        Per pass, the default ``drain="batched"`` path runs one
        batched committee pass over every candidate against a
        copy-on-write snapshot view and applies the decisions in order
        (:func:`~repro.core.session.decide_batched`) — the
        ``drain="sequential"`` reference (one committee prediction per
        update, retained below) is reproduced byte-for-byte because
        predictions are pure, no model refits happen mid-drain, an
        apply writes only its own tuple, and updates whose tuple *was*
        written earlier in the pass are re-predicted at their turn.
        """
        decided = 0
        if restrict is None:
            restrict = self.config.grouping
        delta = self.group_index is not None
        batched = self.config.drain == "batched"

        def callback() -> None:
            fault_hit("drain.decision", decided=decided)
            on_learner_decision()

        for _pass in range(max_passes):
            fault_hit("engine.drain_pass", index=_pass)
            if self.guard is not None:
                self.guard.tick()
            if delta:
                self.manager.refresh_suggestions()
                updates = self._drain_candidates(restrict)
            else:
                self.manager.refresh_suggestions_full()
                updates = self.state.updates()
            if not updates:
                break
            if batched:
                progress = self._drain_pass_batched(updates, restrict, callback)
            else:
                progress = self._drain_pass_sequential(updates, restrict, callback)
            decided += progress
            if progress == 0:
                break
        return decided

    def _decision_allowed(self, update: CandidateUpdate, prediction) -> bool:
        return delegation_allowed(
            self.learner, self.config.max_decision_uncertainty, update, prediction
        )

    def _drain_pass_sequential(
        self, updates: list[CandidateUpdate], restrict: bool, on_learner_decision
    ) -> int:
        """One predict-one-apply-one drain pass (the reference path)."""
        progress = 0
        for update in updates:
            if not self.state.contains(update):
                continue
            if restrict and update.group_key not in self._visited_groups:
                continue
            row = self.db.values_snapshot(update.tid)
            prediction = self.learner.predict(update, row)
            if not self._decision_allowed(update, prediction):
                continue
            self.manager.apply_feedback(
                update, UserFeedback(prediction.feedback), source="learner"
            )
            progress += 1
            on_learner_decision()
        return progress

    def _drain_pass_batched(
        self, updates: list[CandidateUpdate], restrict: bool, on_learner_decision
    ) -> int:
        """One batched drain pass (byte-identical to sequential).

        The group-locality filter is applied up front (membership is
        static within a pass); liveness is re-checked per update at its
        apply turn, exactly where the sequential path checks it — an
        update invalidated by an earlier apply in the pass is predicted
        wastefully but never applied, and a suggestion regenerated
        identically mid-pass is applied just as the reference would.
        """
        if restrict:
            updates = [u for u in updates if u.group_key in self._visited_groups]
        return decide_batched(
            self.db,
            self.learner,
            self.state,
            self.manager,
            updates,
            self._decision_allowed,
            on_learner_decision,
        )

    def _drain_candidates(self, restrict: bool) -> list[CandidateUpdate]:
        """Live updates the drain may decide, in cell order.

        With grouping locality active, reads only the visited groups'
        members off the index instead of filtering the whole pool —
        the same set (and order) the rebuild path's filtered scan
        visits.
        """
        if not restrict:
            return self.state.updates()
        members: list[CandidateUpdate] = []
        for key in self._visited_groups:
            group = self.group_index.group(key)
            if group is not None:
                members.extend(group.updates)
        members.sort(key=lambda u: u.cell)
        return members
