"""Sharded violation engine: partition-parallel detect and what-if.

The violation workload of the GDR loop — full detection sweeps and the
Eq. 6 what-if probes behind every benefit score — decomposes along the
CFD partition key: a variable rule's LHS partitions are equivalence
classes of the key column's dictionary code, so hashing tuples by that
code splits the relation into ``P`` shards whose partition statistics
are disjoint. This module runs those shards in a persistent pool of
worker processes:

* :class:`ShardPlan` picks the shard key (the LHS column shared by the
  most variable rules), classifies every variable rule as *local*
  (shard key in its LHS — partitions never straddle shards) or *cross*
  (evaluated on the coordinator), and compiles the rule set into a
  pure-code-space payload workers can evaluate without any ``repro``
  object graph;
* workers map the coordinator's code matrix **zero-copy** through the
  shared-memory arena (``db/shm.py``) — probes and detection sweeps
  read the live pages, never a pickled copy;
* :class:`ShardPool` keeps one spawned worker per shard alive across
  calls, with respawn-on-death recovery (a replacement worker rebuilds
  its shard state exactly from the shared pages);
* :class:`ShardedViolationEngine` wraps the canonical
  :class:`~repro.constraints.violations.ViolationDetector` — which
  stays fully resident and incrementally maintained on the coordinator,
  so the delta pipeline, journal, guard and checkpoint machinery are
  untouched — and parallelises the two bulk entry points:
  :meth:`~ShardedViolationEngine.what_if_moved_many_cells` (batched
  probes) and :meth:`~ShardedViolationEngine.detect` (full sweep with
  per-shard build and coordinator merge). Everything else delegates to
  the canonical detector.

Parity discipline: worker arithmetic is a line-for-line code-space
mirror of ``_ConstantProbePlan.moved_many`` / ``_scalar_outcome`` and
``_VariableRuleState.what_if_many``. Rule constants are pre-encoded
into the column vocabularies at plan build and candidate values are
encoded by the coordinator at dispatch (unseen values map to ``-1``,
which can never equal a stored code), so code equality is exactly the
dict-semantics value equality of the reference path and sharded
results are byte-identical to ``shards=0``.

Synchronisation: single-cell writes are maintained incrementally on
the coordinator as before; the engine keeps a *pending-op* dirty
cursor per shard (the tuples whose membership in that shard's local
partitions may have moved) and prepends the ops to the next dispatch.
Ops are idempotent — remove-then-readd from the current shared codes —
so replays after a worker respawn are harmless. Inserts and deletions
bump ``Database.structure_version``, which invalidates every worker's
row mirror wholesale (workers rebuild from the shared pages on the
next command).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import time
import traceback

import numpy as np

from repro.constraints.violations import (
    WhatIfOutcome,
    _ConstantRuleState,
    _VariableRuleState,
)
from repro.db.shm import attach_matrix, share_column_store
from repro.testing.faults import fault_hit

__all__ = [
    "ShardPlan",
    "ShardPool",
    "ShardWorkerError",
    "ShardedViolationEngine",
    "WorkerDied",
    "get_pool",
    "shard_of_code",
]

#: Knuth multiplicative hash constant: spreads consecutive dictionary
#: codes (which are dense by construction) across shards.
_HASH_MULT = 2654435761

#: Batches smaller than this stay on the coordinator: pipe latency
#: exceeds the probe cost for a handful of cells.
_MIN_PARALLEL_CELLS = 8

#: Seconds a coordinator waits on a worker reply before declaring it
#: dead (detection sweeps over 10^6-row shards stay well under this).
_REPLY_TIMEOUT = 600.0

#: ``pos_const`` sentinel in worker code space. ``-1`` is the
#: legitimate code of a never-stored candidate, so absence needs -2.
_NO_CONST = -2


def shard_of_code(code: int, nshards: int) -> int:
    """Shard owning dictionary code *code* (scalar form)."""
    return ((code * _HASH_MULT) & 0xFFFFFFFF) % nshards


def _shard_mask(codes: np.ndarray, shard: int, nshards: int) -> np.ndarray:
    """Vectorised :func:`shard_of_code`: mask of rows owned by *shard*."""
    hashed = (codes.astype(np.uint64) * _HASH_MULT) & 0xFFFFFFFF
    return (hashed % nshards) == shard


class WorkerDied(Exception):
    """A shard worker's pipe broke (crash, kill, or reply timeout)."""

    def __init__(self, shard: int) -> None:
        super().__init__(f"shard worker {shard} died")
        self.shard = shard


class ShardWorkerError(Exception):
    """A shard worker raised while handling a command."""


# ======================================================================
# plan
# ======================================================================


class ShardPlan:
    """Shard-key choice and code-space rule payload for one detector.

    ``key_pos`` is the LHS column position shared by the most variable
    rules (ties broken by lowest position; ``None`` when the rule set
    has no variable rules, in which case rows are distributed round
    robin). A variable rule is *local* when ``key_pos`` appears in its
    LHS: its partitions are keyed by the shard column's code, so every
    partition lives wholly on one shard and per-shard statistics merge
    exactly. Remaining variable rules are *cross* and evaluate on the
    coordinator's canonical state.
    """

    __slots__ = (
        "nshards",
        "key_pos",
        "key_attr",
        "local_vids",
        "cross_vids",
        "var_states",
        "const_states",
        "vid_of_rule",
        "sync_positions",
        "payload",
    )

    @classmethod
    def build(cls, detector, nshards: int) -> ShardPlan:
        plan = cls()
        db = detector.db
        schema = db.schema
        cols = db.columns
        plan.nshards = nshards
        var_states = [s for s in detector._states if isinstance(s, _VariableRuleState)]
        const_states = [s for s in detector._states if isinstance(s, _ConstantRuleState)]
        plan.var_states = var_states
        plan.const_states = const_states
        counts: dict[int, int] = {}
        for state in var_states:
            for p in state._lhs_pos:
                counts[p] = counts.get(p, 0) + 1
        key_pos = min(counts, key=lambda p: (-counts[p], p)) if counts else None
        plan.key_pos = key_pos
        plan.key_attr = schema.attributes[key_pos] if key_pos is not None else None

        var_payload: dict[int, dict] = {}
        local_vids: set[int] = set()
        cross_vids: set[int] = set()
        sync_positions: set[int] = set()
        for vid, state in enumerate(var_states):
            local = key_pos is not None and key_pos in state._lhs_pos
            (local_vids if local else cross_vids).add(vid)
            if local:
                sync_positions.update(state._lhs_pos)
                sync_positions.add(state._rhs_pos)
                for q, __ in state._lhs_consts:
                    sync_positions.add(q)
            var_payload[vid] = {
                "lhs_pos": list(state._lhs_pos),
                "rhs_pos": state._rhs_pos,
                # constants are encoded (allocating) so worker-side code
                # equality is exact value equality even for constants
                # absent from the data
                "consts": [
                    (q, cols.vocabulary(q).encode(c)) for q, c in state._lhs_consts
                ],
                "local": local,
            }
        plan.local_vids = local_vids
        plan.cross_vids = cross_vids
        plan.vid_of_rule = {state.rule: vid for vid, state in enumerate(var_states)}
        plan.sync_positions = sync_positions

        attrs: dict[str, dict] = {}
        for attr in detector._states_by_attr:
            pos = schema.position(attr)
            cplan, a_var_states, __, __, __ = detector._plan_for(attr, pos)
            attrs[attr] = {
                "pos": pos,
                "slots": list(cplan._state_codes) if cplan is not None else [],
                "simple": dict(cplan._simple_by_code) if cplan is not None else {},
                "rhs_ctx": list(cplan._rhs_ctx_maps) if cplan is not None else [],
                "check": list(cplan._check) if cplan is not None else [],
                "vars": [plan.vid_of_rule[s.rule] for s in a_var_states],
            }
        detect_const = [
            (
                [(q, cols.vocabulary(q).encode(c)) for q, c in s._lhs_consts],
                s._rhs_pos,
                cols.vocabulary(s._rhs_pos).encode(s._rhs_const),
            )
            for s in const_states
        ]
        plan.payload = {
            "nshards": nshards,
            "key_pos": key_pos,
            "var": var_payload,
            "attrs": attrs,
            "detect_const": detect_const,
        }
        return plan


# ======================================================================
# worker side (runs in spawned processes; no coordinator objects)
# ======================================================================


class _WorkerState:
    """Per-process shard state: shared mapping + local partition mirror."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.token = None
        self.cfg = None
        self.structure = None
        self.shm = None
        self.matrix = None
        self.tids = None
        self.generation = -1
        self.nrows = 0
        # vid -> (groups, membership) for local variable rules:
        #   groups: {key code tuple: [size, {rhs code: count}]}
        #   membership: {tid: (key code tuple, rhs code)}
        self.runtimes: dict[int, tuple[dict, dict]] = {}

    # -- lifecycle -----------------------------------------------------
    def _attach(self, desc: dict) -> None:
        if self.shm is not None and desc["name"] == self.shm.name:
            return
        old = self.shm
        self.shm = None
        self.matrix = None
        self.tids = None
        if old is not None:
            old.close()
        self.shm, self.matrix, self.tids = attach_matrix(desc)
        self.generation = desc["generation"]

    def close(self) -> None:
        """Drop the worker's mapping of the current generation."""
        shm = self.shm
        self.shm = None
        self.matrix = None
        self.tids = None
        if shm is not None:
            shm.close()

    def prime(self, msg: dict) -> dict:
        start = time.perf_counter()
        self.token = msg["token"]
        self.cfg = msg["cfg"]
        self.structure = msg["structure"]
        self._attach(msg["desc"])
        self.nrows = msg["nrows"]
        self._build_runtimes()
        return {
            "ok": True,
            "gen": self.generation,
            "build_ms": (time.perf_counter() - start) * 1000.0,
        }

    def _stale(self, msg: dict) -> bool:
        return (
            self.cfg is None
            or msg["token"] != self.token
            or msg.get("structure", self.structure) != self.structure
        )

    # -- local rows / runtimes ----------------------------------------
    def _local_rows(self) -> np.ndarray:
        key_pos = self.cfg["key_pos"]
        n = self.nrows
        if key_pos is None:
            return np.arange(self.shard, n, self.cfg["nshards"], dtype=np.int64)
        mask = _shard_mask(self.matrix[key_pos, :n], self.shard, self.cfg["nshards"])
        return np.nonzero(mask)[0]

    def _build_runtimes(self) -> None:
        self.runtimes = {}
        matrix = self.matrix
        rows = None
        for vid, var in self.cfg["var"].items():
            if not var["local"]:
                continue
            if rows is None:
                rows = self._local_rows()
            sel = rows
            for q, code in var["consts"]:
                sel = sel[matrix[q, sel] == code]
            cols_lists = [matrix[p, sel].tolist() for p in var["lhs_pos"]]
            rhs_list = matrix[var["rhs_pos"], sel].tolist()
            tid_list = self.tids[sel].tolist()
            groups: dict[tuple, list] = {}
            membership: dict[int, tuple] = {}
            for i, tid in enumerate(tid_list):
                key = tuple(col[i] for col in cols_lists)
                val = rhs_list[i]
                group = groups.get(key)
                if group is None:
                    group = groups[key] = [0, {}]
                group[0] += 1
                counts = group[1]
                counts[val] = counts.get(val, 0) + 1
                membership[tid] = (key, val)
            self.runtimes[vid] = (groups, membership)

    def _apply_ops(self, ops: list) -> None:
        """Re-derive each touched tuple's membership from the live codes.

        Idempotent final-state semantics: remove whatever the mirror
        holds for the tuple, then re-add from the current shared codes
        iff the tuple (still) belongs to this shard and matches the
        rule's constants. Replaying after a respawn-triggered rebuild is
        a no-op.
        """
        matrix = self.matrix
        key_pos = self.cfg["key_pos"]
        nshards = self.cfg["nshards"]
        for tid, row in ops:
            for vid, (groups, membership) in self.runtimes.items():
                var = self.cfg["var"][vid]
                entry = membership.pop(tid, None)
                if entry is not None:
                    key, val = entry
                    group = groups[key]
                    group[0] -= 1
                    counts = group[1]
                    left = counts[val] - 1
                    if left:
                        counts[val] = left
                    else:
                        del counts[val]
                    if group[0] == 0:
                        del groups[key]
                if shard_of_code(int(matrix[key_pos, row]), nshards) != self.shard:
                    continue
                if any(int(matrix[q, row]) != c for q, c in var["consts"]):
                    continue
                key = tuple(int(matrix[p, row]) for p in var["lhs_pos"])
                val = int(matrix[var["rhs_pos"], row])
                group = groups.get(key)
                if group is None:
                    group = groups[key] = [0, {}]
                group[0] += 1
                group[1][val] = group[1].get(val, 0) + 1
                membership[tid] = (key, val)

    # -- probes (code-space mirrors of the canonical arithmetic) -------
    def probe(self, msg: dict) -> dict:
        self._attach(msg["desc"])
        self.nrows = msg["nrows"]
        self._apply_ops(msg["ops"])
        attr_globals = msg["attr_globals"]
        var_globals = msg["var_globals"]
        out = []
        for __, tid, row, attr, pos, cand_codes in msg["cells"]:
            out.append(
                self._probe_cell(tid, row, attr, pos, cand_codes, attr_globals, var_globals)
            )
        return {"ok": True, "gen": self.generation, "cells": out}

    def _probe_cell(self, tid, row, attr, pos, cand_codes, attr_globals, var_globals):
        acfg = self.cfg["attrs"][attr]
        matrix = self.matrix
        vio_list, ctx_list = attr_globals[attr]
        slots = acfg["slots"]
        row_code = int(matrix[pos, row])

        # _ConstantProbePlan._base_indices mirror
        base = list(acfg["simple"].get(row_code, ()))
        for q, cmap in acfg["rhs_ctx"]:
            hits = cmap.get(int(matrix[q, row]))
            if hits:
                base.extend(hits)
        base.extend(acfg["check"])

        # variable-rule candidate-independent precomputation
        # (_VariableRuleState.what_if_many entry/no-entry branches)
        var_pre = []
        for vid in acfg["vars"]:
            runtime = self.runtimes.get(vid)
            if runtime is None:  # cross rule: coordinator's job
                continue
            groups, membership = runtime
            var = self.cfg["var"][vid]
            vio_before, viol_count, ctx_size = var_globals[vid]
            entry = membership.get(tid)
            if entry is not None:
                key0, val0 = entry
                group0 = groups[key0]
                size0 = group0[0]
                counts0 = group0[1]
                c0 = counts0.get(val0, 0)
                base_vio = vio_before - 2 * (size0 - c0)
                distinct0 = len(counts0)
                distinct0_after = distinct0 - 1 if c0 == 1 else distinct0
                base_viol = (
                    viol_count
                    - (size0 if distinct0 >= 2 else 0)
                    + (size0 - 1 if distinct0_after >= 2 else 0)
                )
                base_ctx = ctx_size - 1
                base_key = key0
            else:
                key0 = val0 = None
                group0 = None
                size0 = c0 = distinct0_after = 0
                base_vio = vio_before
                base_viol = viol_count
                base_ctx = ctx_size
                base_key = tuple(int(matrix[p, row]) for p in var["lhs_pos"])
            others_match = True
            pos_const = _NO_CONST
            for p, c in var["consts"]:
                if p == pos:
                    pos_const = c
                elif int(matrix[p, row]) != c:
                    others_match = False
                    break
            key_idx = None
            for i, p in enumerate(var["lhs_pos"]):
                if p == pos:
                    key_idx = i
            rhs_pos = var["rhs_pos"]
            var_pre.append(
                (
                    vid,
                    groups,
                    entry,
                    key0,
                    val0,
                    group0,
                    size0,
                    distinct0_after,
                    base_vio,
                    base_viol,
                    base_ctx,
                    base_key,
                    others_match,
                    pos_const,
                    key_idx,
                    pos == rhs_pos,
                    int(matrix[rhs_pos, row]),
                    vio_before,
                    viol_count,
                    ctx_size,
                )
            )

        per_candidate = []
        for vcode in cand_codes:
            # constant rules: _ConstantProbePlan.moved_many mirror
            const_moved = []
            if slots and vcode != row_code:
                idxs = list(acfg["simple"].get(vcode, ()))
                idxs.extend(base)
                for i in sorted(idxs):
                    consts, rhs_pos, rhs_const = slots[i]
                    in_before = in_after = True
                    for q, code in consts:
                        if q == pos:
                            if int(matrix[q, row]) != code:
                                in_before = False
                            if vcode != code:
                                in_after = False
                        elif int(matrix[q, row]) != code:
                            in_before = in_after = False
                            break
                    rhs_before = int(matrix[rhs_pos, row])
                    rhs_after = vcode if rhs_pos == pos else rhs_before
                    viol_before = in_before and rhs_before != rhs_const
                    viol_after = in_after and rhs_after != rhs_const
                    vb = vio_list[i]
                    va = vb - viol_before + viol_after
                    if va != vb:
                        sa = ctx_list[i] - in_before + in_after - va
                        const_moved.append((i, vb, int(va), sa))

            # local variable rules: what_if_many mirror
            var_moved = []
            for (
                vid,
                groups,
                entry,
                key0,
                val0,
                group0,
                size0,
                distinct0_after,
                base_vio,
                base_viol,
                base_ctx,
                base_key,
                others_match,
                pos_const,
                key_idx,
                is_rhs,
                rhs_current,
                vio_before,
                viol_count,
                ctx_size,
            ) in var_pre:
                current = row_code
                if vcode == current:
                    continue  # identity outcome: vio_reduction == 0
                in_ctx = others_match and (pos_const == _NO_CONST or vcode == pos_const)
                if not in_ctx:
                    if base_vio != vio_before:
                        var_moved.append(
                            (vid, vio_before, base_vio, base_ctx - base_viol)
                        )
                    continue
                if key_idx is None:
                    new_key = base_key
                else:
                    new_key = base_key[:key_idx] + (vcode,) + base_key[key_idx + 1 :]
                new_val = vcode if is_rhs else rhs_current
                if entry is not None and new_key == key0:
                    size_n = size0 - 1
                    cnt_n = group0[1].get(new_val, 0) - (1 if new_val == val0 else 0)
                    dist_n = distinct0_after
                else:
                    group = groups.get(new_key)
                    if group is None:
                        size_n = cnt_n = dist_n = 0
                    else:
                        size_n = group[0]
                        cnt_n = group[1].get(new_val, 0)
                        dist_n = len(group[1])
                vio_after = base_vio + 2 * (size_n - cnt_n)
                if vio_after == vio_before:
                    continue
                dist_after = dist_n + (1 if cnt_n == 0 else 0)
                viol_after = (
                    base_viol
                    - (size_n if dist_n >= 2 else 0)
                    + (size_n + 1 if dist_after >= 2 else 0)
                )
                var_moved.append((vid, vio_before, vio_after, base_ctx + 1 - viol_after))
            per_candidate.append((const_moved, var_moved))
        return per_candidate

    # -- stateless detection sweep -------------------------------------
    def detect(self, msg: dict) -> dict:
        start = time.perf_counter()
        self._attach(msg["desc"])
        self.nrows = msg["nrows"]
        matrix = self.matrix
        tids = self.tids
        rows = self._local_rows()
        const_stats = []
        for consts, rhs_pos, rhs_code in self.cfg["detect_const"]:
            sel = rows
            for q, code in consts:
                sel = sel[matrix[q, sel] == code]
            vio = tids[sel[matrix[rhs_pos, sel] != rhs_code]]
            const_stats.append((int(sel.size), vio.tolist()))
        var_stats = {}
        for vid, var in self.cfg["var"].items():
            if not var["local"]:
                continue
            sel = rows
            for q, code in var["consts"]:
                sel = sel[matrix[q, sel] == code]
            m = int(sel.size)
            if m == 0:
                var_stats[vid] = (0, 0, [])
                continue
            lhs_cols = [matrix[p, sel] for p in var["lhs_pos"]]
            combined = lhs_cols[0].astype(np.int64)
            bound = int(combined.max()) + 1
            for col in lhs_cols[1:]:
                card = int(col.max()) + 1
                if bound * card >= 2**62:  # pragma: no cover - very wide keys
                    combined = np.unique(combined, return_inverse=True)[1]
                    bound = int(combined.max()) + 1
                combined = combined * card + col
                bound *= card
            uniq, gid = np.unique(combined, return_inverse=True)
            sizes = np.bincount(gid, minlength=len(uniq))
            rhs_codes = matrix[var["rhs_pos"], sel]
            rhs_uniq, rhs_inv = np.unique(rhs_codes, return_inverse=True)
            n_rhs = len(rhs_uniq)
            pair_sorted = np.sort(gid * n_rhs + rhs_inv)
            starts = np.nonzero(
                np.concatenate(([True], pair_sorted[1:] != pair_sorted[:-1]))
            )[0]
            ends = np.concatenate((starts[1:], [m]))
            pair_counts = ends - starts
            distinct = np.bincount(pair_sorted[starts] // n_rhs, minlength=len(uniq))
            total_vio = int(
                (sizes.astype(np.int64) ** 2).sum()
                - (pair_counts.astype(np.int64) ** 2).sum()
            )
            mixed = distinct >= 2
            var_stats[vid] = (total_vio, m, tids[sel[mixed[gid]]].tolist())
        return {
            "ok": True,
            "gen": self.generation,
            "const": const_stats,
            "var": var_stats,
            "rows": int(rows.size),
            "detect_ms": (time.perf_counter() - start) * 1000.0,
        }

    # -- zero-copy proof hook ------------------------------------------
    def peek(self, msg: dict) -> dict:
        """Read one cell straight off the shared mapping (test hook)."""
        self._attach(msg["desc"])
        return {"ok": True, "code": int(self.matrix[msg["pos"], msg["row"]])}


def _worker_main(conn, shard: int) -> None:
    """Entry point of one spawned shard worker."""
    state = _WorkerState(shard)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - coordinator gone
            break
        cmd = msg.get("cmd")
        if cmd == "shutdown":
            try:
                conn.send({"ok": True})
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            break
        try:
            if cmd == "prime":
                reply = state.prime(msg)
            elif cmd == "ping":
                reply = {"ok": True, "pid": os.getpid()}
            elif state._stale(msg):
                reply = {"stale": True}
            elif cmd == "probe":
                reply = state.probe(msg)
            elif cmd == "detect":
                reply = state.detect(msg)
            elif cmd == "peek":
                reply = state.peek(msg)
            else:
                reply = {"error": f"unknown command {cmd!r}"}
        except Exception:  # noqa: BLE001 - report, keep serving
            reply = {"error": traceback.format_exc()}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover
            break
    state.close()
    conn.close()


# ======================================================================
# pool
# ======================================================================


class ShardPool:
    """One persistent spawned worker per shard, with respawn recovery."""

    def __init__(self, nshards: int) -> None:
        self.nshards = nshards
        self._ctx = multiprocessing.get_context("spawn")
        self._conns: list = [None] * nshards
        self._procs: list = [None] * nshards
        self.respawns = 0
        self._closed = False
        for shard in range(nshards):
            self._spawn(shard)

    def _spawn(self, shard: int) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child, shard), daemon=True, name=f"shard-{shard}"
        )
        proc.start()
        child.close()
        self._conns[shard] = parent
        self._procs[shard] = proc

    def alive(self) -> bool:
        return not self._closed

    def pid(self, shard: int) -> int:
        return self._procs[shard].pid

    def send(self, shard: int, msg: dict) -> None:
        try:
            self._conns[shard].send(msg)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise WorkerDied(shard) from exc

    def recv(self, shard: int, timeout: float = _REPLY_TIMEOUT) -> dict:
        conn = self._conns[shard]
        try:
            if not conn.poll(timeout):
                raise WorkerDied(shard)
            reply = conn.recv()
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise WorkerDied(shard) from exc
        if "error" in reply:
            raise ShardWorkerError(reply["error"])
        return reply

    def request(self, shard: int, msg: dict) -> dict:
        self.send(shard, msg)
        return self.recv(shard)

    def respawn(self, shard: int) -> None:
        """Replace a dead worker (fresh process, empty state)."""
        proc = self._procs[shard]
        conn = self._conns[shard]
        if conn is not None:
            conn.close()
        if proc is not None:
            proc.terminate()
            proc.join(timeout=5.0)
        self._spawn(shard)
        self.respawns += 1

    def kill_worker(self, shard: int) -> None:
        """SIGKILL one worker (fault-injection hook for chaos tests)."""
        os.kill(self._procs[shard].pid, signal.SIGKILL)
        self._procs[shard].join(timeout=5.0)

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in range(self.nshards):
            conn = self._conns[shard]
            proc = self._procs[shard]
            if conn is not None:
                try:
                    conn.send({"cmd": "shutdown"})
                except (BrokenPipeError, OSError):
                    pass
                conn.close()
            self._conns[shard] = None
            if proc is not None:
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=2.0)
            self._procs[shard] = None


#: Pool cache: engines with equal shard counts share one pool (workers
#: multiplex engines through per-message tokens).
_POOLS: dict[int, ShardPool] = {}

#: Monotonic engine-configuration tokens; a worker primed by another
#: engine (or freshly respawned) answers ``stale`` and gets re-primed.
_TOKEN_COUNTER = [0]


def get_pool(nshards: int) -> ShardPool:
    """The shared worker pool for *nshards* (spawned on first use)."""
    pool = _POOLS.get(nshards)
    if pool is None or not pool.alive():
        pool = _POOLS[nshards] = ShardPool(nshards)
    return pool


def _shutdown_pools() -> None:  # pragma: no cover - interpreter exit
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()


atexit.register(_shutdown_pools)


# ======================================================================
# coordinator engine
# ======================================================================


class ShardedViolationEngine:
    """Partition-parallel front of a canonical :class:`ViolationDetector`.

    Wraps (never replaces) the coordinator's detector: incremental
    maintenance, the dirty tracker, rule versions, signatures and every
    scalar query delegate straight through. The engine parallelises the
    two bulk entry points — :meth:`what_if_moved_many_cells` and
    :meth:`detect` — across the shared worker pool, keeping per-shard
    pending-op cursors in sync with coordinator writes.
    """

    def __init__(self, detector, nshards: int) -> None:
        if nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {nshards}")
        self.detector = detector
        self.db = detector.db
        self.nshards = nshards
        self.plan = ShardPlan.build(detector, nshards)
        self.arena = share_column_store(self.db.columns)
        try:
            self.pool = get_pool(nshards)
            _TOKEN_COUNTER[0] += 1
            self.token = _TOKEN_COUNTER[0]
            self.min_parallel_cells = _MIN_PARALLEL_CELLS
            self._primed = [False] * nshards
            self._pending: list[dict[int, None]] = [{} for __ in range(nshards)]
            self._structure_version = self.db.structure_version
            self.stats = {
                "pool_size": nshards,
                "key_attr": self.plan.key_attr,
                "local_rules": len(self.plan.local_vids),
                "cross_rules": len(self.plan.cross_vids),
                "dispatches": 0,
                "worker_cells": 0,
                "canonical_cells": 0,
                "respawns": 0,
                "build_ms": {},
                "detect_ms": {},
                "merge_ms": 0.0,
            }
            self.db.add_listener(self._on_change)
        except BaseException:
            # a half-built engine must not leak its arena segment: close()
            # re-points the store at private arrays and unlinks /dev/shm
            self.arena.close()
            raise

    def __getattr__(self, name):
        # everything not overridden is the canonical detector's business
        return getattr(object.__getattribute__(self, "detector"), name)

    # -- write synchronisation -----------------------------------------
    def _on_change(self, change) -> None:
        plan = self.plan
        if not plan.sync_positions:
            return
        pos = self.db.schema.position(change.attribute)
        if pos not in plan.sync_positions:
            return
        cols = self.db.columns
        tid = change.tid
        if pos == plan.key_pos:
            # the tuple may have migrated: both the old and the new
            # key's shard must re-derive its membership
            old_code = cols.code_for(pos, change.old)
            new_code = cols.code_for(pos, change.new)
            self._pending[shard_of_code(old_code, self.nshards)][tid] = None
            self._pending[shard_of_code(new_code, self.nshards)][tid] = None
        else:
            row = cols.position_of(tid)
            key_code = cols.code_at(row, plan.key_pos)
            self._pending[shard_of_code(key_code, self.nshards)][tid] = None

    def _check_structure(self) -> None:
        version = self.db.structure_version
        if version != self._structure_version:
            self._structure_version = version
            # workers rebuild wholesale from the shared pages on their
            # next prime; per-tuple ops for the old row layout are moot
            for pending in self._pending:
                pending.clear()
            self._primed = [False] * self.nshards

    # -- pool recovery --------------------------------------------------
    def _prime(self, shard: int) -> None:
        msg = {
            "cmd": "prime",
            "token": self.token,
            "cfg": self.plan.payload,
            "desc": self.arena.descriptor(),
            "nrows": len(self.db.columns),
            "structure": self._structure_version,
        }
        try:
            reply = self.pool.request(shard, msg)
        except WorkerDied:
            self.pool.respawn(shard)
            self.stats["respawns"] += 1
            reply = self.pool.request(shard, msg)
        self._pending[shard].clear()
        self._primed[shard] = True
        self.stats["build_ms"][shard] = reply["build_ms"]

    def _dispatch(self, shard: int, msg: dict) -> None:
        if not self._primed[shard]:
            self._prime(shard)
        fault_hit("shard.dispatch", pool=self.pool, shard=shard)
        try:
            self.pool.send(shard, msg)
        except WorkerDied:
            self.pool.respawn(shard)
            self.stats["respawns"] += 1
            self._prime(shard)
            self.pool.send(shard, msg)

    def _collect(self, shard: int, msg: dict) -> dict:
        """Receive one reply, recovering from death or staleness.

        A respawned worker rebuilds its exact shard state from the
        shared pages during prime, so resending the original message
        (including its idempotent ops) yields the same answer.
        """
        attempts = 0
        while True:
            try:
                reply = self.pool.recv(shard)
            except WorkerDied:
                attempts += 1
                if attempts > 2:
                    raise
                self.pool.respawn(shard)
                self.stats["respawns"] += 1
                self._prime(shard)
                self.pool.send(shard, msg)
                continue
            if reply.get("stale"):
                attempts += 1
                if attempts > 2:
                    raise ShardWorkerError(f"shard {shard} stayed stale after re-prime")
                self._prime(shard)
                self.pool.send(shard, msg)
                continue
            return reply

    # -- batched what-if -------------------------------------------------
    def what_if_moved_many_cells(self, cells):
        """Sharded :meth:`ViolationDetector.what_if_moved_many_cells`.

        *cells* is a list of ``(tid, attribute, values)`` probes; the
        result list is aligned with it, each entry being the canonical
        per-candidate ``(rule, outcome)`` pairs. Cells are routed to
        the shard owning the tuple's partition; probes on the shard key
        column itself (a candidate may move the tuple to a partition on
        another shard) and cells whose rules have no worker-resident
        state stay on the coordinator. Cross-shard variable rules are
        evaluated canonically and merged into each cell's pair list in
        rule order, so the output is byte-identical to the serial path.
        """
        detector = self.detector
        self._check_structure()
        if len(cells) < self.min_parallel_cells:
            self.stats["canonical_cells"] += len(cells)
            return detector.what_if_moved_many_cells(cells)
        cols = self.db.columns
        plan = self.plan
        key_pos = plan.key_pos
        results: list = [None] * len(cells)
        canonical: list[int] = []
        shard_cells: list[list] = [[] for __ in range(self.nshards)]
        attrs_needed: set[str] = set()
        vids_needed: set[int] = set()
        cross_jobs: list[tuple] = []
        for ci, (tid, attribute, values) in enumerate(cells):
            acfg = plan.payload["attrs"].get(attribute)
            if acfg is None:
                results[ci] = [[] for __ in values]
                continue
            pos = acfg["pos"]
            local_vids = [v for v in acfg["vars"] if v in plan.local_vids]
            if pos == key_pos or not (acfg["slots"] or local_vids):
                canonical.append(ci)
                continue
            row = cols.position_of(tid)
            if key_pos is None:
                shard = ci % self.nshards
            else:
                shard = shard_of_code(cols.code_at(row, key_pos), self.nshards)
            code_of = cols.vocabulary(pos).code_of
            shard_cells[shard].append(
                (ci, tid, row, attribute, pos, [code_of(v) for v in values])
            )
            attrs_needed.add(attribute)
            vids_needed.update(local_vids)
            cross_here = [v for v in acfg["vars"] if v not in plan.local_vids]
            if cross_here:
                cross_jobs.append((ci, tid, pos, values, cross_here))

        # per-batch globals snapshot (canonical aggregates)
        attr_globals = {}
        for attribute in attrs_needed:
            pos = plan.payload["attrs"][attribute]["pos"]
            cplan = detector._plan_for(attribute, pos)[0]
            if cplan is None:
                attr_globals[attribute] = ((), ())
            else:
                cplan.refresh(detector._epoch)
                attr_globals[attribute] = (list(cplan._vio_list), list(cplan._ctx_list))
        var_globals = {}
        for vid in vids_needed:
            state = plan.var_states[vid]
            var_globals[vid] = (state.total_vio, len(state.violating), state.context_size)

        desc = self.arena.descriptor()
        nrows = len(cols)
        messages = {}
        for shard, batch in enumerate(shard_cells):
            if not batch:
                continue
            ops = [(tid, cols.position_of(tid)) for tid in self._pending[shard]]
            msg = {
                "cmd": "probe",
                "token": self.token,
                "desc": desc,
                "nrows": nrows,
                "structure": self._structure_version,
                "ops": ops,
                "attr_globals": attr_globals,
                "var_globals": var_globals,
                "cells": batch,
            }
            self._dispatch(shard, msg)
            messages[shard] = msg

        # coordinator work overlaps the workers: canonical cells and
        # cross-shard variable rules
        for ci in canonical:
            tid, attribute, values = cells[ci]
            results[ci] = detector.what_if_moved_many(tid, attribute, values)
        cross_out: dict[int, dict] = {}
        for ci, tid, pos, values, cross_here in cross_jobs:
            row = self.db.values_view(tid)
            current = row[pos]
            cross_out[ci] = {
                vid: plan.var_states[vid].what_if_many(tid, row, pos, current, values)
                for vid in cross_here
            }

        for shard, msg in messages.items():
            reply = self._collect(shard, msg)
            self.stats["dispatches"] += 1
            for cell, cell_out in zip(msg["cells"], reply["cells"]):
                ci = cell[0]
                results[ci] = self._assemble(
                    cell[3], cell[4], cells[ci][2], cell_out, cross_out.get(ci)
                )
                self.stats["worker_cells"] += 1
            self._pending[shard].clear()
        self.stats["canonical_cells"] += len(canonical)
        # every dispatched worker answered at the current generation, so
        # no name older than it can ever be attached again
        if messages:
            self.arena.release_retired(self.arena.generation)
        return results

    def _assemble(self, attribute, pos, values, cell_out, cross):
        """Worker triples + cross outcomes -> canonical pair lists."""
        detector = self.detector
        plan = self.plan
        cplan, var_states, __, __, __ = detector._plan_for(attribute, pos)
        out = []
        for k in range(len(values)):
            const_moved, var_moved = cell_out[k]
            pairs = [
                (cplan.rules[slot], WhatIfOutcome(vb, va, sa))
                for slot, vb, va, sa in const_moved
            ]
            if var_states:
                local = {vid: triple for vid, *triple in var_moved}
                for state in var_states:
                    vid = plan.vid_of_rule[state.rule]
                    if vid in plan.local_vids:
                        triple = local.get(vid)
                        if triple is not None:
                            pairs.append((state.rule, WhatIfOutcome(*triple)))
                    else:
                        outcome = cross[vid][k]
                        if outcome[3] != 0:
                            pairs.append((state.rule, outcome))
            out.append(pairs)
        return out

    # -- parallel detection sweep ---------------------------------------
    def detect(self, parity: bool = True) -> dict:
        """Full violation sweep across all shards, merged and verified.

        Every worker rebuilds its shard's statistics from the shared
        pages (stateless — no incremental worker state is trusted); the
        coordinator sums constant-rule contexts, unions violating sets,
        adds local variable-rule shard aggregates (exact: partitions
        never straddle shards) and takes cross-shard rules from its own
        canonical state. With ``parity=True`` the merge is compared
        against the canonical detector statistic-for-statistic.
        """
        detector = self.detector
        self._check_structure()
        desc = self.arena.descriptor()
        nrows = len(self.db.columns)
        msg = {
            "cmd": "detect",
            "token": self.token,
            "desc": desc,
            "nrows": nrows,
            "structure": self._structure_version,
        }
        start = time.perf_counter()
        for shard in range(self.nshards):
            self._dispatch(shard, msg)
        replies = [self._collect(shard, msg) for shard in range(self.nshards)]
        detect_s = time.perf_counter() - start
        merge_start = time.perf_counter()
        plan = self.plan
        ok = True
        vio_total = 0
        dirty: set[int] = set()
        for idx, state in enumerate(plan.const_states):
            ctx = sum(reply["const"][idx][0] for reply in replies)
            violating: set[int] = set()
            for reply in replies:
                violating.update(reply["const"][idx][1])
            vio_total += len(violating)
            dirty |= violating
            if ctx != len(state.context) or violating != state.violating:
                ok = False
        for vid in sorted(plan.local_vids):
            state = plan.var_states[vid]
            total_vio = sum(reply["var"][vid][0] for reply in replies)
            ctx = sum(reply["var"][vid][1] for reply in replies)
            violating = set()
            for reply in replies:
                violating.update(reply["var"][vid][2])
            vio_total += total_vio
            dirty |= violating
            if (
                total_vio != state.total_vio
                or ctx != state.context_size
                or violating != state.violating
            ):
                ok = False
        for vid in sorted(plan.cross_vids):
            state = plan.var_states[vid]
            vio_total += state.total_vio
            dirty |= state.violating
        if parity and dirty != detector.dirty_tuples():
            ok = False
        merge_ms = (time.perf_counter() - merge_start) * 1000.0
        self.stats["detect_ms"] = {
            shard: reply["detect_ms"] for shard, reply in enumerate(replies)
        }
        self.stats["merge_ms"] = merge_ms
        self.arena.release_retired(self.arena.generation)
        return {
            "nshards": self.nshards,
            "rows": nrows,
            "shard_rows": [reply["rows"] for reply in replies],
            "parity": bool(ok) if parity else None,
            "vio_total": vio_total,
            "dirty": len(dirty),
            "local_rules": len(plan.local_vids),
            "cross_rules": len(plan.cross_vids),
            "detect_s": detect_s,
            "detect_ms": self.stats["detect_ms"],
            "merge_ms": merge_ms,
            "build_ms": dict(self.stats["build_ms"]),
        }

    # -- zero-copy proof -------------------------------------------------
    def peek(self, shard: int, tid: int, attribute: str) -> int:
        """Read one live cell code through a worker's shared mapping.

        Test hook proving the zero-copy path: the returned code comes
        straight off the worker's view of the shared pages — a write
        through ``set_value`` is visible without any resend.
        """
        if not self._primed[shard]:
            self._prime(shard)
        cols = self.db.columns
        msg = {
            "cmd": "peek",
            "token": self.token,
            "structure": self._structure_version,
            "desc": self.arena.descriptor(),
            "pos": self.db.schema.position(attribute),
            "row": cols.position_of(tid),
        }
        return self.pool.request(shard, msg)["code"]

    # -- health / lifecycle ----------------------------------------------
    def health_info(self) -> dict:
        """Shard section of :meth:`GDREngine.health`."""
        info = dict(self.stats)
        info["build_ms"] = dict(self.stats["build_ms"])
        info["detect_ms"] = dict(self.stats["detect_ms"]) if isinstance(
            self.stats["detect_ms"], dict
        ) else self.stats["detect_ms"]
        info["pool_respawns"] = self.pool.respawns
        info["arena_generation"] = self.arena.generation
        info["arena_retired"] = self.arena.retired_count()
        info["pending_ops"] = [len(p) for p in self._pending]
        return info

    def detach(self) -> None:
        """Stop syncing and return the column store to private memory.

        The shared pool stays up (other engines may use it); this
        engine's workers go stale naturally via their token.
        """
        self.db.remove_listener(self._on_change)
        self.arena.close()

    def __repr__(self) -> str:
        return (
            f"ShardedViolationEngine({self.nshards} shards, "
            f"key={self.plan.key_attr!r}, "
            f"{len(self.plan.local_vids)} local / {len(self.plan.cross_vids)} cross var rules)"
        )
