"""One interactive active-learning session over a group (paper §4.2).

The user picked a group ``c``. The session then alternates:

1. order the group's live updates — by committee uncertainty (GDR) or
   randomly (GDR-S-Learning / no-learning);
2. the user labels the next batch of ``n_s`` updates; each label is
   routed through the consistency manager immediately and added to the
   learner's training set;
3. the learner is retrained and the remaining updates reordered.

When the user's per-group quota (or the global budget) is exhausted the
learner takes over and decides the group's remaining updates — the
paper's "user delegates the remaining decisions to the learned model".
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.effort import FeedbackBudget
from repro.core.grouping import UpdateGroup
from repro.core.learner import FeedbackLearner
from repro.core.user import UserOracle
from repro.db.database import Database
from repro.repair.candidate import CandidateUpdate
from repro.repair.consistency import ConsistencyManager
from repro.repair.feedback import Feedback, UserFeedback
from repro.repair.state import RepairState

__all__ = [
    "InteractiveSession",
    "SessionReport",
    "decide_batched",
    "delegation_allowed",
    "predict_many_snapshot",
]

ProgressCallback = Callable[[], None]

#: ``(update, prediction) -> bool``: the delegation gates.
DecisionGate = Callable[[CandidateUpdate, object], bool]


def delegation_allowed(
    learner: FeedbackLearner, max_decision_uncertainty: float, update, prediction
) -> bool:
    """The delegation gates, shared by every learner decision path.

    A decision requires a committee prediction with uncertainty at most
    *max_decision_uncertainty*; a *confirm* decision (the only one that
    writes the database) additionally requires a *trusted* model. One
    definition serves the engine drain and in-session delegation so the
    two can never diverge.
    """
    if not prediction.is_decision:
        return False
    if prediction.uncertainty > max_decision_uncertainty:
        return False
    if prediction.feedback is Feedback.CONFIRM and not learner.is_trusted(update.attribute):
        return False
    return True


def predict_many_snapshot(
    db: Database, learner: FeedbackLearner, updates: list[CandidateUpdate]
) -> list:
    """One batched committee pass with rows pinned by a snapshot view.

    The view's per-tuple pinning means a tuple carrying several
    suggestions is materialised once, not once per suggestion, and the
    rows form a consistent point-in-time image of the instance.
    """
    with db.snapshot_view() as view:
        rows = [view.values_snapshot(update.tid) for update in updates]
        return learner.predict_many(updates, rows)


def decide_batched(
    db: Database,
    learner: FeedbackLearner,
    state: RepairState,
    manager: ConsistencyManager,
    updates: list[CandidateUpdate],
    decision_allowed: DecisionGate,
    on_applied: ProgressCallback,
) -> int:
    """Batch-decide an ordered update list, byte-identical to one-by-one.

    The shared engine behind the batched learner drain and in-session
    delegation. One ``predict_many`` evaluates every candidate against
    a copy-on-write snapshot view — rows pinned at batch start, one
    materialisation per tuple however many suggestions it carries —
    then decisions are applied strictly in list order.

    Byte-identity with the sequential predict-one-apply-one reference
    rests on three facts: predictions are pure (no model refits happen
    mid-batch), an apply writes at most its own update's tuple, and
    liveness (``state.contains``) is re-checked at each update's apply
    turn. The single hazard is a tuple carrying several live
    suggestions whose earlier suggestion *actually wrote* the row (a
    confirm — rejects and retains never write): such writes close a
    *wave*. Rather than cutting waves statically wherever a tuple
    might write, the batch is cut lazily — ``wrote_database`` applies
    record their tid, and a later update on a recorded tid is simply
    re-predicted against the live row, exactly what the sequential
    path would have seen. The common case (no same-tuple write, e.g.
    every single-suggestion-per-tuple pass) is one committee pass for
    the whole list with zero re-predictions.

    Returns the number of decisions applied.
    """
    if not updates:
        return 0
    predictions = predict_many_snapshot(db, learner, updates)
    applied = 0
    written: set[int] = set()
    for update, prediction in zip(updates, predictions):
        if not state.contains(update):
            continue
        if update.tid in written:
            # an earlier confirm in this batch rewrote the tuple; the
            # batched prediction is stale — recompute on the live row
            prediction = learner.predict(update, db.values_snapshot(update.tid))
        if not decision_allowed(update, prediction):
            continue
        outcome = manager.apply_feedback(
            update, UserFeedback(prediction.feedback), source="learner"
        )
        if outcome.wrote_database:
            written.add(update.tid)
        applied += 1
        on_applied()
    return applied


@dataclass(slots=True)
class SessionReport:
    """What happened during one group session.

    Attributes
    ----------
    group_key:
        The inspected group's ``(attribute, value)`` key.
    labeled:
        User labels consumed.
    learner_decided:
        Updates decided by the learner after delegation.
    user_confirms / user_rejects / user_retains:
        Breakdown of the user labels.
    """

    group_key: tuple[str, object]
    labeled: int = 0
    learner_decided: int = 0
    user_confirms: int = 0
    user_rejects: int = 0
    user_retains: int = 0


class InteractiveSession:
    """Drives user + learner through one update group.

    Parameters
    ----------
    db, state, manager:
        Shared repair substrate.
    oracle:
        The (simulated) user.
    learner:
        The feedback learner, or ``None`` for the no-learning variants.
    ordering:
        ``"uncertainty"`` (active learning) or ``"random"`` (passive).
    batch_size:
        ``n_s``: labels between retrains.
    seed:
        Seed for the random ordering variant.
    drain:
        ``"batched"`` (default) delegates through wave-partitioned
        ``predict_many`` batches against a snapshot view;
        ``"sequential"`` is the retained predict-one-apply-one
        reference the batched path must reproduce byte-for-byte.
    """

    def __init__(
        self,
        db: Database,
        state: RepairState,
        manager: ConsistencyManager,
        oracle: UserOracle,
        learner: FeedbackLearner | None,
        ordering: str = "uncertainty",
        batch_size: int = 10,
        seed: int = 0,
        max_decision_uncertainty: float = 0.5,
        drain: str = "batched",
    ) -> None:
        if ordering not in ("uncertainty", "random"):
            raise ValueError(f"ordering must be 'uncertainty' or 'random', got {ordering!r}")
        if drain not in ("batched", "sequential"):
            raise ValueError(f"drain must be 'batched' or 'sequential', got {drain!r}")
        self.db = db
        self.state = state
        self.manager = manager
        self.oracle = oracle
        self.learner = learner
        self.ordering = ordering
        self.batch_size = batch_size
        self.max_decision_uncertainty = max_decision_uncertainty
        self.drain = drain
        self._rng = np.random.default_rng(seed)

    @property
    def rng_state(self) -> dict:
        """The ordering RNG's serialisable state (for checkpoints)."""
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    # ------------------------------------------------------------------
    def run(
        self,
        group: UpdateGroup,
        quota: int,
        budget: FeedbackBudget,
        on_feedback: ProgressCallback | None = None,
        on_learner_decision: ProgressCallback | None = None,
    ) -> SessionReport:
        """Consume one group: user labels up to *quota*, learner finishes.

        Parameters
        ----------
        group:
            The group chosen from the top of the ranking.
        quota:
            Maximum user labels to spend on this group (``d_i``).
        budget:
            Global feedback budget shared across sessions.
        on_feedback / on_learner_decision:
            Optional hooks fired after each decision (used for
            trajectory recording).
        """
        report = SessionReport(group_key=group.key)
        while report.labeled < quota and not budget.exhausted:
            alive = self._alive_updates(group)
            if not alive:
                break
            ordered = self._order(alive)
            room = quota - report.labeled
            if budget.remaining is not None:
                room = min(room, budget.remaining)
            room = min(self.batch_size, room)
            if (
                self.ordering == "uncertainty"
                and self.learner is not None
                and room >= 2
                and len(ordered) > room
            ):
                # verification probe: spend one label on the model's
                # most CONFIDENT prediction. The user sees predictions
                # alongside the updates (§4.2) and inherently corrects
                # confident mistakes — without this, the accuracy the
                # user observes is biased toward the uncertain region
                # and never validates where delegation will act.
                batch = ordered[: room - 1] + [ordered[-1]]
            else:
                batch = ordered[:room]
            if not batch:
                break
            for update in batch:
                if not self.state.contains(update):
                    continue  # invalidated by an earlier apply in this batch
                self._label_one(update, report)
                budget.consume()
                if on_feedback is not None:
                    on_feedback()
            if self.learner is not None:
                if group.attribute == "*":
                    self.learner.retrain_all()
                else:
                    self.learner.retrain(group.attribute)
        if self.learner is not None:
            self._delegate(group, report, on_learner_decision)
        return report

    # ------------------------------------------------------------------
    def _alive_updates(self, group: UpdateGroup) -> list[CandidateUpdate]:
        return [u for u in group.updates if self.state.contains(u)]

    def _order(self, updates: list[CandidateUpdate]) -> list[CandidateUpdate]:
        if self.ordering == "random" or self.learner is None:
            order = self._rng.permutation(len(updates))
            return [updates[int(i)] for i in order]
        # Uncertainty first; ties (e.g. a cold model answering 1.0 for
        # everything) break toward high repair scores so early labels
        # land on probable genuine fixes rather than arbitrary cells.
        # No writes happen while ordering, so the snapshot rows are
        # simply the live rows, deduplicated per tuple.
        predictions = predict_many_snapshot(self.db, self.learner, updates)
        scored = [
            (-prediction.uncertainty, -update.score, update.cell, update)
            for update, prediction in zip(updates, predictions)
        ]
        scored.sort(key=lambda item: (item[0], item[1], item[2]))
        return [update for __, __, __, update in scored]

    def _label_one(self, update: CandidateUpdate, report: SessionReport) -> None:
        current = self.db.value(update.tid, update.attribute)
        row_snapshot = self.db.values_snapshot(update.tid)
        prediction = None
        if self.learner is not None:
            prediction = self.learner.predict(update, row_snapshot)
        feedback = self.oracle.review(update, current)
        if prediction is not None and prediction.is_decision:
            # the user inherently corrects the learner's mistakes; the
            # running agreement record is what decides delegation
            self.learner.record_validation(
                update.attribute, prediction.feedback is feedback.kind
            )
        report.labeled += 1
        if feedback.kind is Feedback.CONFIRM:
            report.user_confirms += 1
        elif feedback.kind is Feedback.REJECT:
            report.user_rejects += 1
        else:
            report.user_retains += 1
        if self.learner is not None:
            self.learner.add_example(update, row_snapshot, feedback.kind)
            if feedback.kind is Feedback.REJECT and feedback.has_correction:
                corrected = CandidateUpdate(
                    update.tid, update.attribute, feedback.correction, 1.0
                )
                self.learner.add_example(corrected, row_snapshot, Feedback.CONFIRM)
        self.manager.apply_feedback(update, feedback, source="user")

    def _delegate(
        self,
        group: UpdateGroup,
        report: SessionReport,
        on_learner_decision: ProgressCallback | None,
    ) -> None:
        """Let the learner decide the group's remaining updates.

        A decision requires a committee prediction with uncertainty at
        most ``max_decision_uncertainty``; a *confirm* decision (the
        only one that writes the database) additionally requires a
        *trusted* model — the user has recently checked the model's
        predictions and found them accurate (paper §4.2: the user
        decides whether the classifiers are accurate). Retain/reject
        decisions are reversible bookkeeping and may proceed on
        confidence alone. Everything else stays in the pool for later
        rounds or further user feedback.

        The default path decides through :func:`decide_batched` — one
        committee pass over the group against a snapshot view — and is
        byte-identical to the retained ``drain="sequential"``
        predict-one-apply-one reference.
        """
        alive = self._alive_updates(group)
        if self.drain == "sequential":
            for update in alive:
                if not self.state.contains(update):
                    continue
                row = self.db.values_snapshot(update.tid)
                prediction = self.learner.predict(update, row)
                if not self._decision_allowed(update, prediction):
                    continue
                self.manager.apply_feedback(
                    update, UserFeedback(prediction.feedback), source="learner"
                )
                report.learner_decided += 1
                if on_learner_decision is not None:
                    on_learner_decision()
            return

        def applied() -> None:
            report.learner_decided += 1
            if on_learner_decision is not None:
                on_learner_decision()

        decide_batched(
            self.db,
            self.learner,
            self.state,
            self.manager,
            alive,
            self._decision_allowed,
            applied,
        )

    def _decision_allowed(self, update: CandidateUpdate, prediction) -> bool:
        return delegation_allowed(self.learner, self.max_decision_uncertainty, update, prediction)
