"""One interactive active-learning session over a group (paper §4.2).

The user picked a group ``c``. The session then alternates:

1. order the group's live updates — by committee uncertainty (GDR) or
   randomly (GDR-S-Learning / no-learning);
2. the user labels the next batch of ``n_s`` updates; each label is
   routed through the consistency manager immediately and added to the
   learner's training set;
3. the learner is retrained and the remaining updates reordered.

When the user's per-group quota (or the global budget) is exhausted the
learner takes over and decides the group's remaining updates — the
paper's "user delegates the remaining decisions to the learned model".
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.effort import FeedbackBudget
from repro.core.grouping import UpdateGroup
from repro.core.learner import FeedbackLearner
from repro.core.user import UserOracle
from repro.db.database import Database
from repro.repair.candidate import CandidateUpdate
from repro.repair.consistency import ConsistencyManager
from repro.repair.feedback import Feedback, UserFeedback
from repro.repair.state import RepairState

__all__ = ["InteractiveSession", "SessionReport"]

ProgressCallback = Callable[[], None]


@dataclass(slots=True)
class SessionReport:
    """What happened during one group session.

    Attributes
    ----------
    group_key:
        The inspected group's ``(attribute, value)`` key.
    labeled:
        User labels consumed.
    learner_decided:
        Updates decided by the learner after delegation.
    user_confirms / user_rejects / user_retains:
        Breakdown of the user labels.
    """

    group_key: tuple[str, object]
    labeled: int = 0
    learner_decided: int = 0
    user_confirms: int = 0
    user_rejects: int = 0
    user_retains: int = 0


class InteractiveSession:
    """Drives user + learner through one update group.

    Parameters
    ----------
    db, state, manager:
        Shared repair substrate.
    oracle:
        The (simulated) user.
    learner:
        The feedback learner, or ``None`` for the no-learning variants.
    ordering:
        ``"uncertainty"`` (active learning) or ``"random"`` (passive).
    batch_size:
        ``n_s``: labels between retrains.
    seed:
        Seed for the random ordering variant.
    """

    def __init__(
        self,
        db: Database,
        state: RepairState,
        manager: ConsistencyManager,
        oracle: UserOracle,
        learner: FeedbackLearner | None,
        ordering: str = "uncertainty",
        batch_size: int = 10,
        seed: int = 0,
        max_decision_uncertainty: float = 0.5,
    ) -> None:
        if ordering not in ("uncertainty", "random"):
            raise ValueError(f"ordering must be 'uncertainty' or 'random', got {ordering!r}")
        self.db = db
        self.state = state
        self.manager = manager
        self.oracle = oracle
        self.learner = learner
        self.ordering = ordering
        self.batch_size = batch_size
        self.max_decision_uncertainty = max_decision_uncertainty
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def run(
        self,
        group: UpdateGroup,
        quota: int,
        budget: FeedbackBudget,
        on_feedback: ProgressCallback | None = None,
        on_learner_decision: ProgressCallback | None = None,
    ) -> SessionReport:
        """Consume one group: user labels up to *quota*, learner finishes.

        Parameters
        ----------
        group:
            The group chosen from the top of the ranking.
        quota:
            Maximum user labels to spend on this group (``d_i``).
        budget:
            Global feedback budget shared across sessions.
        on_feedback / on_learner_decision:
            Optional hooks fired after each decision (used for
            trajectory recording).
        """
        report = SessionReport(group_key=group.key)
        while report.labeled < quota and not budget.exhausted:
            alive = self._alive_updates(group)
            if not alive:
                break
            ordered = self._order(alive)
            room = quota - report.labeled
            if budget.remaining is not None:
                room = min(room, budget.remaining)
            room = min(self.batch_size, room)
            if (
                self.ordering == "uncertainty"
                and self.learner is not None
                and room >= 2
                and len(ordered) > room
            ):
                # verification probe: spend one label on the model's
                # most CONFIDENT prediction. The user sees predictions
                # alongside the updates (§4.2) and inherently corrects
                # confident mistakes — without this, the accuracy the
                # user observes is biased toward the uncertain region
                # and never validates where delegation will act.
                batch = ordered[: room - 1] + [ordered[-1]]
            else:
                batch = ordered[:room]
            if not batch:
                break
            for update in batch:
                if not self.state.contains(update):
                    continue  # invalidated by an earlier apply in this batch
                self._label_one(update, report)
                budget.consume()
                if on_feedback is not None:
                    on_feedback()
            if self.learner is not None:
                if group.attribute == "*":
                    self.learner.retrain_all()
                else:
                    self.learner.retrain(group.attribute)
        if self.learner is not None:
            self._delegate(group, report, on_learner_decision)
        return report

    # ------------------------------------------------------------------
    def _alive_updates(self, group: UpdateGroup) -> list[CandidateUpdate]:
        return [u for u in group.updates if self.state.contains(u)]

    def _order(self, updates: list[CandidateUpdate]) -> list[CandidateUpdate]:
        if self.ordering == "random" or self.learner is None:
            order = self._rng.permutation(len(updates))
            return [updates[int(i)] for i in order]
        # Uncertainty first; ties (e.g. a cold model answering 1.0 for
        # everything) break toward high repair scores so early labels
        # land on probable genuine fixes rather than arbitrary cells.
        # No writes happen while ordering, so predictions batch safely.
        rows = [self.db.values_snapshot(update.tid) for update in updates]
        predictions = self.learner.predict_many(updates, rows)
        scored = [
            (-prediction.uncertainty, -update.score, update.cell, update)
            for update, prediction in zip(updates, predictions)
        ]
        scored.sort(key=lambda item: (item[0], item[1], item[2]))
        return [update for __, __, __, update in scored]

    def _label_one(self, update: CandidateUpdate, report: SessionReport) -> None:
        current = self.db.value(update.tid, update.attribute)
        row_snapshot = self.db.values_snapshot(update.tid)
        prediction = None
        if self.learner is not None:
            prediction = self.learner.predict(update, row_snapshot)
        feedback = self.oracle.review(update, current)
        if prediction is not None and prediction.is_decision:
            # the user inherently corrects the learner's mistakes; the
            # running agreement record is what decides delegation
            self.learner.record_validation(
                update.attribute, prediction.feedback is feedback.kind
            )
        report.labeled += 1
        if feedback.kind is Feedback.CONFIRM:
            report.user_confirms += 1
        elif feedback.kind is Feedback.REJECT:
            report.user_rejects += 1
        else:
            report.user_retains += 1
        if self.learner is not None:
            self.learner.add_example(update, row_snapshot, feedback.kind)
            if feedback.kind is Feedback.REJECT and feedback.has_correction:
                corrected = CandidateUpdate(
                    update.tid, update.attribute, feedback.correction, 1.0
                )
                self.learner.add_example(corrected, row_snapshot, Feedback.CONFIRM)
        self.manager.apply_feedback(update, feedback, source="user")

    def _delegate(
        self,
        group: UpdateGroup,
        report: SessionReport,
        on_learner_decision: ProgressCallback | None,
    ) -> None:
        """Let the learner decide the group's remaining updates.

        A decision requires a committee prediction with uncertainty at
        most ``max_decision_uncertainty``; a *confirm* decision (the
        only one that writes the database) additionally requires a
        *trusted* model — the user has recently checked the model's
        predictions and found them accurate (paper §4.2: the user
        decides whether the classifiers are accurate). Retain/reject
        decisions are reversible bookkeeping and may proceed on
        confidence alone. Everything else stays in the pool for later
        rounds or further user feedback.
        """
        for update in self._alive_updates(group):
            if not self.state.contains(update):
                continue
            row = self.db.values_snapshot(update.tid)
            prediction = self.learner.predict(update, row)
            if not prediction.is_decision:
                continue
            if prediction.uncertainty > self.max_decision_uncertainty:
                continue
            if prediction.feedback is Feedback.CONFIRM and not self.learner.is_trusted(
                update.attribute
            ):
                continue
            self.manager.apply_feedback(
                update, UserFeedback(prediction.feedback), source="learner"
            )
            report.learner_decided += 1
            if on_learner_decision is not None:
                on_learner_decision()
