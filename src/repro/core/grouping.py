"""Grouping of candidate updates for batch inspection (paper §3).

GDR groups suggested updates that share contextual information so the
user can sweep through them quickly and so the learner receives
correlated training examples. The paper's grouping function puts
together all updates proposing the *same value* for the *same
attribute* — e.g. "every tuple where 'Michigan City' is suggested for
CT".

Two implementations coexist:

* :func:`group_updates` rebuilds the partition from scratch — the
  reference path, still used by the rebuild pipeline and by parity
  checks;
* :class:`GroupIndex` maintains the partition *incrementally* from
  :class:`~repro.repair.state.RepairState` mutation events, so the
  interactive loop re-groups in O(changed suggestions) instead of
  O(pool). :meth:`GroupIndex.verify` cross-checks the index against a
  fresh rebuild, mirroring ``ViolationDetector.verify``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.repair.candidate import CandidateUpdate
from repro.repair.state import EventKind, RepairState, StateEvent

__all__ = ["GroupIndex", "UpdateGroup", "group_sort_key", "group_updates"]

#: Pseudo-key used when grouping is disabled (plain active learning).
UNGROUPED_KEY: tuple[str, object] = ("*", "*")

GroupKey = tuple[str, object]


def group_sort_key(key: GroupKey) -> tuple[str, str, str, str]:
    """Deterministic total order over group keys, mixed types included.

    The historical sort key ``(attribute, str(value))`` collides for
    values of different types sharing a string form (``1`` vs ``"1"``,
    ``1.0``), leaving their relative order to dict insertion order —
    i.e. nondeterministic across runs. The type name and ``repr`` break
    such ties in a type-aware, stable way.
    """
    attribute, value = key
    return (attribute, str(value), type(value).__name__, repr(value))


@dataclass(slots=True)
class UpdateGroup:
    """A batch of updates sharing one ``(attribute, value)`` key.

    Attributes
    ----------
    key:
        The shared ``(attribute, suggested value)`` pair.
    updates:
        Member updates, ordered by ``(tid, attribute)``.
    """

    key: tuple[str, object]
    updates: list[CandidateUpdate] = field(default_factory=list)

    @property
    def attribute(self) -> str:
        """The attribute all member updates target."""
        return self.key[0]

    @property
    def value(self) -> object:
        """The value all member updates suggest."""
        return self.key[1]

    @property
    def size(self) -> int:
        """Number of member updates."""
        return len(self.updates)

    def mean_score(self) -> float:
        """Average update-evaluation score of the members."""
        if not self.updates:
            return 0.0
        return sum(u.score for u in self.updates) / len(self.updates)

    def describe(self) -> str:
        """Human-readable one-liner for display."""
        return f"{self.attribute} -> {self.value!r} ({self.size} updates)"


def group_updates(
    updates: Iterable[CandidateUpdate],
    grouping: bool = True,
) -> list[UpdateGroup]:
    """Partition updates into groups by ``(attribute, value)``.

    Parameters
    ----------
    updates:
        The live candidate updates.
    grouping:
        When False everything lands in a single pseudo-group — this is
        how the *Active-Learning* baseline of §5.2 (no grouping, no
        VOI) is expressed.

    Returns
    -------
    list[UpdateGroup]
        Groups sorted by key for determinism; members sorted by cell.

    Examples
    --------
    >>> from repro.repair import CandidateUpdate
    >>> groups = group_updates([
    ...     CandidateUpdate(1, "city", "Michigan City", 0.5),
    ...     CandidateUpdate(2, "city", "Michigan City", 0.7),
    ...     CandidateUpdate(1, "zip", "46825", 0.9),
    ... ])
    >>> [(g.key, g.size) for g in groups]
    [(('city', 'Michigan City'), 2), (('zip', '46825'), 1)]
    """
    buckets: dict[tuple[str, object], list[CandidateUpdate]] = {}
    for update in updates:
        key = update.group_key if grouping else UNGROUPED_KEY
        buckets.setdefault(key, []).append(update)
    groups = []
    for key in sorted(buckets, key=group_sort_key):
        members = sorted(buckets[key], key=lambda u: u.cell)
        groups.append(UpdateGroup(key, members))
    return groups


class GroupIndex:
    """Incrementally maintained ``(attribute, value)`` partition.

    Subscribes to the repair state's mutation events and keeps, per
    group key: the member updates (by cell), their count, and their
    score sum — so sizes and mean scores are O(1) and the materialised
    :class:`UpdateGroup` (members sorted by cell) is rebuilt only for
    groups whose membership actually changed.

    Parameters
    ----------
    state:
        The repair state to index; the index attaches itself as a
        listener and seeds from the current pool.
    grouping:
        When False every update lands in the single pseudo-group, as
        in :func:`group_updates`.

    Notes
    -----
    Downstream consumers (the cached VOI ranking) can register a
    *dirty-key cursor* via :meth:`dirty_cursor` /
    :meth:`poll_dirty_keys` to learn which groups' membership moved
    since their last poll.
    """

    def __init__(self, state: RepairState, grouping: bool = True) -> None:
        self.state = state
        self.grouping = grouping
        self._members: dict[GroupKey, dict[tuple[int, str], CandidateUpdate]] = {}
        self._score_sum: dict[GroupKey, float] = {}
        # tid -> group keys holding one of the tuple's suggestions
        self._keys_by_tid: dict[int, set[GroupKey]] = {}
        # materialised UpdateGroup cache, per key
        self._built: dict[GroupKey, UpdateGroup] = {}
        # sorted key list cache (invalidated when the key set changes)
        self._sorted_keys: list[GroupKey] | None = None
        # per-key membership version, for staleness stamps
        self._versions: dict[GroupKey, int] = {}
        self._version_counter = 0
        # dirty-key cursors: sets the event handler fans changes into
        self._cursors: list[set[GroupKey]] = []
        state.add_listener(self._on_event)
        self._rebuild()

    # ------------------------------------------------------------------
    # event maintenance
    # ------------------------------------------------------------------
    def _key_of(self, update: CandidateUpdate) -> GroupKey:
        return update.group_key if self.grouping else UNGROUPED_KEY

    def _mark(self, key: GroupKey) -> None:
        self._version_counter += 1
        self._versions[key] = self._version_counter
        self._built.pop(key, None)
        for cursor in self._cursors:
            cursor.add(key)

    def _on_event(self, event: StateEvent) -> None:
        kind = event.kind
        if kind is EventKind.ADDED:
            update = event.update
            key = self._key_of(update)
            bucket = self._members.get(key)
            if bucket is None:
                bucket = self._members[key] = {}
                self._score_sum[key] = 0.0
                self._sorted_keys = None
            previous = bucket.get(event.cell)
            if previous is not None:
                # same-cell re-put within the same group (identical
                # update object re-emitted): refresh score bookkeeping
                self._score_sum[key] -= previous.score
            bucket[event.cell] = update
            self._score_sum[key] += update.score
            self._keys_by_tid.setdefault(event.cell[0], set()).add(key)
            self._mark(key)
        elif kind is EventKind.REMOVED:
            update = event.update
            key = self._key_of(update)
            bucket = self._members.get(key)
            if bucket is None or bucket.get(event.cell) != update:
                return  # already superseded (defensive)
            del bucket[event.cell]
            self._score_sum[key] -= update.score
            self._mark(key)
            tid = event.cell[0]
            # with grouping on, a group holds at most one cell per tid
            # (all members share the attribute); only the ungrouped
            # pseudo-group can hold several
            if self.grouping or not any(cell[0] == tid for cell in bucket):
                keys = self._keys_by_tid.get(tid)
                if keys is not None:
                    keys.discard(key)
                    if not keys:
                        del self._keys_by_tid[tid]
            if not bucket:
                del self._members[key]
                del self._score_sum[key]
                del self._versions[key]
                self._sorted_keys = None
        elif kind is EventKind.CLEARED:
            self._rebuild()
        # FROZEN carries no membership information beyond the REMOVED
        # event the freeze already emitted

    def _rebuild(self) -> None:
        """Re-seed the index from the state's current pool."""
        for cursor in self._cursors:
            cursor.update(self._members)  # old keys are all dirty now
        self._members = {}
        self._score_sum = {}
        self._keys_by_tid = {}
        self._built = {}
        self._sorted_keys = None
        self._versions = {}
        for update in self.state.live_updates():
            key = self._key_of(update)
            bucket = self._members.setdefault(key, {})
            bucket[update.cell] = update
            self._score_sum[key] = self._score_sum.get(key, 0.0) + update.score
            self._keys_by_tid.setdefault(update.tid, set()).add(key)
            self._version_counter += 1
            self._versions[key] = self._version_counter
        for cursor in self._cursors:
            cursor.update(self._members)  # new keys too

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, key: GroupKey) -> bool:
        return key in self._members

    def keys(self) -> list[GroupKey]:
        """All group keys in deterministic (type-aware) sort order."""
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._members, key=group_sort_key)
        return self._sorted_keys

    def size(self, key: GroupKey) -> int:
        """Member count of one group (0 when absent)."""
        bucket = self._members.get(key)
        return len(bucket) if bucket is not None else 0

    def mean_score(self, key: GroupKey) -> float:
        """Average member score of one group (0.0 when absent)."""
        bucket = self._members.get(key)
        if not bucket:
            return 0.0
        return self._score_sum[key] / len(bucket)

    def version(self, key: GroupKey) -> int:
        """Monotonic membership version of one group (0 when absent)."""
        return self._versions.get(key, 0)

    def keys_for_tid(self, tid: int) -> frozenset[GroupKey]:
        """Groups currently holding a suggestion on tuple *tid*."""
        keys = self._keys_by_tid.get(tid)
        return frozenset(keys) if keys else frozenset()

    def group(self, key: GroupKey) -> UpdateGroup | None:
        """The materialised group for *key* (members sorted by cell).

        Materialisation is cached and only recomputed after the
        group's membership changed.
        """
        bucket = self._members.get(key)
        if bucket is None:
            return None
        built = self._built.get(key)
        if built is None:
            members = [bucket[cell] for cell in sorted(bucket)]
            built = self._built[key] = UpdateGroup(key, members)
        return built

    def groups(self) -> list[UpdateGroup]:
        """All groups, sorted exactly like :func:`group_updates`."""
        return [self.group(key) for key in self.keys()]

    # ------------------------------------------------------------------
    # dirty-key cursors
    # ------------------------------------------------------------------
    def dirty_cursor(self) -> int:
        """Register a dirty-key cursor; returns its handle."""
        self._cursors.append(set(self._members))  # everything starts dirty
        return len(self._cursors) - 1

    def poll_dirty_keys(self, cursor: int) -> set[GroupKey]:
        """Keys whose membership changed since the cursor's last poll.

        May include keys that no longer exist (their groups emptied);
        consumers should treat those as deletions.
        """
        dirty = self._cursors[cursor]
        self._cursors[cursor] = set()
        return dirty

    def rebuild(self) -> None:
        """Discard the index and re-seed it from the live pool.

        The recovery action when :meth:`verify` reports divergence:
        afterwards the index is exactly what :func:`group_updates`
        would build, and every dirty-key cursor sees all keys dirty.
        """
        self._rebuild()

    # ------------------------------------------------------------------
    def verify(self) -> bool:
        """Cross-check the index against a rebuild from scratch.

        Compares keys, member lists (content and order), sizes, score
        sums and the tid reverse index against
        :func:`group_updates` over the live state. Intended for tests.
        """
        reference = group_updates(self.state.updates(), grouping=self.grouping)
        if [g.key for g in reference] != self.keys():
            return False
        for ref in reference:
            mine = self.group(ref.key)
            if mine is None or mine.updates != ref.updates:
                return False
            if self.size(ref.key) != ref.size:
                return False
            if abs(self._score_sum[ref.key] - sum(u.score for u in ref.updates)) > 1e-9:
                return False
        tids: dict[int, set[GroupKey]] = {}
        for ref in reference:
            for update in ref.updates:
                tids.setdefault(update.tid, set()).add(ref.key)
        return tids == self._keys_by_tid

    def detach(self) -> None:
        """Stop listening to state events."""
        self.state.remove_listener(self._on_event)

    def __repr__(self) -> str:
        return f"GroupIndex({len(self._members)} groups, grouping={self.grouping})"
