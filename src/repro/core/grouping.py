"""Grouping of candidate updates for batch inspection (paper §3).

GDR groups suggested updates that share contextual information so the
user can sweep through them quickly and so the learner receives
correlated training examples. The paper's grouping function puts
together all updates proposing the *same value* for the *same
attribute* — e.g. "every tuple where 'Michigan City' is suggested for
CT".
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.repair.candidate import CandidateUpdate

__all__ = ["UpdateGroup", "group_updates"]

#: Pseudo-key used when grouping is disabled (plain active learning).
UNGROUPED_KEY: tuple[str, object] = ("*", "*")


@dataclass(slots=True)
class UpdateGroup:
    """A batch of updates sharing one ``(attribute, value)`` key.

    Attributes
    ----------
    key:
        The shared ``(attribute, suggested value)`` pair.
    updates:
        Member updates, ordered by ``(tid, attribute)``.
    """

    key: tuple[str, object]
    updates: list[CandidateUpdate] = field(default_factory=list)

    @property
    def attribute(self) -> str:
        """The attribute all member updates target."""
        return self.key[0]

    @property
    def value(self) -> object:
        """The value all member updates suggest."""
        return self.key[1]

    @property
    def size(self) -> int:
        """Number of member updates."""
        return len(self.updates)

    def mean_score(self) -> float:
        """Average update-evaluation score of the members."""
        if not self.updates:
            return 0.0
        return sum(u.score for u in self.updates) / len(self.updates)

    def describe(self) -> str:
        """Human-readable one-liner for display."""
        return f"{self.attribute} -> {self.value!r} ({self.size} updates)"


def group_updates(
    updates: Iterable[CandidateUpdate],
    grouping: bool = True,
) -> list[UpdateGroup]:
    """Partition updates into groups by ``(attribute, value)``.

    Parameters
    ----------
    updates:
        The live candidate updates.
    grouping:
        When False everything lands in a single pseudo-group — this is
        how the *Active-Learning* baseline of §5.2 (no grouping, no
        VOI) is expressed.

    Returns
    -------
    list[UpdateGroup]
        Groups sorted by key for determinism; members sorted by cell.

    Examples
    --------
    >>> from repro.repair import CandidateUpdate
    >>> groups = group_updates([
    ...     CandidateUpdate(1, "city", "Michigan City", 0.5),
    ...     CandidateUpdate(2, "city", "Michigan City", 0.7),
    ...     CandidateUpdate(1, "zip", "46825", 0.9),
    ... ])
    >>> [(g.key, g.size) for g in groups]
    [(('city', 'Michigan City'), 2), (('zip', '46825'), 1)]
    """
    buckets: dict[tuple[str, object], list[CandidateUpdate]] = {}
    for update in updates:
        key = update.group_key if grouping else UNGROUPED_KEY
        buckets.setdefault(key, []).append(update)
    groups = []
    for key in sorted(buckets, key=lambda k: (k[0], str(k[1]))):
        members = sorted(buckets[key], key=lambda u: u.cell)
        groups.append(UpdateGroup(key, members))
    return groups
