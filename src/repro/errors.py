"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base class at API
boundaries while still being able to discriminate precise failure
modes when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A relation schema is malformed (duplicate or empty attributes)."""


class UnknownAttributeError(SchemaError, KeyError):
    """An attribute name was referenced that is not part of the schema."""

    def __init__(self, attribute: str, schema_name: str = "") -> None:
        self.attribute = attribute
        self.schema_name = schema_name
        where = f" in relation {schema_name!r}" if schema_name else ""
        super().__init__(f"unknown attribute {attribute!r}{where}")


class UnknownTupleError(ReproError, KeyError):
    """A tuple id was referenced that does not exist in the database."""

    def __init__(self, tid: int) -> None:
        self.tid = tid
        super().__init__(f"unknown tuple id {tid}")


class RuleError(ReproError):
    """A CFD rule is structurally invalid."""


class RuleParseError(RuleError):
    """The textual CFD notation could not be parsed."""

    def __init__(self, text: str, reason: str) -> None:
        self.text = text
        self.reason = reason
        super().__init__(f"cannot parse CFD {text!r}: {reason}")


class RepairError(ReproError):
    """The repair machinery was used inconsistently."""


class NotFittedError(ReproError):
    """A model was asked to predict before :meth:`fit` was called."""


class ConfigError(ReproError):
    """An engine or experiment was configured with invalid parameters."""


class DatasetError(ConfigError):
    """A benchmark dataset could not be generated or loaded.

    Carries the dataset name (or file path) and, when known, the
    offending parameter/column so callers see *where* the problem is
    instead of a raw ``KeyError``/``TypeError``/``FileNotFoundError``.
    """

    def __init__(self, dataset: str, reason: str, field: str | None = None) -> None:
        self.dataset = dataset
        self.field = field
        where = f" (field {field!r})" if field else ""
        super().__init__(f"dataset {dataset!r}{where}: {reason}")


class JournalError(ReproError):
    """The write-ahead feedback journal could not be written or read."""


class JournalReplayError(JournalError):
    """A journal record does not match the instance it is replayed onto.

    Raised when a write record's expected pre-image disagrees with the
    current cell value — the journal belongs to a different database
    version — or when a replayed feedback record targets a suggestion
    the resumed session never produced.
    """


class IntegrityError(ReproError):
    """The invariant guard exhausted its incident budget.

    Graceful degradation recovered individual components, but
    divergences kept appearing; the session is no longer trustworthy
    and hard failure is the only safe answer.
    """
