"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``check``     detect violations in a CSV against a rule file
``clean``     repair a CSV automatically (batch heuristic)
``guided``    repair a CSV interactively (terminal prompts)
``discover``  mine CFDs from a CSV and write a rule file
``explain``   print violation explanations for specific tuples

Example session::

    python -m repro discover dirty.csv --output rules.txt --support 0.05
    python -m repro check dirty.csv rules.txt
    python -m repro clean dirty.csv rules.txt --output repaired.csv
    python -m repro guided dirty.csv rules.txt --output repaired.csv
"""

from __future__ import annotations

import argparse
import sys

from repro.constraints import (
    RuleSet,
    ViolationDetector,
    discover_rules,
    format_cfd,
)
from repro.constraints.explain import explain_tuple
from repro.constraints.parser import load_rules, save_rules
from repro.core import CallbackOracle, GDRConfig, GDREngine
from repro.db.io import load_csv, save_csv
from repro.repair import UserFeedback, batch_repair

__all__ = ["main"]


def _load(csv_path: str, rules_path: str):
    db = load_csv(csv_path)
    rules = RuleSet(load_rules(rules_path), schema=db.schema)
    return db, rules


def _cmd_check(args: argparse.Namespace) -> int:
    db, rules = _load(args.csv, args.rules)
    detector = ViolationDetector(db, rules)
    dirty = detector.dirty_tuples_ordered()
    print(f"{len(db)} tuples, {len(rules)} rules, {len(dirty)} dirty tuples, "
          f"vio(D, Sigma) = {detector.vio_total()}")
    for tid in dirty[: args.limit]:
        print(explain_tuple(detector, tid).describe())
    if len(dirty) > args.limit:
        print(f"... and {len(dirty) - args.limit} more (raise --limit to see them)")
    return 0 if not dirty else 1


def _cmd_clean(args: argparse.Namespace) -> int:
    db, rules = _load(args.csv, args.rules)
    result = batch_repair(db, rules)
    print(
        f"heuristic repair: {len(result.changed_cells)} cells changed in "
        f"{result.passes} passes; {result.remaining_violations} violations remain"
    )
    save_csv(db, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_guided(args: argparse.Namespace) -> int:
    db, rules = _load(args.csv, args.rules)

    def prompt(update, current):
        row = db.row(update.tid)
        print(f"\ntuple t{update.tid}: {row.as_dict()}")
        print(f"suggestion: {update.attribute} = {update.value!r} "
              f"(currently {current!r}, score {update.score:.2f})")
        while True:
            answer = input("[c]onfirm / [r]eject / [k]eep current / value: ").strip()
            if answer in ("c", "confirm"):
                return UserFeedback.confirm()
            if answer in ("r", "reject"):
                return UserFeedback.reject()
            if answer in ("k", "keep", "retain"):
                return UserFeedback.retain()
            if answer:
                return UserFeedback.reject(correction=answer)

    engine = GDREngine(db, rules, CallbackOracle(prompt), config=GDRConfig.gdr())
    result = engine.run(feedback_limit=args.budget)
    print(
        f"\ndone: {result.feedback_used} answers, "
        f"{result.learner_decisions} learner decisions, "
        f"{result.remaining_dirty} tuples still dirty"
    )
    save_csv(db, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    db = load_csv(args.csv)
    rules = discover_rules(
        db,
        support=args.support,
        confidence=args.confidence,
        max_lhs=args.max_lhs,
    )
    for rule in rules:
        print(format_cfd(rule))
    if args.output:
        save_rules(rules, args.output)
        print(f"wrote {len(rules)} rules to {args.output}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    db, rules = _load(args.csv, args.rules)
    detector = ViolationDetector(db, rules)
    for tid in args.tids:
        print(explain_tuple(detector, tid).describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="detect violations")
    check.add_argument("csv")
    check.add_argument("rules")
    check.add_argument("--limit", type=int, default=10, help="explanations to print")
    check.set_defaults(fn=_cmd_check)

    clean = commands.add_parser("clean", help="automatic heuristic repair")
    clean.add_argument("csv")
    clean.add_argument("rules")
    clean.add_argument("--output", required=True)
    clean.set_defaults(fn=_cmd_clean)

    guided = commands.add_parser("guided", help="interactive guided repair")
    guided.add_argument("csv")
    guided.add_argument("rules")
    guided.add_argument("--output", required=True)
    guided.add_argument("--budget", type=int, default=None, help="max answers")
    guided.set_defaults(fn=_cmd_guided)

    discover = commands.add_parser("discover", help="mine CFDs from data")
    discover.add_argument("csv")
    discover.add_argument("--output", default=None)
    discover.add_argument("--support", type=float, default=0.05)
    discover.add_argument("--confidence", type=float, default=0.92)
    discover.add_argument("--max-lhs", type=int, default=1, dest="max_lhs")
    discover.set_defaults(fn=_cmd_discover)

    explain = commands.add_parser("explain", help="explain specific tuples")
    explain.add_argument("csv")
    explain.add_argument("rules")
    explain.add_argument("tids", type=int, nargs="+")
    explain.set_defaults(fn=_cmd_explain)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
