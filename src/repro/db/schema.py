"""Relation schemas for the in-memory relational substrate.

The paper operates on a single relation at a time (CFDs are
single-relation constraints); a :class:`Schema` is therefore an ordered,
named collection of attribute names with fast position lookup.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import SchemaError, UnknownAttributeError

__all__ = ["Schema"]


class Schema:
    """An ordered set of attribute names for one relation.

    Parameters
    ----------
    name:
        Relation name, e.g. ``"customer"``.
    attributes:
        Ordered attribute names. Must be non-empty and free of
        duplicates.

    Examples
    --------
    >>> schema = Schema("customer", ["name", "city", "zip"])
    >>> schema.position("city")
    1
    >>> "zip" in schema
    True
    """

    __slots__ = ("name", "attributes", "_positions")

    def __init__(self, name: str, attributes: Sequence[str]) -> None:
        attrs = tuple(attributes)
        if not name:
            raise SchemaError("relation name must be non-empty")
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        seen: set[str] = set()
        for attr in attrs:
            if not attr:
                raise SchemaError(f"relation {name!r} has an empty attribute name")
            if attr in seen:
                raise SchemaError(f"relation {name!r} has duplicate attribute {attr!r}")
            seen.add(attr)
        self.name = name
        self.attributes = attrs
        self._positions = {attr: i for i, attr in enumerate(attrs)}

    def position(self, attribute: str) -> int:
        """Return the 0-based column position of *attribute*."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise UnknownAttributeError(attribute, self.name) from None

    def positions(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """Return column positions for several attributes at once."""
        return tuple(self.position(a) for a in attributes)

    def validate_attributes(self, attributes: Iterable[str]) -> None:
        """Raise :class:`UnknownAttributeError` for any foreign attribute."""
        for attr in attributes:
            self.position(attr)

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._positions

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, {list(self.attributes)!r})"
