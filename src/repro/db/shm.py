"""Shared-memory backing for :class:`ColumnStore` code matrices.

The sharded violation engine (``core/parallel.py``) runs detector
builds and what-if probes in worker processes. Workers never receive
the code matrix by value: :func:`share_column_store` moves a store's
``int32`` code matrix and ``int64`` tid array into one
:mod:`multiprocessing.shared_memory` segment, and workers map the same
physical pages read-only by name — coordinator writes through
``set_cell``/``append``/``remove`` are visible to every worker without
any serialization.

Growth keeps zero-copy semantics via *copy-on-grow*: the arena installs
itself as the store's ``_reallocator``, so when the store doubles its
capacity the new arrays land in a **new** shared segment (a new
*generation*). Old generations cannot be unlinked eagerly — a POSIX shm
segment that is unlinked before a worker attaches by name is
unreachable for that worker — so they are *retired* and only unlinked
once the pool reports every worker has acknowledged a message carrying
the replacing generation (see :meth:`SharedMatrixArena.release_retired`).

Worker-side attachment goes through :func:`attach_matrix`, which works
around the ``resource_tracker`` over-tracking wart of Python < 3.13
(attaching by name registers the segment for destruction at worker
exit, which would tear the mapping out from under sibling workers).
"""

from __future__ import annotations

import atexit
from collections.abc import Callable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # type-only: columnar.py stays shm-agnostic at runtime
    from multiprocessing.shared_memory import SharedMemory

    from repro.db.columnar import ColumnStore

import numpy as np

__all__ = ["SharedMatrixArena", "attach_matrix", "share_column_store"]

#: int32 code matrix entries / int64 tids — fixed by ColumnStore.
_MATRIX_DTYPE = np.int32
_TIDS_DTYPE = np.int64


def _segment_layout(ncols: int, capacity: int) -> tuple[int, int]:
    """``(tids byte offset, total bytes)`` for one generation's segment.

    The matrix occupies the head of the segment; the tid array follows
    at the next 8-byte boundary so the ``int64`` view stays aligned.
    """
    matrix_bytes = ncols * capacity * _MATRIX_DTYPE().itemsize
    tids_offset = (matrix_bytes + 7) & ~7
    return tids_offset, tids_offset + capacity * _TIDS_DTYPE().itemsize


def attach_matrix(descriptor: dict) -> tuple[object, np.ndarray, np.ndarray]:
    """Attach to a shared generation by descriptor (worker side).

    Returns ``(shm, matrix, tids)`` where the arrays are zero-copy
    views over the shared pages (full capacity; the coordinator sends
    the live row count separately with each command). The caller owns
    the ``shm`` handle and must keep it alive as long as the views are
    in use.
    """
    from multiprocessing import shared_memory

    name = descriptor["name"]
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        # Attaching registers the segment with the resource tracker,
        # which would unlink it when *this* worker exits and destroy it
        # for the coordinator and sibling workers. Suppress the
        # registration; the coordinator's arena owns the lifetime.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    try:
        ncols = descriptor["ncols"]
        capacity = descriptor["capacity"]
        tids_offset, __ = _segment_layout(ncols, capacity)
        matrix = np.ndarray((ncols, capacity), dtype=_MATRIX_DTYPE, buffer=shm.buf)
        tids = np.ndarray(
            (capacity,), dtype=_TIDS_DTYPE, buffer=shm.buf, offset=tids_offset
        )
    except BaseException:
        # a malformed descriptor must not pin the mapping for the life
        # of the worker process (drop any half-built view first: close()
        # raises BufferError while an ndarray still exports the buffer)
        matrix = tids = None  # noqa: F841
        shm.close()
        raise
    return shm, matrix, tids


class SharedMatrixArena:
    """Owns the shared-memory generations backing one :class:`ColumnStore`.

    Construct via :func:`share_column_store`. The arena copies the
    store's current arrays into generation 0 and installs a reallocator
    so every future ``_grow`` allocates generation ``g+1`` in fresh
    shared memory, retiring generation ``g``.
    """

    def __init__(self, store: ColumnStore) -> None:
        self._store = store
        self._shm = None
        self._generation = 0
        # [(replaced_by_generation, shm)] — unlinkable once every worker
        # has acknowledged a command at >= replaced_by_generation.
        self._retired: list[tuple[int, object]] = []
        self._closed = False
        # one stable bound-method object: fresh ``self._reallocate``
        # accesses are never ``is``-identical, and close() must be able
        # to tell whether the store still points at *this* arena
        self._hook = self._reallocate
        ncols = len(store.schema)
        capacity = store._matrix.shape[1]
        matrix, tids = self._allocate(ncols, capacity)
        try:
            matrix[:, : len(store)] = store._matrix[:, : len(store)]
            tids[: len(store)] = store._tids[: len(store)]
            store._matrix = matrix
            store._tids = tids
            store._reallocator = self._hook
        except BaseException:
            # a failed copy must not leak generation 0: it was never
            # handed to the store, so no worker can have attached yet
            self._closed = True
            matrix = tids = None  # noqa: F841
            self._shm.close()
            self._shm.unlink()
            raise
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def _allocate(self, ncols: int, capacity: int) -> tuple[np.ndarray, np.ndarray]:
        from multiprocessing import shared_memory

        tids_offset, nbytes = _segment_layout(ncols, capacity)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        try:
            matrix = np.ndarray((ncols, capacity), dtype=_MATRIX_DTYPE, buffer=shm.buf)
            tids = np.ndarray(
                (capacity,), dtype=_TIDS_DTYPE, buffer=shm.buf, offset=tids_offset
            )
        except BaseException:
            # freshly created and never published: safe to unlink eagerly
            matrix = tids = None  # noqa: F841
            shm.close()
            shm.unlink()
            raise
        if self._shm is not None:
            self._retired.append((self._generation + 1, self._shm))
            self._generation += 1
        self._shm = shm
        self._capacity = capacity
        self._ncols = ncols
        return matrix, tids

    def _reallocate(self, ncols: int, capacity: int) -> tuple[np.ndarray, np.ndarray]:
        """Copy-on-grow hook called by ``ColumnStore._grow``."""
        if self._closed:  # arena torn down; fall back to plain arrays
            return (
                np.empty((ncols, capacity), dtype=_MATRIX_DTYPE),
                np.empty(capacity, dtype=_TIDS_DTYPE),
            )
        return self._allocate(ncols, capacity)

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Current generation; bumps on every copy-on-grow."""
        return self._generation

    def descriptor(self) -> dict:
        """Attachment descriptor for the current generation."""
        return {
            "name": self._shm.name,
            "ncols": self._ncols,
            "capacity": self._capacity,
            "generation": self._generation,
        }

    def retired_count(self) -> int:
        """Generations awaiting worker acknowledgement before unlink."""
        return len(self._retired)

    def release_retired(self, min_acked_generation: int) -> int:
        """Unlink retired generations every worker has moved past.

        A generation replaced by generation ``g`` is reclaimable once
        all workers acknowledged a command at generation >= ``g`` (they
        can never again attach to the old name). Returns the number of
        segments unlinked.
        """
        kept: list[tuple[int, object]] = []
        released = 0
        for replaced_by, shm in self._retired:
            if replaced_by <= min_acked_generation:
                _unlink_quietly(shm)
                released += 1
            else:
                kept.append((replaced_by, shm))
        self._retired = kept
        return released

    def close(self) -> None:
        """Unlink every segment and detach the store (idempotent).

        The store gets private copies of its arrays so it keeps working
        after the shared pages go away; future growth reverts to plain
        ``np.empty``.
        """
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        store = self._store
        if store is not None and store._reallocator is self._hook:
            store._matrix = store._matrix.copy()
            store._tids = store._tids.copy()
            store._reallocator = None
        self._store = None
        for __, shm in self._retired:
            _unlink_quietly(shm)
        self._retired = []
        if self._shm is not None:
            _unlink_quietly(self._shm)
            self._shm = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else f"gen {self._generation}"
        return f"SharedMatrixArena({state}, {len(self._retired)} retired)"


def _unlink_quietly(shm: SharedMemory) -> None:
    """Close + unlink, tolerating live exported views and double unlinks."""
    try:
        shm.close()
    except BufferError:
        # A numpy view over the buffer is still referenced somewhere;
        # the mapping stays until those views are collected, but the
        # name can still be removed below.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def share_column_store(store: ColumnStore) -> SharedMatrixArena:
    """Move *store*'s arrays into shared memory; return the owning arena."""
    if getattr(store, "_reallocator", None) is not None:
        raise RuntimeError("ColumnStore is already shared")
    return SharedMatrixArena(store)


Reallocator = Callable[[int, int], tuple[np.ndarray, np.ndarray]]
