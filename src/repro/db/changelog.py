"""Cell-level change records and an audit log with undo support.

GDR applies updates to a live database; the paper's consistency manager
and our evaluation metrics both need to know exactly which cells changed
and in what order. :class:`ChangeLog` subscribes to a
:class:`~repro.db.database.Database` and records every mutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["CellChange", "ChangeLog"]


@dataclass(frozen=True, slots=True)
class CellChange:
    """One mutation of a single cell.

    Attributes
    ----------
    seq:
        Monotonically increasing sequence number within the log.
    tid:
        Tuple id of the modified row.
    attribute:
        Name of the modified attribute.
    old / new:
        Value before and after the mutation.
    source:
        Free-form provenance tag (``"user"``, ``"learner"``,
        ``"heuristic"``, ...).
    """

    seq: int
    tid: int
    attribute: str
    old: object
    new: object
    source: str

    @property
    def cell(self) -> tuple[int, str]:
        """The ``(tid, attribute)`` pair identifying the mutated cell."""
        return (self.tid, self.attribute)


class ChangeLog:
    """Append-only record of the cell mutations applied to a database.

    The log attaches itself as a listener on construction. Records are
    :class:`CellChange` values in application order.

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> db = Database(Schema("r", ["a"]), [["x"]])
    >>> log = ChangeLog(db)
    >>> db.set_value(0, "a", "y", source="user")
    >>> [c.new for c in log]
    ['y']
    """

    def __init__(self, db: "Database") -> None:
        self._db = db
        self._changes: list[CellChange] = []
        db.add_listener(self._record)

    def _record(self, change: CellChange) -> None:
        self._changes.append(change)

    def __len__(self) -> int:
        return len(self._changes)

    def __iter__(self):
        return iter(self._changes)

    def __getitem__(self, index: int) -> CellChange:
        return self._changes[index]

    @property
    def changes(self) -> tuple[CellChange, ...]:
        """All recorded changes, oldest first."""
        return tuple(self._changes)

    def changed_cells(self) -> set[tuple[int, str]]:
        """Distinct ``(tid, attribute)`` cells touched at least once."""
        return {c.cell for c in self._changes}

    def by_source(self, source: str) -> list[CellChange]:
        """All changes whose provenance tag equals *source*."""
        return [c for c in self._changes if c.source == source]

    def net_effect(self) -> dict[tuple[int, str], tuple[object, object]]:
        """Map each touched cell to its ``(first old, last new)`` values.

        Cells whose final value equals their original value (changed and
        then reverted) are excluded.
        """
        first_old: dict[tuple[int, str], object] = {}
        last_new: dict[tuple[int, str], object] = {}
        for change in self._changes:
            first_old.setdefault(change.cell, change.old)
            last_new[change.cell] = change.new
        return {
            cell: (first_old[cell], last_new[cell])
            for cell in first_old
            if first_old[cell] != last_new[cell]
        }

    def undo_last(self, count: int = 1) -> int:
        """Revert the last *count* changes on the attached database.

        The reverting writes are themselves suppressed from the log so
        undo leaves the log consistent with the database content.
        Returns the number of changes actually undone.
        """
        undone = 0
        while undone < count and self._changes:
            change = self._changes.pop()
            self._db.remove_listener(self._record)
            try:
                self._db.set_value(change.tid, change.attribute, change.old, source="undo")
            finally:
                self._db.add_listener(self._record)
            undone += 1
        return undone

    def clear(self) -> None:
        """Drop all recorded changes (the database is left untouched)."""
        self._changes.clear()

    def detach(self) -> None:
        """Stop recording changes from the attached database."""
        self._db.remove_listener(self._record)
