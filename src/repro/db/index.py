"""Self-maintaining equality (hash) indexes over database attributes.

The update generator and the violation detector repeatedly need "all
tuples whose attributes ``X`` equal these values" — the relational
equivalent of a hash index on ``X``. :class:`HashIndex` subscribes to
the database's cell listeners and stays consistent under updates.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.db.changelog import CellChange
from repro.db.database import Database

__all__ = ["HashIndex"]


class HashIndex:
    """Equality index on one or more attributes of a database.

    Parameters
    ----------
    db:
        The database to index. The index registers itself as a
        listener and tracks subsequent updates automatically.
    attributes:
        Attribute names forming the index key, in key order.

    Notes
    -----
    Deletions are not tracked automatically (the GDR pipeline never
    deletes tuples); call :meth:`refresh` if tuples were removed.

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> db = Database(Schema("r", ["a", "b"]), [["x", 1], ["x", 2]])
    >>> idx = HashIndex(db, ["a"])
    >>> sorted(idx.lookup(("x",)))
    [0, 1]
    """

    def __init__(self, db: Database, attributes: Sequence[str]) -> None:
        db.schema.validate_attributes(attributes)
        self._db = db
        self.attributes = tuple(attributes)
        self._attr_set = set(attributes)
        self._positions = db.schema.positions(attributes)
        self._buckets: dict[tuple[object, ...], set[int]] = defaultdict(set)
        self._keys: dict[int, tuple[object, ...]] = {}
        self.refresh()
        db.add_listener(self._on_change)

    # ------------------------------------------------------------------
    def _key_for(self, tid: int) -> tuple[object, ...]:
        values = self._db.values_snapshot(tid)
        return tuple(values[p] for p in self._positions)

    def refresh(self) -> None:
        """Rebuild the index from scratch from the current database."""
        self._buckets.clear()
        self._keys.clear()
        for tid in self._db.tids():
            key = self._key_for(tid)
            self._buckets[key].add(tid)
            self._keys[tid] = key

    def _on_change(self, change: CellChange) -> None:
        if change.attribute not in self._attr_set:
            return
        tid = change.tid
        old_key = self._keys.get(tid)
        if old_key is not None:
            bucket = self._buckets.get(old_key)
            if bucket is not None:
                bucket.discard(tid)
                if not bucket:
                    del self._buckets[old_key]
        new_key = self._key_for(tid)
        self._buckets[new_key].add(tid)
        self._keys[tid] = new_key

    # ------------------------------------------------------------------
    def lookup(self, key: Sequence[object]) -> set[int]:
        """Tuple ids whose indexed attributes equal *key* (a copy)."""
        return set(self._buckets.get(tuple(key), ()))

    def lookup_row(self, tid: int) -> set[int]:
        """Tuple ids sharing tuple *tid*'s key (including *tid* itself)."""
        return self.lookup(self._key_for(tid))

    def keys(self) -> list[tuple[object, ...]]:
        """All distinct keys currently present."""
        return list(self._buckets)

    def bucket_sizes(self) -> dict[tuple[object, ...], int]:
        """Map each key to the number of tuples carrying it."""
        return {key: len(tids) for key, tids in self._buckets.items()}

    def detach(self) -> None:
        """Stop tracking database updates."""
        self._db.remove_listener(self._on_change)

    def __len__(self) -> int:
        return len(self._buckets)
