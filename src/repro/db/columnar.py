"""Dictionary-encoded columnar mirror of a :class:`Database`.

The paper runs violation statistics as MySQL triggers over B-tree
indexed tables; our Python substrate instead keeps, next to the
row-oriented tuple store, a columnar image of the relation:

* per attribute, an append-only :class:`Vocabulary` assigning a dense
  integer *code* to every distinct value ever stored in that column;
* a NumPy ``int32`` code matrix of shape ``(attributes, capacity)`` —
  each relation column is a contiguous row slice, one slot per live
  tuple (kept dense under deletion by swap-with-last);
* a bidirectional ``tid <-> row position`` mapping.

Equality — the only predicate CFDs need — becomes integer comparison
over contiguous arrays, so context masks, LHS partitions and RHS
histograms vectorize with ``==``/``np.bincount``/``np.unique`` instead
of per-tuple Python loops.

Two dictionary-encoding caveats worth knowing:

* vocabularies are append-only: overwriting the last occurrence of a
  value does **not** retire its code. ``values_at`` therefore decodes
  codes of *live* rows only and never leaks stale values;
* code equality follows Python ``dict`` semantics (``1``, ``1.0`` and
  ``True`` share a code), exactly matching the dict/set bookkeeping of
  the reference violation path.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.db.schema import Schema
from repro.errors import UnknownTupleError

__all__ = ["ColumnStore", "Vocabulary"]

#: Initial per-column capacity (arrays double when full).
_MIN_CAPACITY = 16


class Vocabulary:
    """Append-only value → dense-code dictionary for one attribute.

    Examples
    --------
    >>> vocab = Vocabulary()
    >>> vocab.encode("Michigan City"), vocab.encode("Westville")
    (0, 1)
    >>> vocab.encode("Michigan City")
    0
    >>> vocab.decode(1)
    'Westville'
    >>> vocab.code_of("Gary")
    -1
    """

    __slots__ = ("_code_of", "_values")

    def __init__(self) -> None:
        self._code_of: dict[object, int] = {}
        self._values: list[object] = []

    def encode(self, value: object) -> int:
        """The code for *value*, allocating a fresh one when unseen."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._values)
            self._code_of[value] = code
            self._values.append(value)
        return code

    def code_of(self, value: object) -> int:
        """The code for *value*, or ``-1`` when it was never stored."""
        return self._code_of.get(value, -1)

    def decode(self, code: int) -> object:
        """The value carrying *code*."""
        return self._values[code]

    def decode_many(self, codes: Iterable[int]) -> list[object]:
        """Decode a sequence of codes in one pass."""
        values = self._values
        return [values[c] for c in codes]

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: object) -> bool:
        return value in self._code_of

    def __repr__(self) -> str:
        return f"Vocabulary({len(self)} values)"


class ColumnStore:
    """Dictionary-encoded code arrays for every attribute of a relation.

    Parameters
    ----------
    schema:
        The relation schema (fixes the column count and order).
    items:
        Initial ``(tid, values)`` pairs; loaded in ascending tid order
        so freshly built stores enumerate rows deterministically.

    Notes
    -----
    The store is maintained *by* :class:`~repro.db.database.Database`
    (synchronously, before listeners fire), not via listener callbacks:
    consumers reading the columns from inside a listener always see the
    post-write image.
    """

    def __init__(self, schema: Schema, items: Iterable[tuple[int, Sequence[object]]] = ()) -> None:
        self.schema = schema
        ncols = len(schema)
        self._vocabs = [Vocabulary() for _ in range(ncols)]
        # one (ncols, capacity) matrix: each column of the relation is a
        # contiguous row slice, and one tuple's codes gather with a
        # single fancy index down the row-position axis
        self._matrix = np.empty((ncols, _MIN_CAPACITY), dtype=np.int32)
        self._tids = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._pos_of: dict[int, int] = {}
        self._size = 0
        # optional (ncols, capacity) -> (matrix, tids) allocator; the
        # shared-memory arena (db/shm.py) installs one so capacity
        # doubling lands in a fresh shared segment (copy-on-grow)
        self._reallocator = None
        for tid, values in sorted(items):
            self.append(tid, values)

    # ------------------------------------------------------------------
    # maintenance (driven by Database mutations)
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        capacity = max(_MIN_CAPACITY, 2 * self._size)
        ncols = len(self.schema)
        if self._reallocator is not None:
            matrix, tids = self._reallocator(ncols, capacity)
        else:
            matrix = np.empty((ncols, capacity), dtype=np.int32)
            tids = np.empty(capacity, dtype=np.int64)
        matrix[:, : self._size] = self._matrix[:, : self._size]
        self._matrix = matrix
        tids[: self._size] = self._tids[: self._size]
        self._tids = tids

    def append(self, tid: int, values: Sequence[object]) -> None:
        """Encode and store one new tuple."""
        if self._size == self._matrix.shape[1]:
            self._grow()
        row = self._size
        self._tids[row] = tid
        matrix = self._matrix
        for pos, value in enumerate(values):
            matrix[pos, row] = self._vocabs[pos].encode(value)
        self._pos_of[tid] = row
        self._size += 1

    def set_cell(self, tid: int, pos: int, value: object) -> None:
        """Re-encode one cell after a write."""
        self._matrix[pos, self._pos_of[tid]] = self._vocabs[pos].encode(value)

    def remove(self, tid: int) -> None:
        """Drop one tuple, keeping the arrays dense (swap-with-last)."""
        row = self._pos_of.pop(tid)
        last = self._size - 1
        if row != last:
            moved_tid = int(self._tids[last])
            self._tids[row] = moved_tid
            self._matrix[:, row] = self._matrix[:, last]
            self._pos_of[moved_tid] = row
        self._size = last

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def codes(self, pos: int) -> np.ndarray:
        """Code array for column *pos* (a contiguous view over live rows)."""
        return self._matrix[pos, : self._size]

    def gather_row(self, tid: int, positions: np.ndarray) -> np.ndarray:
        """Codes of tuple *tid* at the given column positions (one gather)."""
        return self._matrix[positions, self._pos_of[tid]]

    def code_at(self, row: int, pos: int) -> int:
        """Code at storage row *row*, column *pos* (no tid indirection).

        Callers obtain *row* via :meth:`position_of` once and then read
        several cells of the same tuple cheaply.
        """
        return int(self._matrix[pos, row])

    def tids(self) -> np.ndarray:
        """Tuple ids by row position (a view; order is storage order)."""
        return self._tids[: self._size]

    def vocabulary(self, pos: int) -> Vocabulary:
        """The dictionary of column *pos*."""
        return self._vocabs[pos]

    def code_for(self, pos: int, value: object) -> int:
        """Code of *value* in column *pos*, ``-1`` when never stored."""
        return self._vocabs[pos].code_of(value)

    def position_of(self, tid: int) -> int:
        """Current row position of tuple *tid*."""
        try:
            return self._pos_of[tid]
        except KeyError:
            raise UnknownTupleError(tid) from None

    def __contains__(self, tid: object) -> bool:
        return tid in self._pos_of

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # vectorized predicates
    # ------------------------------------------------------------------
    def match_mask(
        self, items: Iterable[tuple[int, object]], exclude_tid: int | None = None
    ) -> np.ndarray:
        """Boolean row mask for an equality conjunction.

        *items* is an iterable of ``(column position, value)`` pairs; the
        result marks rows agreeing with every pair. A value absent from
        a column's vocabulary short-circuits to the empty mask.
        """
        mask = np.ones(self._size, dtype=bool)
        for pos, value in items:
            code = self._vocabs[pos].code_of(value)
            if code < 0:
                return np.zeros(self._size, dtype=bool)
            mask &= self.codes(pos) == code
        if exclude_tid is not None:
            row = self._pos_of.get(exclude_tid)
            if row is not None:
                mask[row] = False
        return mask

    def match_tids(
        self, items: Iterable[tuple[int, object]], exclude_tid: int | None = None
    ) -> list[int]:
        """Tuple ids satisfying an equality conjunction."""
        return self.tids()[self.match_mask(items, exclude_tid)].tolist()

    def match_mask_codes(self, items: Iterable[tuple[int, int]]) -> np.ndarray:
        """Boolean row mask for an equality conjunction over raw codes.

        Like :meth:`match_mask` but takes pre-encoded codes (e.g. read
        off another row via :meth:`code_at`), skipping vocabulary
        lookups.
        """
        mask = np.ones(self._size, dtype=bool)
        for pos, code in items:
            mask &= self.codes(pos) == code
        return mask

    def codes_at(self, pos: int, mask: np.ndarray) -> np.ndarray:
        """Distinct codes of column *pos* over the masked rows (sorted).

        The code-space companion of :meth:`values_at`: consumers that
        memoise or score in code space (the suggestion engine's witness
        pools) read codes directly and decode only what they keep.
        """
        return np.unique(self.codes(pos)[mask])

    def values_at(self, pos: int, mask: np.ndarray) -> list[object]:
        """Distinct decoded values of column *pos* over the masked rows."""
        return self._vocabs[pos].decode_many(self.codes_at(pos, mask).tolist())

    def __repr__(self) -> str:
        return f"ColumnStore({self.schema.name!r}, {self._size} rows, {len(self.schema)} columns)"
