"""In-memory relational substrate (schema, tuple store, indexes, audit log).

This package replaces the MySQL backend used in the paper with a pure
Python tuple store that supports cell-level updates, listener hooks
(the analogue of database triggers) and equality indexes.
"""

from repro.db.changelog import CellChange, ChangeLog
from repro.db.columnar import ColumnStore, Vocabulary
from repro.db.database import Database, Row
from repro.db.index import HashIndex
from repro.db.io import load_csv, save_csv
from repro.db.journal import FeedbackJournal, ReplayOracle
from repro.db.schema import Schema
from repro.db.snapshot import SnapshotView

__all__ = [
    "CellChange",
    "ChangeLog",
    "ColumnStore",
    "Database",
    "FeedbackJournal",
    "HashIndex",
    "ReplayOracle",
    "Row",
    "Schema",
    "SnapshotView",
    "Vocabulary",
    "load_csv",
    "save_csv",
]
