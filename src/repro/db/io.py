"""CSV import/export for :class:`~repro.db.database.Database`.

Real cleaning sessions start from files; these helpers move tables in
and out of the in-memory substrate. All values are read as strings
(CFD semantics compare values by equality; typed parsing is the
caller's concern).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.db.database import Database
from repro.db.schema import Schema
from repro.errors import DatasetError, SchemaError

__all__ = ["load_csv", "save_csv"]


def load_csv(
    path: str | Path,
    relation_name: str | None = None,
    delimiter: str = ",",
) -> Database:
    """Load a CSV file (header row = attribute names) into a database.

    Parameters
    ----------
    path:
        CSV file location.
    relation_name:
        Relation name for the schema (defaults to the file stem).
    delimiter:
        Field separator.

    Raises
    ------
    DatasetError
        When the file does not exist.
    SchemaError
        On an empty file, duplicate header names, or ragged rows.

    Examples
    --------
    >>> import tempfile, os
    >>> fd, name = tempfile.mkstemp(suffix=".csv"); os.close(fd)
    >>> _ = Path(name).write_text("a,b\\n1,2\\n3,4\\n")
    >>> db = load_csv(name)
    >>> (len(db), db.schema.attributes)
    (2, ('a', 'b'))
    >>> os.unlink(name)
    """
    path = Path(path)
    try:
        handle = path.open(newline="")
    except FileNotFoundError:
        raise DatasetError(str(path), "CSV file does not exist") from None
    with handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty; expected a header row") from None
        name = relation_name if relation_name is not None else path.stem
        schema = Schema(name, [column.strip() for column in header])
        db = Database(schema)
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(schema):
                raise SchemaError(
                    f"{path}:{line_number}: expected {len(schema)} fields, got {len(row)}"
                )
            db.insert(row)
    return db


def save_csv(db: Database, path: str | Path, delimiter: str = ",") -> None:
    """Write a database to CSV (header row + one line per tuple).

    Tuples are written in tid order; values are stringified.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(db.schema.attributes)
        for row in db.rows():
            writer.writerow([str(value) for value in row.values])
