"""In-memory relational instance with cell-level update notifications.

This module is the storage substrate the paper runs on top of MySQL;
here it is a dict-backed tuple store with:

* stable integer tuple ids (``tid``);
* cell-level reads/writes;
* listener hooks fired on every mutation (used by the violation
  detector, consistency manager, hash indexes and change log — the
  equivalent of the paper's database triggers);
* a lazily built, incrementally maintained dictionary-encoded columnar
  mirror (:attr:`Database.columns`) backing the vectorized violation
  engine;
* cheap snapshots for ground-truth comparisons.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence

from repro.db.changelog import CellChange
from repro.db.columnar import ColumnStore
from repro.db.schema import Schema
from repro.errors import SchemaError, UnknownTupleError

__all__ = ["Database", "Row"]

Listener = Callable[[CellChange], None]
#: (tid, attribute, old, new, source) — fired before the row mutates.
WriteHook = Callable[[int, str, object, object, str], None]


class Row:
    """A read-only view of one tuple.

    Supports mapping-style access by attribute name and exposes the
    tuple id. Mutation must go through :meth:`Database.set_value` so
    that listeners fire.
    """

    __slots__ = ("tid", "_schema", "_values")

    def __init__(self, tid: int, schema: Schema, values: Sequence[object]) -> None:
        self.tid = tid
        self._schema = schema
        self._values = values

    def __getitem__(self, attribute: str) -> object:
        return self._values[self._schema.position(attribute)]

    def get(self, attribute: str, default: object = None) -> object:
        """Return the value of *attribute*, or *default* if unknown."""
        if attribute not in self._schema:
            return default
        return self[attribute]

    @property
    def values(self) -> tuple[object, ...]:
        """All attribute values in schema order."""
        return tuple(self._values)

    def as_dict(self) -> dict[str, object]:
        """The tuple as an ``attribute -> value`` dictionary."""
        return dict(zip(self._schema.attributes, self._values))

    def project(self, attributes: Iterable[str]) -> tuple[object, ...]:
        """Values of the given attributes, in the order requested."""
        return tuple(self[a] for a in attributes)

    def __iter__(self) -> Iterator[object]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self.tid == other.tid and self.values == other.values
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.tid, self.values))

    def __repr__(self) -> str:
        return f"Row(tid={self.tid}, {self.as_dict()!r})"


class Database:
    """A mutable single-relation instance.

    Parameters
    ----------
    schema:
        The relation schema.
    rows:
        Optional initial rows; each row is either a sequence of values
        in schema order or a mapping from attribute name to value.

    Examples
    --------
    >>> db = Database(Schema("r", ["a", "b"]))
    >>> tid = db.insert({"a": 1, "b": 2})
    >>> db.value(tid, "b")
    2
    >>> db.set_value(tid, "b", 3)
    >>> db.value(tid, "b")
    3
    """

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Sequence[object] | Mapping[str, object]] | None = None,
    ) -> None:
        self.schema = schema
        self._rows: dict[int, list[object]] = {}
        self._next_tid = 0
        self._listeners: list[Listener] = []
        self._write_hooks: list[WriteHook] = []
        self._change_seq = 0
        self._version = 0
        self._structure_version = 0
        self._columns: ColumnStore | None = None
        if rows is not None:
            for row in rows:
                self.insert(row)

    # ------------------------------------------------------------------
    # columnar mirror
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic instance version: bumps on every insert/write/delete.

        Cheap staleness check for consumers holding derived caches (the
        generator's witness-lookup memo, for example).
        """
        return self._version

    @property
    def structure_version(self) -> int:
        """Monotonic shape version: bumps only on insert/delete.

        Cell writes notify listeners, but insertions and deletions do
        not; consumers mirroring row *positions* (the sharded violation
        engine's workers) compare this stamp to detect shape changes
        that require a full rebuild rather than a delta.
        """
        return self._structure_version

    @property
    def columns(self) -> ColumnStore:
        """The dictionary-encoded columnar image of this instance.

        Built lazily on first access, then maintained incrementally and
        synchronously under every :meth:`insert`, :meth:`set_value` and
        :meth:`delete` — a listener reading the columns always sees the
        post-write state.
        """
        if self._columns is None:
            self._columns = ColumnStore(self.schema, self._rows.items())
        return self._columns

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------
    def add_listener(self, listener: Listener) -> None:
        """Register a callback fired after every cell mutation."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        """Unregister a previously added callback (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, change: CellChange) -> None:
        for listener in self._listeners:
            listener(change)

    def add_write_hook(self, hook: WriteHook) -> None:
        """Register a callback fired *before* every effective cell write.

        Unlike listeners (which observe the post-write state), write
        hooks run after the no-op check but before the row mutates —
        the write-ahead seam. A hook that raises aborts the write with
        the instance unmodified, which is exactly the WAL contract: no
        durable record, no mutation.
        """
        self._write_hooks.append(hook)

    def remove_write_hook(self, hook: WriteHook) -> None:
        """Unregister a previously added write hook (no-op if absent)."""
        try:
            self._write_hooks.remove(hook)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # insertion / deletion
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[object] | Mapping[str, object]) -> int:
        """Insert a row, returning its newly assigned tuple id."""
        values = self._coerce_row(row)
        tid = self._next_tid
        self._next_tid += 1
        self._rows[tid] = values
        self._version += 1
        self._structure_version += 1
        if self._columns is not None:
            self._columns.append(tid, values)
        return tid

    def _coerce_row(self, row: Sequence[object] | Mapping[str, object]) -> list[object]:
        if isinstance(row, Mapping):
            missing = [a for a in self.schema.attributes if a not in row]
            if missing:
                raise SchemaError(f"row missing attributes {missing!r}")
            extra = [a for a in row if a not in self.schema]
            if extra:
                raise SchemaError(f"row has unknown attributes {extra!r}")
            return [row[a] for a in self.schema.attributes]
        values = list(row)
        if len(values) != len(self.schema):
            raise SchemaError(
                f"row has {len(values)} values, schema {self.schema.name!r} "
                f"expects {len(self.schema)}"
            )
        return values

    def delete(self, tid: int) -> None:
        """Remove the tuple with id *tid*."""
        if tid not in self._rows:
            raise UnknownTupleError(tid)
        del self._rows[tid]
        self._version += 1
        self._structure_version += 1
        if self._columns is not None:
            self._columns.remove(tid)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def row(self, tid: int) -> Row:
        """Return a read-only view of tuple *tid*."""
        try:
            return Row(tid, self.schema, self._rows[tid])
        except KeyError:
            raise UnknownTupleError(tid) from None

    def value(self, tid: int, attribute: str) -> object:
        """Return one cell value."""
        pos = self.schema.position(attribute)
        try:
            return self._rows[tid][pos]
        except KeyError:
            raise UnknownTupleError(tid) from None

    def values_snapshot(self, tid: int) -> tuple[object, ...]:
        """A detached copy of tuple *tid*'s values, in schema order."""
        try:
            return tuple(self._rows[tid])
        except KeyError:
            raise UnknownTupleError(tid) from None

    def values_view(self, tid: int) -> Sequence[object]:
        """Tuple *tid*'s live value list, in schema order — **read only**.

        Unlike :meth:`values_snapshot` this does not copy; the returned
        sequence aliases the stored row and mutates under later writes.
        For hot paths (the violation detector's per-write maintenance)
        that only read positionally and never retain the sequence.
        """
        try:
            return self._rows[tid]
        except KeyError:
            raise UnknownTupleError(tid) from None

    def tids(self) -> list[int]:
        """All live tuple ids (ascending)."""
        return sorted(self._rows)

    def rows(self) -> Iterator[Row]:
        """Iterate over all tuples as :class:`Row` views."""
        for tid in sorted(self._rows):
            yield Row(tid, self.schema, self._rows[tid])

    def column(self, attribute: str) -> list[object]:
        """All values of one attribute, ordered by tuple id."""
        pos = self.schema.position(attribute)
        return [self._rows[tid][pos] for tid in sorted(self._rows)]

    def domain(self, attribute: str) -> set[object]:
        """The active domain of *attribute* (distinct current values)."""
        pos = self.schema.position(attribute)
        return {values[pos] for values in self._rows.values()}

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, tid: object) -> bool:
        return tid in self._rows

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_value(self, tid: int, attribute: str, value: object, source: str = "user") -> bool:
        """Write one cell, notifying listeners.

        Returns ``True`` if the value actually changed, ``False`` if the
        write was a no-op (listeners are not fired for no-ops).
        """
        pos = self.schema.position(attribute)
        try:
            values = self._rows[tid]
        except KeyError:
            raise UnknownTupleError(tid) from None
        old = values[pos]
        if old == value:
            return False
        for hook in self._write_hooks:
            hook(tid, attribute, old, value, source)
        values[pos] = value
        self._version += 1
        if self._columns is not None:
            self._columns.set_cell(tid, pos, value)
        self._change_seq += 1
        self._notify(CellChange(self._change_seq, tid, attribute, old, value, source))
        return True

    # ------------------------------------------------------------------
    # copies and comparisons
    # ------------------------------------------------------------------
    def snapshot_view(self):
        """A copy-on-write read view pinned at the current version.

        Rows are copied lazily — on first read through the view, or on
        the first write that would otherwise overwrite an unread row —
        so acquiring a view is O(1) regardless of instance size. The
        view must be released (it is a context manager) to stop
        pinning. See :class:`repro.db.snapshot.SnapshotView`.
        """
        from repro.db.snapshot import SnapshotView

        return SnapshotView(self)

    def snapshot(self) -> "Database":
        """A deep copy with the same tids and no listeners attached."""
        copy = Database(self.schema)
        copy._rows = {tid: list(values) for tid, values in self._rows.items()}
        copy._next_tid = self._next_tid
        return copy

    def export_rows(self) -> tuple[dict[int, list[object]], int]:
        """Detached ``(rows by tid, next tid)`` copy, for checkpoints."""
        return ({tid: list(values) for tid, values in self._rows.items()}, self._next_tid)

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Mapping[int, Sequence[object]],
        next_tid: int | None = None,
    ) -> "Database":
        """Rebuild an instance with explicit tuple ids (checkpoint restore).

        Unlike :meth:`insert`, the given tids are kept verbatim, so a
        restored instance is id-compatible with journals and repair
        state recorded against the original.
        """
        db = cls(schema)
        db._rows = {tid: list(values) for tid, values in rows.items()}
        db._next_tid = (
            next_tid if next_tid is not None else max(rows, default=-1) + 1
        )
        return db

    def diff_cells(self, other: "Database") -> list[tuple[int, str]]:
        """Cells where this instance differs from *other*.

        Both instances must share the schema and tuple ids; extra or
        missing tuples on either side are reported as full-row diffs.
        """
        if self.schema != other.schema:
            raise SchemaError("cannot diff databases with different schemas")
        diffs: list[tuple[int, str]] = []
        all_tids = set(self._rows) | set(other._rows)
        for tid in sorted(all_tids):
            mine = self._rows.get(tid)
            theirs = other._rows.get(tid)
            if mine is None or theirs is None:
                diffs.extend((tid, attr) for attr in self.schema.attributes)
                continue
            for pos, attr in enumerate(self.schema.attributes):
                if mine[pos] != theirs[pos]:
                    diffs.append((tid, attr))
        return diffs

    def equals_data(self, other: "Database") -> bool:
        """True when both instances hold identical tuples per tid."""
        return self.schema == other.schema and not self.diff_cells(other)

    def __repr__(self) -> str:
        return f"Database({self.schema.name!r}, {len(self)} tuples)"
