"""Write-ahead feedback journal (the durable seam behind ChangeLog).

:class:`~repro.db.changelog.ChangeLog` records what *happened*, in
memory, after the fact. The journal extends that seam with durability:
every feedback decision and every database write is appended to an
append-only JSON-lines file **before** it is applied, and the file is
flushed per record (optionally ``os.fsync``-ed), so a killed session
loses at most the one record whose application never started.

Record kinds (one JSON object per line, ``seq`` strictly increasing):

``meta``
    Session header: schema, engine config, a fingerprint of the
    instance the journal starts from.
``run``
    One ``GDREngine.run`` invocation (budget and drain flag).
``feedback``
    One feedback decision — appended by the consistency manager on
    entry to ``apply_feedback``, *before* any routing. ``source`` is
    ``"user"`` or ``"learner"``; user records double as the recorded
    oracle answers a resumed session replays.
``write``
    One cell write (WAL): appended by a database pre-write hook before
    the row mutates. ``old`` is the expected pre-image, which replay
    verifies.
``checkpoint``
    Marker that a checkpoint file was written, and at which journal
    sequence.

Recovery model — deterministic re-execution: the engine is fully
deterministic given the oracle's answers, so resuming is *restore the
latest checkpoint, re-run, feed the journaled user answers back in
order* (:class:`ReplayOracle`), then continue live when the tail runs
dry. The drain phase consults no oracle at all, which is why a session
killed mid-drain resumes byte-identically from the drain-start
checkpoint. :func:`FeedbackJournal.replay_writes` independently
re-applies the WAL records onto a database copy — the audit path, and
the detector of version-mismatched journals.

Values that are not JSON scalars are pickled and base64-tagged; the
experiment datasets only ever hold strings and numbers, so real
journals stay human-readable.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from pathlib import Path

from typing import TYPE_CHECKING

from repro.errors import JournalError, JournalReplayError
from repro.testing.faults import fault_hit

if TYPE_CHECKING:  # circular at runtime: repair imports constraints imports db
    from repro.repair.candidate import CandidateUpdate
    from repro.repair.feedback import UserFeedback

__all__ = ["FeedbackJournal", "ReplayOracle"]

_SCALARS = (str, int, float, bool, type(None))


def _encode_value(value: object) -> object:
    """JSON-safe encoding of a cell value (scalars pass through)."""
    if isinstance(value, _SCALARS):
        return value
    return {"__pickle__": base64.b64encode(pickle.dumps(value)).decode("ascii")}


def _decode_value(value: object) -> object:
    if isinstance(value, dict) and "__pickle__" in value:
        return pickle.loads(base64.b64decode(value["__pickle__"]))
    return value


def db_fingerprint(db) -> str:
    """Order-independent content hash of a database instance.

    Stable across processes (no ``hash()``); used to match journals
    and checkpoints to the instance they describe.
    """
    import hashlib

    digest = hashlib.sha256()
    digest.update(repr(tuple(db.schema.attributes)).encode())
    for tid in db.tids():
        digest.update(repr((tid, tuple(db.values_snapshot(tid)))).encode())
    return digest.hexdigest()


class FeedbackJournal:
    """Append-only JSON-lines journal with per-record flush points.

    Parameters
    ----------
    path:
        Journal file; created if absent, appended to if present (a
        resumed session keeps writing the same file).
    fsync:
        When True every append is ``os.fsync``-ed — real crash
        durability at real I/O cost. The default flushes to the OS
        only, which is what the deterministic kill tests need.
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._seq = 0
        if self.path.exists():
            try:
                with self.path.open("r", encoding="utf-8") as handle:
                    for line in handle:
                        if line.strip():
                            self._seq += 1
            except OSError as exc:
                raise JournalError(f"cannot read journal {self.path}: {exc}") from exc
        try:
            self._handle = self.path.open("a", encoding="utf-8")
        except OSError as exc:
            raise JournalError(f"cannot open journal {self.path}: {exc}") from exc

    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        """Sequence number of the last appended record (0 = empty)."""
        return self._seq

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._handle is None

    def append(self, kind: str, **payload) -> int:
        """Append one record and flush; returns its sequence number.

        The record is durable (flushed, optionally fsynced) before the
        caller proceeds to apply the operation it describes — the WAL
        contract. Raises :class:`JournalError` on I/O failure, leaving
        the operation unapplied.
        """
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        seq = self._seq + 1
        fault_hit("journal.append", kind=kind, seq=seq)
        record = {"seq": seq, "kind": kind, **payload}
        try:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        except OSError as exc:
            raise JournalError(f"cannot append to journal {self.path}: {exc}") from exc
        self._seq = seq
        return seq

    def close(self) -> None:
        """Flush and close the journal file (idempotent)."""
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    # ------------------------------------------------------------------
    # typed appenders
    # ------------------------------------------------------------------
    def log_meta(self, db, config: dict) -> int:
        """Session header: schema, config, instance fingerprint."""
        return self.append(
            "meta",
            schema=list(db.schema.attributes),
            relation=db.schema.name,
            tuples=len(db),
            fingerprint=db_fingerprint(db),
            config={k: _encode_value(v) for k, v in config.items()},
        )

    def log_run(self, feedback_limit: int | None, drain: bool, resumed: bool) -> int:
        """One engine run invocation."""
        return self.append(
            "run", feedback_limit=feedback_limit, drain=drain, resumed=resumed
        )

    def log_feedback(
        self, update: CandidateUpdate, feedback: UserFeedback, source: str
    ) -> int:
        """One feedback decision, before it is routed/applied."""
        return self.append(
            "feedback",
            tid=update.tid,
            attribute=update.attribute,
            value=_encode_value(update.value),
            score=update.score,
            decision=feedback.kind.value,
            correction=_encode_value(feedback.correction),
            source=source,
        )

    def log_write(
        self, tid: int, attribute: str, old: object, new: object, source: str
    ) -> int:
        """One cell write (WAL), before the row mutates."""
        return self.append(
            "write",
            tid=tid,
            attribute=attribute,
            old=_encode_value(old),
            new=_encode_value(new),
            source=source,
        )

    def log_checkpoint(self, path: str | Path, phase: str) -> int:
        """Marker: a checkpoint was written covering records <= seq."""
        return self.append("checkpoint", path=str(path), phase=phase)

    # ------------------------------------------------------------------
    # reading and replay
    # ------------------------------------------------------------------
    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """All records of a journal file, in order."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") from exc
        records: list[dict] = []
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                # a torn final line (killed mid-append) is expected; a
                # torn line anywhere else is corruption
                if number == len(text.splitlines()):
                    break
                raise JournalError(f"{path}:{number}: corrupt record: {exc}") from exc
        return records

    @staticmethod
    def replay_writes(path: str | Path, db, after_seq: int = 0) -> int:
        """Re-apply the WAL records onto *db*; returns writes applied.

        Every ``write`` record with ``seq > after_seq`` is verified —
        its ``old`` pre-image must equal the current cell value — then
        applied. A mismatch raises :class:`JournalReplayError`: the
        journal was recorded against a different database version.
        """
        applied = 0
        for record in FeedbackJournal.read(path):
            if record["kind"] != "write" or record["seq"] <= after_seq:
                continue
            tid = record["tid"]
            attribute = record["attribute"]
            old = _decode_value(record["old"])
            new = _decode_value(record["new"])
            current = db.value(tid, attribute)
            if current != old:
                raise JournalReplayError(
                    f"journal record {record['seq']} expects "
                    f"t{tid}.{attribute} == {old!r} but the instance holds "
                    f"{current!r}; the journal was recorded against a "
                    "different database version"
                )
            db.set_value(tid, attribute, new, source=record.get("source", "journal"))
            applied += 1
        return applied

    @staticmethod
    def feedback_tail(path: str | Path, after_seq: int = 0) -> list[dict]:
        """User feedback records after *after_seq*, decoded for replay."""
        tail: list[dict] = []
        for record in FeedbackJournal.read(path):
            if (
                record["kind"] == "feedback"
                and record["seq"] > after_seq
                and record.get("source") == "user"
            ):
                tail.append(
                    {
                        "seq": record["seq"],
                        "tid": record["tid"],
                        "attribute": record["attribute"],
                        "value": _decode_value(record["value"]),
                        "decision": record["decision"],
                        "correction": _decode_value(record["correction"]),
                    }
                )
        return tail

    def __repr__(self) -> str:
        return f"FeedbackJournal({str(self.path)!r}, seq={self._seq})"


class ReplayOracle:
    """Feeds journaled user answers back to a resumed session.

    Wraps the live oracle: while the journal tail holds user feedback
    records, each review is answered from the tail (after verifying the
    suggestion is the one the record describes — a divergence means the
    checkpoint and journal disagree and raises
    :class:`JournalReplayError`); once the tail is exhausted, reviews
    pass through to the live oracle. With a deterministic oracle the
    replayed answers equal the live ones; with a real human they are
    the only copy, which is the point.
    """

    def __init__(self, tail: list[dict], inner) -> None:
        self._tail = list(tail)
        self._cursor = 0
        self.inner = inner
        self.replayed = 0

    @property
    def exhausted(self) -> bool:
        """True once every journaled answer has been served."""
        return self._cursor >= len(self._tail)

    def review(self, update: CandidateUpdate, current_value: object) -> UserFeedback:
        """Serve the next journaled answer, or fall through when dry."""
        from repro.repair.feedback import Feedback, UserFeedback

        if self.exhausted:
            return self.inner.review(update, current_value)
        record = self._tail[self._cursor]
        if (
            record["tid"] != update.tid
            or record["attribute"] != update.attribute
            or record["value"] != update.value
        ):
            raise JournalReplayError(
                f"resumed session asked about t{update.tid}.{update.attribute} "
                f"-> {update.value!r} but journal record {record['seq']} answers "
                f"t{record['tid']}.{record['attribute']} -> {record['value']!r}; "
                "checkpoint and journal disagree"
            )
        self._cursor += 1
        self.replayed += 1
        correction = record["correction"]
        return UserFeedback(Feedback(record["decision"]), correction)
