"""Write-ahead feedback journal (the durable seam behind ChangeLog).

:class:`~repro.db.changelog.ChangeLog` records what *happened*, in
memory, after the fact. The journal extends that seam with durability:
every feedback decision and every database write is appended to an
append-only JSON-lines file **before** it is applied, and the file is
flushed per record (optionally ``os.fsync``-ed), so a killed session
loses at most the one record whose application never started.

Record kinds (one JSON object per line, ``seq`` strictly increasing):

``meta``
    Session header: schema, engine config, a fingerprint of the
    instance the journal starts from.
``run``
    One ``GDREngine.run`` invocation (budget and drain flag). A
    resumed run carries ``resumed=True`` and ``base_seq`` — the
    journal sequence its checkpoint covered; records between
    ``base_seq`` and the marker are superseded by the re-execution
    that follows it (see :meth:`FeedbackJournal.effective_records`).
``feedback``
    One feedback decision — appended by the consistency manager on
    entry to ``apply_feedback``, *before* any routing. ``source`` is
    ``"user"`` or ``"learner"``; user records double as the recorded
    oracle answers a resumed session replays.
``write``
    One cell write (WAL): appended by a database pre-write hook before
    the row mutates. ``old`` is the expected pre-image, which replay
    verifies.
``checkpoint``
    Marker that a checkpoint file was written, and at which journal
    sequence.

Recovery model — deterministic re-execution: the engine is fully
deterministic given the oracle's answers, so resuming is *restore the
latest checkpoint, re-run, feed the journaled user answers back in
order* (:class:`ReplayOracle`), then continue live when the tail runs
dry. The drain phase consults no oracle at all, which is why a session
killed mid-drain resumes byte-identically from the drain-start
checkpoint. Re-execution appends its records to the same journal, so
after a resume the raw file holds both the original post-checkpoint
records and their re-executed twins; the ``run`` marker's ``base_seq``
lets :meth:`FeedbackJournal.effective_records` collapse the file back
into one linear history. :func:`FeedbackJournal.replay_writes`
independently re-applies that effective WAL onto a database copy — the
audit path, and the detector of version-mismatched journals.

Values that are not JSON scalars are pickled and base64-tagged; the
experiment datasets only ever hold strings and numbers, so real
journals stay human-readable.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from pathlib import Path

from typing import TYPE_CHECKING

from repro.errors import JournalError, JournalReplayError
from repro.testing.faults import fault_hit

if TYPE_CHECKING:  # circular at runtime: repair imports constraints imports db
    from repro.core.user import UserOracle
    from repro.db.database import Database
    from repro.repair.candidate import CandidateUpdate
    from repro.repair.feedback import UserFeedback

__all__ = ["FeedbackJournal", "ReplayOracle"]

_SCALARS = (str, int, float, bool, type(None))


def _encode_value(value: object) -> object:
    """JSON-safe encoding of a cell value (scalars pass through)."""
    if isinstance(value, _SCALARS):
        return value
    return {"__pickle__": base64.b64encode(pickle.dumps(value)).decode("ascii")}


def _decode_value(value: object) -> object:
    if isinstance(value, dict) and "__pickle__" in value:
        return pickle.loads(base64.b64decode(value["__pickle__"]))
    return value


def db_fingerprint(db: Database) -> str:
    """Order-independent content hash of a database instance.

    Stable across processes (no ``hash()``); used to match journals
    and checkpoints to the instance they describe.
    """
    import hashlib

    digest = hashlib.sha256()
    digest.update(repr(tuple(db.schema.attributes)).encode())
    for tid in db.tids():
        digest.update(repr((tid, tuple(db.values_snapshot(tid)))).encode())
    return digest.hexdigest()


class FeedbackJournal:
    """Append-only JSON-lines journal with per-record flush points.

    Parameters
    ----------
    path:
        Journal file; created if absent, appended to if present (a
        resumed session keeps writing the same file).
    fsync:
        When True every append is ``os.fsync``-ed — real crash
        durability at real I/O cost. The default flushes to the OS
        only, which is what the deterministic kill tests need.
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._seq = 0
        if self.path.exists():
            self._recover_tail()
        try:
            self._handle = self.path.open("a", encoding="utf-8")
        except OSError as exc:
            raise JournalError(f"cannot open journal {self.path}: {exc}") from exc

    def _recover_tail(self) -> None:
        """Validate the existing file's tail before appending to it.

        A process killed mid-append leaves a torn final line — missing
        its trailing newline, or unparseable. Its operation never
        applied (:meth:`append` returns before application starts), so
        the torn tail is truncated here and its sequence number is
        reused by the replacement record; counting it toward ``_seq``
        or appending after it would corrupt every later record. A torn
        line anywhere before the end is real corruption and raises.
        """
        try:
            data = self.path.read_bytes()
        except OSError as exc:
            raise JournalError(f"cannot read journal {self.path}: {exc}") from exc
        valid_end = 0
        seq = 0
        lines = data.splitlines(keepends=True)
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                if not line.endswith(b"\n"):
                    break  # trailing whitespace without newline: torn
                valid_end += len(line)
                continue
            record = None
            if line.endswith(b"\n"):
                try:
                    record = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    if number != len(lines):
                        raise JournalError(
                            f"{self.path}:{number}: corrupt record: {exc}"
                        ) from exc
            if record is None:
                break  # torn final line: truncated below
            valid_end += len(line)
            if isinstance(record, dict) and isinstance(record.get("seq"), int):
                seq = record["seq"]
            else:
                seq += 1
        if valid_end != len(data):
            try:
                with self.path.open("r+b") as handle:
                    handle.truncate(valid_end)
            except OSError as exc:
                raise JournalError(
                    f"cannot truncate torn tail of journal {self.path}: {exc}"
                ) from exc
        self._seq = seq

    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        """Sequence number of the last appended record (0 = empty)."""
        return self._seq

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._handle is None

    def append(self, kind: str, **payload: object) -> int:
        """Append one record and flush; returns its sequence number.

        The record is durable (flushed, optionally fsynced) before the
        caller proceeds to apply the operation it describes — the WAL
        contract. Raises :class:`JournalError` on I/O failure, leaving
        the operation unapplied.
        """
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        seq = self._seq + 1
        fault_hit("journal.append", kind=kind, seq=seq)
        record = {"seq": seq, "kind": kind, **payload}
        try:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        except OSError as exc:
            raise JournalError(f"cannot append to journal {self.path}: {exc}") from exc
        self._seq = seq
        return seq

    def close(self) -> None:
        """Flush and close the journal file (idempotent)."""
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    # ------------------------------------------------------------------
    # typed appenders
    # ------------------------------------------------------------------
    def log_meta(self, db: Database, config: dict) -> int:
        """Session header: schema, config, instance fingerprint."""
        return self.append(
            "meta",
            schema=list(db.schema.attributes),
            relation=db.schema.name,
            tuples=len(db),
            fingerprint=db_fingerprint(db),
            config={k: _encode_value(v) for k, v in config.items()},
        )

    def log_run(
        self,
        feedback_limit: int | None,
        drain: bool,
        resumed: bool,
        base_seq: int | None = None,
    ) -> int:
        """One engine run invocation.

        For a resumed run *base_seq* is the journal sequence the
        restored checkpoint covered: the re-execution that follows
        this marker supersedes every feedback/write record after
        *base_seq*.
        """
        return self.append(
            "run",
            feedback_limit=feedback_limit,
            drain=drain,
            resumed=resumed,
            base_seq=base_seq,
        )

    def log_feedback(
        self, update: CandidateUpdate, feedback: UserFeedback, source: str
    ) -> int:
        """One feedback decision, before it is routed/applied."""
        return self.append(
            "feedback",
            tid=update.tid,
            attribute=update.attribute,
            value=_encode_value(update.value),
            score=update.score,
            decision=feedback.kind.value,
            correction=_encode_value(feedback.correction),
            source=source,
        )

    def log_write(
        self, tid: int, attribute: str, old: object, new: object, source: str
    ) -> int:
        """One cell write (WAL), before the row mutates."""
        return self.append(
            "write",
            tid=tid,
            attribute=attribute,
            old=_encode_value(old),
            new=_encode_value(new),
            source=source,
        )

    def log_checkpoint(self, path: str | Path, phase: str) -> int:
        """Marker: a checkpoint was written covering records <= seq."""
        return self.append("checkpoint", path=str(path), phase=phase)

    # ------------------------------------------------------------------
    # reading and replay
    # ------------------------------------------------------------------
    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """All complete records of a journal file, in order.

        A torn final line (killed mid-append: unterminated or
        half-written) is dropped — its operation never applied. A torn
        line anywhere else is corruption and raises
        :class:`JournalError`.
        """
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") from exc
        records: list[dict] = []
        lines = text.splitlines(keepends=True)
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            record = None
            if line.endswith("\n"):
                try:
                    record = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    if number != len(lines):
                        raise JournalError(
                            f"{path}:{number}: corrupt record: {exc}"
                        ) from exc
            if record is None:
                break  # torn final line
            records.append(record)
        return records

    @staticmethod
    def effective_records(path: str | Path) -> list[dict]:
        """The journal's records collapsed into one linear history.

        A resumed session re-executes from its checkpoint, re-appending
        the feedback and write records it replays (see the module
        recovery model), so the raw file holds duplicates. Each ``run``
        marker with ``resumed=True`` carries ``base_seq`` — the journal
        sequence its checkpoint covered; every feedback/write record
        between ``base_seq`` and the marker is superseded by the
        re-execution that follows the marker. This drops the superseded
        records, yielding the linear history :meth:`replay_writes` and
        :meth:`feedback_tail` consume. Repeated kill/resume cycles
        collapse correctly because markers are processed in order.
        """
        records = FeedbackJournal.read(path)
        superseded: set[int] = set()
        for record in records:
            if record["kind"] == "run" and record.get("resumed"):
                base = record.get("base_seq") or 0
                superseded.update(
                    r["seq"]
                    for r in records
                    if base < r["seq"] < record["seq"]
                    and r["kind"] in ("feedback", "write")
                )
        return [r for r in records if r["seq"] not in superseded]

    @staticmethod
    def verify_meta(path: str | Path, db: Database, config: dict) -> None:
        """Fail fast when a journal belongs to a different session.

        Compares the journal's ``meta`` record against the engine about
        to consume it: the instance fingerprint must match *db* (the
        session's initial instance) and the recorded config must match
        *config*. Raises :class:`JournalError` on mismatch — the clear
        error the later, confusing :class:`JournalReplayError` would
        otherwise become. A journal without a meta record passes (there
        is nothing to check against).
        """
        meta = next(
            (r for r in FeedbackJournal.read(path) if r["kind"] == "meta"), None
        )
        if meta is None:
            return
        fingerprint = db_fingerprint(db)
        if meta.get("fingerprint") != fingerprint:
            raise JournalError(
                f"journal {path} was recorded against a different instance: "
                f"meta fingerprint {meta.get('fingerprint')!r} != restored "
                f"instance fingerprint {fingerprint!r}"
            )
        recorded = {
            k: _decode_value(v) for k, v in (meta.get("config") or {}).items()
        }
        diverged = sorted(
            k for k in recorded.keys() | config.keys()
            if recorded.get(k) != config.get(k)
        )
        if diverged:
            raise JournalError(
                f"journal {path} was recorded under a different config: "
                f"{', '.join(diverged)} differ between the journal meta and "
                f"the restored session"
            )

    @staticmethod
    def replay_writes(path: str | Path, db: Database, after_seq: int = 0) -> int:
        """Re-apply the WAL records onto *db*; returns writes applied.

        Every effective ``write`` record (resume duplicates removed,
        see :meth:`effective_records`) with ``seq > after_seq`` is
        verified — its ``old`` pre-image must equal the current cell
        value — then applied. A mismatch raises
        :class:`JournalReplayError`: the journal was recorded against a
        different database version.
        """
        applied = 0
        for record in FeedbackJournal.effective_records(path):
            if record["kind"] != "write" or record["seq"] <= after_seq:
                continue
            tid = record["tid"]
            attribute = record["attribute"]
            old = _decode_value(record["old"])
            new = _decode_value(record["new"])
            current = db.value(tid, attribute)
            if current != old:
                raise JournalReplayError(
                    f"journal record {record['seq']} expects "
                    f"t{tid}.{attribute} == {old!r} but the instance holds "
                    f"{current!r}; the journal was recorded against a "
                    "different database version"
                )
            db.set_value(tid, attribute, new, source=record.get("source", "journal"))
            applied += 1
        return applied

    @staticmethod
    def feedback_tail(path: str | Path, after_seq: int = 0) -> list[dict]:
        """Effective user feedback records after *after_seq*, decoded for
        replay (resume duplicates removed, see :meth:`effective_records`)."""
        tail: list[dict] = []
        for record in FeedbackJournal.effective_records(path):
            if (
                record["kind"] == "feedback"
                and record["seq"] > after_seq
                and record.get("source") == "user"
            ):
                tail.append(
                    {
                        "seq": record["seq"],
                        "tid": record["tid"],
                        "attribute": record["attribute"],
                        "value": _decode_value(record["value"]),
                        "decision": record["decision"],
                        "correction": _decode_value(record["correction"]),
                    }
                )
        return tail

    def __repr__(self) -> str:
        return f"FeedbackJournal({str(self.path)!r}, seq={self._seq})"


class ReplayOracle:
    """Feeds journaled user answers back to a resumed session.

    Wraps the live oracle: while the journal tail holds user feedback
    records, each review is answered from the tail (after verifying the
    suggestion is the one the record describes — a divergence means the
    checkpoint and journal disagree and raises
    :class:`JournalReplayError`); once the tail is exhausted, reviews
    pass through to the live oracle. With a deterministic oracle the
    replayed answers equal the live ones; with a real human they are
    the only copy, which is the point.
    """

    def __init__(self, tail: list[dict], inner: UserOracle) -> None:
        self._tail = list(tail)
        self._cursor = 0
        self.inner = inner
        self.replayed = 0

    @property
    def exhausted(self) -> bool:
        """True once every journaled answer has been served."""
        return self._cursor >= len(self._tail)

    def review(self, update: CandidateUpdate, current_value: object) -> UserFeedback:
        """Serve the next journaled answer, or fall through when dry."""
        from repro.repair.feedback import Feedback, UserFeedback

        if self.exhausted:
            return self.inner.review(update, current_value)
        record = self._tail[self._cursor]
        if (
            record["tid"] != update.tid
            or record["attribute"] != update.attribute
            or record["value"] != update.value
        ):
            raise JournalReplayError(
                f"resumed session asked about t{update.tid}.{update.attribute} "
                f"-> {update.value!r} but journal record {record['seq']} answers "
                f"t{record['tid']}.{record['attribute']} -> {record['value']!r}; "
                "checkpoint and journal disagree"
            )
        self._cursor += 1
        self.replayed += 1
        correction = record["correction"]
        return UserFeedback(Feedback(record["decision"]), correction)
