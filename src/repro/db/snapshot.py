"""Copy-on-write point-in-time views over a live database.

The batched learner paths (``FeedbackLearner.predict_many`` behind the
drain, the delegation step, the cached VOI ranking) need many row
images *as of one instant* while decisions keep writing the live
instance. Copying every row up front would cost O(instance) per batch;
:class:`SnapshotView` instead pins row images lazily:

* a row first *read* through the view is copied once and served from
  the view on every later read (which also de-duplicates the repeated
  ``values_snapshot`` calls of multi-suggestion batches);
* a row first *written* (before ever being read) has its pre-write
  image reconstructed from the change record the database broadcasts,
  so later reads still observe the pinned version;
* rows neither read nor written cost nothing.

The view therefore observes the instance exactly as it stood at
:attr:`SnapshotView.version`, no matter how many cells are written
while it is held. Releasing the view (explicitly or via ``with``)
detaches it from the database and drops every pinned image.

Scope: views track cell writes (``Database.set_value``), the only
mutation the interactive loop performs. Tuples inserted after the view
was acquired are not hidden from it, and deleting a tuple out from
under a view that never touched it forfeits that tuple's image — both
operations are outside the repair hot path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.db.changelog import CellChange

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database

__all__ = ["SnapshotView"]


class SnapshotView:
    """A consistent read view pinned at one database version.

    Parameters
    ----------
    db:
        The live database; the view registers itself as a listener and
        must be released (or used as a context manager) when done.

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> db = Database(Schema("r", ["a"]), [["x"]])
    >>> with db.snapshot_view() as view:
    ...     db.set_value(0, "a", "y")
    ...     view.values_snapshot(0)
    ('x',)
    >>> db.value(0, "a")
    'y'
    """

    __slots__ = ("_db", "_rows", "_version", "_released")

    def __init__(self, db: "Database") -> None:
        self._db = db
        # tid -> pinned value tuple (captured by first read or write)
        self._rows: dict[int, tuple[object, ...]] = {}
        self._version = db.version
        self._released = False
        db.add_listener(self._on_change)

    @property
    def version(self) -> int:
        """The database version this view observes."""
        return self._version

    @property
    def released(self) -> bool:
        """True once the view has been detached from the database."""
        return self._released

    @property
    def pinned_count(self) -> int:
        """Number of row images currently pinned by the view."""
        return len(self._rows)

    # ------------------------------------------------------------------
    def _on_change(self, change: CellChange) -> None:
        if change.tid in self._rows:
            return  # image already pinned at the view's version
        # Listeners fire post-write: reconstruct the pre-write image by
        # undoing the one cell the change record describes. Any earlier
        # write to this tuple during the view's lifetime would already
        # have pinned it, so exactly one cell differs from the snapshot.
        values = list(self._db.values_view(change.tid))
        values[self._db.schema.position(change.attribute)] = change.old
        self._rows[change.tid] = tuple(values)

    # ------------------------------------------------------------------
    def values_snapshot(self, tid: int) -> tuple[object, ...]:
        """Tuple *tid*'s values as of the view's version (pinned copy).

        Repeated reads of one tuple return the same pinned tuple object
        — callers batching several suggestions per tuple share one row
        image instead of re-copying the row per suggestion.
        """
        if self._released:
            raise RuntimeError("snapshot view has been released")
        row = self._rows.get(tid)
        if row is None:
            row = self._db.values_snapshot(tid)
            self._rows[tid] = row
        return row

    def value(self, tid: int, attribute: str) -> object:
        """One cell value as of the view's version."""
        return self.values_snapshot(tid)[self._db.schema.position(attribute)]

    # ------------------------------------------------------------------
    def release(self) -> None:
        """Detach from the database and drop every pinned image."""
        if self._released:
            return
        self._released = True
        self._db.remove_listener(self._on_change)
        self._rows.clear()

    def __enter__(self) -> "SnapshotView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else f"{len(self._rows)} pinned"
        return f"SnapshotView(version={self._version}, {state})"
