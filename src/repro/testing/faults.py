"""Named fault points with deterministic, seeded schedules.

The chaos suite needs to break the engine at *exact, reproducible*
moments: the 7th journal append, the 3rd drain decision, every other
loop iteration. Production code therefore calls::

    fault_hit("journal.append", seq=seq)

at each named fault point. With nothing armed this is one module-level
dict truthiness check — cheap enough for hot paths. A test arms a
point with an *action* and a trigger pattern::

    with fault_scope():
        arm("drain.decision", action=kill, at=3)       # 3rd hit only
        arm("engine.iteration", action=storm, every=2) # every 2nd hit

Actions receive the hit's keyword context and may raise (to simulate a
crash or an I/O error) or mutate live structures (to simulate
corruption). Schedules are driven purely by hit counters, so a given
seed → schedule → run is exactly reproducible; :class:`SessionKilled`
is the conventional "process died here" signal used by the
kill-and-restore tests.

The registered points live in :data:`FAULT_POINT_REGISTRY` — a
machine-readable tuple of :class:`FaultPoint` records (name,
description, owning module) that is the single source of truth
consumed by :func:`fault_points`, ``GDREngine.health()`` and the
``fault-registry`` repolint cross-check (which verifies every entry is
instrumented in its owning module and armed by at least one test, and
that no call site names an unregistered point).
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "FAULT_POINTS",
    "FAULT_POINT_REGISTRY",
    "FaultPoint",
    "SessionKilled",
    "arm",
    "armed_points",
    "disarm",
    "fault_hit",
    "fault_points",
    "fault_scope",
]


@dataclass(frozen=True)
class FaultPoint:
    """One registered fault point: name, what it models, who fires it."""

    name: str
    description: str
    #: Dotted module whose code calls ``fault_hit(name, ...)``.
    module: str


#: The fault points production code is instrumented with — the single
#: source of truth for arm(), engine.health() and the lint cross-check.
#: Entries must stay literal (name/description/module as plain strings):
#: the repolint ``fault-registry`` rule reads this assignment from the
#: AST without importing the package.
FAULT_POINT_REGISTRY: tuple[FaultPoint, ...] = (
    FaultPoint(
        "journal.append",
        "before a journal record is written to disk",
        "repro.db.journal",
    ),
    FaultPoint(
        "engine.iteration",
        "top of each interactive loop iteration",
        "repro.core.gdr",
    ),
    FaultPoint(
        "engine.drain_pass",
        "top of each learner-drain pass",
        "repro.core.gdr",
    ),
    FaultPoint(
        "drain.decision",
        "after each drain decision is applied",
        "repro.core.gdr",
    ),
    FaultPoint(
        "learner.refit",
        "before an attribute committee refit mutates state",
        "repro.core.learner",
    ),
    FaultPoint(
        "shard.dispatch",
        "before a message is sent to a shard worker",
        "repro.core.parallel",
    ),
)

#: Point names, registry order (kept for existing callers/tests).
FAULT_POINTS: tuple[str, ...] = tuple(point.name for point in FAULT_POINT_REGISTRY)


def fault_points() -> dict[str, FaultPoint]:
    """The registry as ``{name: FaultPoint}`` (a fresh dict per call)."""
    return {point.name: point for point in FAULT_POINT_REGISTRY}

FaultAction = Callable[[dict], None]


class SessionKilled(RuntimeError):
    """Conventional 'the process died here' signal for kill tests.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a crash is
    not a library-reported failure mode, and nothing in the engine may
    catch it.
    """


@dataclass
class _Armed:
    """One armed trigger on a fault point."""

    action: FaultAction
    #: Fire on exactly the N-th hit (1-based), when set.
    at: int | None = None
    #: Fire on every N-th hit, when set.
    every: int | None = None
    #: Maximum number of firings (``None`` = unlimited).
    times: int | None = None
    hits: int = field(default=0)
    fired: int = field(default=0)

    def should_fire(self) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.at is not None:
            return self.hits == self.at
        if self.every is not None:
            return self.hits % self.every == 0
        return True


#: point name -> armed triggers. Empty in production.
_SCHEDULE: dict[str, list[_Armed]] = {}


def arm(
    point: str,
    action: FaultAction,
    at: int | None = None,
    every: int | None = None,
    times: int | None = None,
) -> None:
    """Arm *point* with *action*; trigger per *at*/*every*/*times*.

    ``at=N`` fires on the N-th hit only (1-based); ``every=N`` fires on
    every N-th hit; neither means every hit. ``times`` caps total
    firings. Unknown point names are rejected so a typo cannot silently
    arm nothing.
    """
    if point not in FAULT_POINTS:
        raise ValueError(f"unknown fault point {point!r}; known: {FAULT_POINTS}")
    if at is not None and at < 1:
        raise ValueError(f"'at' is a 1-based hit index, got {at}")
    if every is not None and every < 1:
        raise ValueError(f"'every' must be >= 1, got {every}")
    _SCHEDULE.setdefault(point, []).append(
        _Armed(action=action, at=at, every=every, times=times)
    )


def disarm(point: str | None = None) -> None:
    """Disarm one fault point, or every point when *point* is None."""
    if point is None:
        _SCHEDULE.clear()
    else:
        _SCHEDULE.pop(point, None)


def armed_points() -> list[str]:
    """Names of currently armed fault points."""
    return sorted(_SCHEDULE)


def fault_hit(point: str, **context) -> None:
    """Report one pass through a fault point (no-op unless armed)."""
    if not _SCHEDULE:
        return
    triggers = _SCHEDULE.get(point)
    if not triggers:
        return
    for trigger in triggers:
        trigger.hits += 1
        if trigger.should_fire():
            trigger.fired += 1
            context["point"] = point
            context["hit"] = trigger.hits
            trigger.action(context)


@contextmanager
def fault_scope():
    """Context manager disarming every fault point on exit.

    Tests should arm inside a scope so a failing assertion cannot leak
    live faults into the rest of the suite.
    """
    try:
        yield
    finally:
        disarm()
