"""Deterministic fault injection for robustness testing.

Production modules call :func:`~repro.testing.faults.fault_hit` at
named fault points; the call is a near-free no-op until a test arms
the point. See :mod:`repro.testing.faults`.
"""

from repro.testing.faults import (
    FAULT_POINT_REGISTRY,
    FAULT_POINTS,
    FaultPoint,
    SessionKilled,
    arm,
    armed_points,
    disarm,
    fault_hit,
    fault_points,
    fault_scope,
)

__all__ = [
    "FAULT_POINT_REGISTRY",
    "FAULT_POINTS",
    "FaultPoint",
    "SessionKilled",
    "arm",
    "armed_points",
    "disarm",
    "fault_hit",
    "fault_points",
    "fault_scope",
]
