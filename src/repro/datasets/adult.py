"""Dataset 2 analogue: a synthetic census (UCI Adult) table.

The paper uses the UCI *adult* dataset (~23,000 records), assumes it is
clean, injects random errors into 30% of the tuples, and discovers the
quality rules with a 5% support threshold. Offline, we generate a
synthetic table with the same ten attributes and the cross-attribute
regularities the miner needs to find meaningful CFDs:

* ``relationship -> marital_status`` and ``relationship -> sex`` are
  functional by construction (Husband → Married-civ-spouse / Male);
* several occupations determine the workclass (Armed-Forces →
  Federal-gov, Farming-fishing → Self-emp-not-inc, ...);
* education, hours-per-week and income are correlated but *not*
  functional — realistic noise for the miner's confidence threshold.

Errors are purely random (no source correlation), which is exactly why
the paper's learner gains less on this dataset than on Dataset 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constraints.discovery import discover_rules
from repro.constraints.repository import RuleSet
from repro.datasets.corruption import CorruptionResult, CorruptionSpec, corrupt_database
from repro.db.database import Database
from repro.db.schema import Schema
from repro.errors import DatasetError

__all__ = ["ADULT_SCHEMA", "AdultConfig", "generate_adult_dataset"]

#: Relation schema (the paper's Appendix B attribute selection).
ADULT_SCHEMA = Schema(
    "adult",
    [
        "education",
        "hours_per_week",
        "income",
        "marital_status",
        "native_country",
        "occupation",
        "race",
        "relationship",
        "sex",
        "workclass",
    ],
)

_EDUCATION = [
    ("HS-grad", 0.32),
    ("Some-college", 0.22),
    ("Bachelors", 0.16),
    ("Masters", 0.06),
    ("Assoc-voc", 0.05),
    ("11th", 0.04),
    ("Assoc-acdm", 0.04),
    ("10th", 0.03),
    ("Doctorate", 0.02),
    ("Prof-school", 0.02),
    ("9th", 0.02),
    ("7th-8th", 0.02),
]

_RELATIONSHIPS = [
    ("Husband", 0.40),
    ("Not-in-family", 0.26),
    ("Own-child", 0.16),
    ("Unmarried", 0.10),
    ("Wife", 0.08),
]

#: relationship -> (marital_status, sex or None=random)
_RELATIONSHIP_FD = {
    "Husband": ("Married-civ-spouse", "Male"),
    "Wife": ("Married-civ-spouse", "Female"),
    "Own-child": ("Never-married", None),
    "Unmarried": ("Divorced", None),
    "Not-in-family": ("Never-married", None),
}

_OCCUPATIONS = [
    ("Prof-specialty", 0.13),
    ("Craft-repair", 0.13),
    ("Exec-managerial", 0.13),
    ("Adm-clerical", 0.12),
    ("Sales", 0.11),
    ("Other-service", 0.10),
    ("Machine-op-inspct", 0.07),
    ("Transport-moving", 0.05),
    ("Handlers-cleaners", 0.04),
    ("Farming-fishing", 0.04),
    ("Tech-support", 0.03),
    ("Protective-serv", 0.02),
    ("Armed-Forces", 0.02),
    ("Priv-house-serv", 0.01),
]

#: occupation -> workclass (functional for these occupations)
_OCCUPATION_WORKCLASS = {
    "Armed-Forces": "Federal-gov",
    "Farming-fishing": "Self-emp-not-inc",
    "Protective-serv": "State-gov",
    "Priv-house-serv": "Private",
}

_WORKCLASSES = [
    ("Private", 0.70),
    ("Self-emp-not-inc", 0.08),
    ("Local-gov", 0.07),
    ("State-gov", 0.05),
    ("Self-emp-inc", 0.04),
    ("Federal-gov", 0.04),
    ("Without-pay", 0.02),
]

# Kept below the mining confidence threshold (like native_country) so
# the skewed marginal does not masquerade as a conditional dependency.
_RACES = [
    ("White", 0.78),
    ("Black", 0.12),
    ("Asian-Pac-Islander", 0.05),
    ("Amer-Indian-Eskimo", 0.03),
    ("Other", 0.02),
]

# United-States is deliberately kept below the miner's confidence
# threshold so no spurious "anything -> United-States" constant rules
# are discovered from the skewed marginal.
_COUNTRIES = [
    ("United-States", 0.72),
    ("Mexico", 0.08),
    ("Philippines", 0.04),
    ("Germany", 0.03),
    ("Canada", 0.03),
    ("India", 0.03),
    ("England", 0.03),
    ("Cuba", 0.02),
    ("China", 0.02),
]

_HOURS = [20, 30, 35, 40, 45, 50, 60]

_HIGH_EDUCATION = {"Bachelors", "Masters", "Doctorate", "Prof-school"}


def _choice(rng: np.random.Generator, table: list[tuple[str, float]]) -> str:
    values = [v for v, __ in table]
    probs = np.array([p for __, p in table], dtype=float)
    probs = probs / probs.sum()
    return values[int(rng.choice(len(values), p=probs))]


@dataclass(slots=True)
class AdultConfig:
    """Generator knobs for the census dataset.

    Attributes
    ----------
    n:
        Number of records (paper: ~23,000).
    dirty_rate:
        Fraction of dirty tuples (paper: 0.3).
    seed:
        Master seed.
    ensure_detectable:
        Keep only corruptions visible to the discovered rules.
    support / confidence / max_lhs:
        CFD-discovery parameters (paper: support 5%).
    """

    n: int = 2000
    dirty_rate: float = 0.3
    seed: int = 0
    ensure_detectable: bool = True
    support: float = 0.05
    confidence: float = 0.92
    max_lhs: int = 1

    def __post_init__(self) -> None:
        if self.n < 1:
            raise DatasetError("adult", f"n must be >= 1, got {self.n}", field="n")
        if not 0.0 <= self.dirty_rate <= 1.0:
            raise DatasetError(
                "adult",
                f"dirty_rate must be in [0, 1], got {self.dirty_rate}",
                field="dirty_rate",
            )
        for field in ("support", "confidence"):
            value = getattr(self, field)
            if not 0.0 < value <= 1.0:
                raise DatasetError(
                    "adult", f"{field} must be in (0, 1], got {value}", field=field
                )
        if self.max_lhs < 1:
            raise DatasetError(
                "adult", f"max_lhs must be >= 1, got {self.max_lhs}", field="max_lhs"
            )


def generate_adult_dataset(
    config: AdultConfig | None = None,
) -> tuple[Database, Database, RuleSet, CorruptionResult]:
    """Generate (dirty, clean, rules, corruption report).

    Rules are *discovered from the dirty instance* at the configured
    support threshold, exactly as the paper does for Dataset 2.

    Examples
    --------
    >>> dirty, clean, rules, report = generate_adult_dataset(AdultConfig(n=300))
    >>> len(rules) > 0
    True
    """
    config = config if config is not None else AdultConfig()
    rng = np.random.default_rng(config.seed)
    rows = []
    for _ in range(config.n):
        relationship = _choice(rng, _RELATIONSHIPS)
        marital_status, forced_sex = _RELATIONSHIP_FD[relationship]
        sex = forced_sex if forced_sex else ("Male" if rng.random() < 0.5 else "Female")
        education = _choice(rng, _EDUCATION)
        occupation = _choice(rng, _OCCUPATIONS)
        workclass = _OCCUPATION_WORKCLASS.get(occupation) or _choice(rng, _WORKCLASSES)
        hours = int(_HOURS[int(rng.integers(0, len(_HOURS)))])
        high_earner_odds = 0.08
        if education in _HIGH_EDUCATION:
            high_earner_odds += 0.35
        if hours >= 45:
            high_earner_odds += 0.20
        income = ">50K" if rng.random() < high_earner_odds else "<=50K"
        rows.append(
            {
                "education": education,
                "hours_per_week": str(hours),
                "income": income,
                "marital_status": marital_status,
                "native_country": _choice(rng, _COUNTRIES),
                "occupation": occupation,
                "race": _choice(rng, _RACES),
                "relationship": relationship,
                "sex": sex,
                "workclass": workclass,
            }
        )
    clean = Database(ADULT_SCHEMA, rows)

    # First pass of random corruption (paper protocol), then rule
    # discovery on the dirty instance at the support threshold.
    spec = CorruptionSpec(
        rate=config.dirty_rate,
        max_attrs_per_tuple=2,
        char_error_prob=0.5,
        ensure_detectable=False,
    )
    dirty, report = corrupt_database(clean, spec, seed=config.seed + 1)
    rules = discover_rules(
        dirty,
        support=config.support,
        confidence=config.confidence,
        max_lhs=config.max_lhs,
        include_variable=True,
        max_violation_rate=0.12,
    )

    if config.ensure_detectable:
        # Re-inject with detectability enforced against the discovered
        # rules so every planted error is reachable by constraint
        # repair; errors are steered onto rule-covered attributes,
        # otherwise most corruptions would be invisible to Σ.
        covered = tuple(sorted(rules.attributes()))
        # LHS errors (a *valid* but wrong relationship) are inherently
        # ambiguous — the dirty tuple is indistinguishable from a tuple
        # whose RHS is wrong — so, like the paper's random noise, most
        # errors land on RHS values instead.
        lhs_attrs = {a for rule in rules for a in rule.lhs}
        weights = {a: (0.15 if a in lhs_attrs and a not in {r.rhs for r in rules} else 1.0)
                   for a in covered}
        spec = CorruptionSpec(
            rate=config.dirty_rate,
            max_attrs_per_tuple=2,
            attributes=covered if covered else None,
            char_error_prob=0.5,
            ensure_detectable=True,
            max_tries=10,
            attribute_weights=weights,
        )
        dirty, report = corrupt_database(clean, spec, seed=config.seed + 1, rules=rules)
    return dirty, clean, rules, report
