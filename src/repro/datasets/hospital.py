"""Dataset 1 analogue: emergency-room visits from 74 hospitals.

The paper's Dataset 1 is a proprietary integration of anonymised
emergency-room visits from 74 hospitals, manually repaired to obtain
the ground truth. This generator reproduces the properties the paper's
evaluation actually relies on:

* an address sub-schema (street / city / zip / state) governed by CFDs
  like Figure 1's (``zip -> city, state`` constants and
  ``street, city -> zip`` variables);
* **source-correlated recurrent errors**: each hospital plays the role
  of a data-entry operator with a sloppiness profile — e.g. one
  operator systematically types ``FT Wayne`` for ``Fort Wayne`` or
  swaps a zip for the neighbouring one. These correlations between a
  tuple's context and its correct update are what the feedback learner
  exploits (§5.2: "when SRC = 'H2' the CT attribute is incorrect most
  of the time");
* widely varying candidate-group sizes (big cities vs small towns),
  which is why VOI clearly beats Random on this dataset (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constraints.cfd import CFD
from repro.constraints.pattern import ANY
from repro.constraints.repository import RuleSet
from repro.datasets.corruption import CorruptionResult, CorruptionSpec, corrupt_database
from repro.db.database import Database
from repro.db.schema import Schema
from repro.errors import DatasetError

__all__ = ["HOSPITAL_SCHEMA", "HospitalConfig", "generate_hospital_dataset", "hospital_rules"]

#: Relation schema of the visits table (paper Appendix B attribute list).
HOSPITAL_SCHEMA = Schema(
    "er_visits",
    [
        "patient_id",
        "age",
        "sex",
        "classification",
        "complaint",
        "hospital",
        "street",
        "city",
        "zip",
        "state",
        "visit_date",
    ],
)

# An Indiana-like geography: (zip, city). Cities deliberately span very
# different popularity levels so candidate-group sizes vary widely, and
# most cities have several zip codes so the "hospital on the boundary
# between two zip codes" confusion of §5.2 can be reproduced.
_GEOGRAPHY: list[tuple[str, str]] = [
    ("46360", "Michigan City"),
    ("46391", "Westville"),
    ("46774", "New Haven"),
    ("46825", "Fort Wayne"),
    ("46802", "Fort Wayne"),
    ("46805", "Fort Wayne"),
    ("46202", "Indianapolis"),
    ("46204", "Indianapolis"),
    ("46220", "Indianapolis"),
    ("46601", "South Bend"),
    ("46615", "South Bend"),
    ("47901", "Lafayette"),
    ("47904", "Lafayette"),
    ("47906", "West Lafayette"),
    ("46307", "Crown Point"),
    ("46320", "Hammond"),
    ("46324", "Hammond"),
    ("46402", "Gary"),
    ("46403", "Gary"),
    ("47374", "Richmond"),
    ("47714", "Evansville"),
    ("47715", "Evansville"),
    ("47802", "Terre Haute"),
    ("47805", "Terre Haute"),
    ("46514", "Elkhart"),
    ("46545", "Mishawaka"),
]

_STATE = "IN"

_STREETS = [
    "Sherden RD",
    "Redwood Dr",
    "Main St",
    "Oak Ave",
    "Bell Ave",
    "Maple Ln",
    "2nd St",
    "Jefferson Blvd",
    "Washington Ave",
    "Lincoln Hwy",
    "Calumet Ave",
    "Broadway",
    "Meridian St",
    "State Rd 23",
    "Coliseum Blvd",
    "Dupont Rd",
    "Ridge Rd",
    "Franklin St",
    "Wabash Ave",
    "Hohman Ave",
]

_COMPLAINTS = [
    "chest pain",
    "fever",
    "fracture",
    "laceration",
    "headache",
    "abdominal pain",
    "shortness of breath",
    "burn",
    "dizziness",
    "back pain",
    "allergic reaction",
    "cough",
]

_CLASSIFICATIONS = ["emergent", "urgent", "semi-urgent", "non-urgent", "fast-track"]

# Recurrent-mistake vocabulary: deterministic wrong forms per city, the
# kind of systematic data-entry habit the paper describes.
_CITY_MISTAKES = {
    "Fort Wayne": "FT Wayne",
    "Michigan City": "Michigan Cty",
    "Indianapolis": "Indianapolis IN",
    "South Bend": "S Bend",
    "West Lafayette": "W Lafayette",
}


@dataclass(slots=True)
class HospitalConfig:
    """Generator knobs for the hospital dataset.

    Attributes
    ----------
    n:
        Number of visit records (paper: ~20,000).
    n_hospitals:
        Number of hospitals / data-entry sources (paper: 74).
    dirty_rate:
        Fraction of dirty tuples (paper: 0.3).
    sloppy_fraction:
        Fraction of hospitals assigned a systematic error profile.
    seed:
        Master seed.
    ensure_detectable:
        Keep only corruptions that violate the rule set, so Eq. 3 loss
        is fully recoverable (see DESIGN.md).
    rule_coverage:
        Fraction of zip codes covered by constant ``zip -> city/state``
        rules. Real curated tableaux never cover the whole domain;
        incomplete coverage is what gives minimal-cost automatic repair
        room to exit contexts instead of restoring the truth.
    """

    n: int = 2000
    n_hospitals: int = 74
    dirty_rate: float = 0.3
    sloppy_fraction: float = 0.4
    seed: int = 0
    ensure_detectable: bool = True
    rule_coverage: float = 0.75

    def __post_init__(self) -> None:
        if self.n < 1:
            raise DatasetError("hospital", f"n must be >= 1, got {self.n}", field="n")
        if self.n_hospitals < 1:
            raise DatasetError(
                "hospital",
                f"n_hospitals must be >= 1, got {self.n_hospitals}",
                field="n_hospitals",
            )
        for field in ("dirty_rate", "sloppy_fraction", "rule_coverage"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise DatasetError(
                    "hospital", f"{field} must be in [0, 1], got {value}", field=field
                )


def hospital_rules(rule_coverage: float = 1.0) -> RuleSet:
    """The quality rules Σ for the hospital dataset.

    Mirrors Figure 1: one constant CFD ``zip -> city`` and one
    ``zip -> state`` per *covered* zip code, the variable CFD
    ``street, city -> zip`` and the source dependency
    ``hospital -> street`` (each hospital has one address).

    Parameters
    ----------
    rule_coverage:
        Fraction of zip codes receiving constant rules (a curated
        tableau rarely covers the whole domain). Zips are dropped
        deterministically (every fourth at 0.75, etc.).
    """
    rules: list[CFD] = []
    n_covered = max(1, int(round(rule_coverage * len(_GEOGRAPHY))))
    step = len(_GEOGRAPHY) / n_covered
    covered_indexes = {int(i * step) for i in range(n_covered)}
    for i, (zip_code, city) in enumerate(_GEOGRAPHY):
        if i not in covered_indexes:
            continue
        rules.append(
            CFD(["zip"], "city", {"zip": zip_code, "city": city}, name=f"zip_city_{i + 1}")
        )
        rules.append(
            CFD(["zip"], "state", {"zip": zip_code, "state": _STATE}, name=f"zip_state_{i + 1}")
        )
    rules.append(
        CFD(
            ["street", "city"],
            "zip",
            {"street": ANY, "city": ANY, "zip": ANY},
            name="street_city_zip",
        )
    )
    rules.append(
        CFD(["hospital"], "street", {"hospital": ANY, "street": ANY}, name="hospital_street")
    )
    rules.append(CFD(["hospital"], "zip", {"hospital": ANY, "zip": ANY}, name="hospital_zip"))
    return RuleSet(rules, schema=HOSPITAL_SCHEMA)


def _build_hospitals(config: HospitalConfig, rng: np.random.Generator):
    """Assign each hospital an address and a sloppiness profile.

    Addresses are kept globally consistent with the rule set: a
    ``(street, city)`` pair always resolves to the same zip, so the
    clean instance satisfies ``street, city -> zip``.
    """
    hospitals = []
    n_sloppy = int(round(config.sloppy_fraction * config.n_hospitals))
    street_city_zip: dict[tuple[str, str], str] = {}
    for h in range(config.n_hospitals):
        zip_code, city = _GEOGRAPHY[int(rng.integers(0, len(_GEOGRAPHY)))]
        street = _STREETS[int(rng.integers(0, len(_STREETS)))]
        zip_code = street_city_zip.setdefault((street, city), zip_code)
        if h < n_sloppy:
            profile = ("city_mangler", "zip_swapper", "street_typo")[h % 3]
        else:
            profile = "clean"
        hospitals.append(
            {
                "name": f"H{h + 1:03d}",
                "street": street,
                "city": city,
                "zip": zip_code,
                "profile": profile,
            }
        )
    return hospitals


def _make_systematic_hook(hospitals) -> object:
    """Systematic-error hook implementing per-source recurrent mistakes.

    The zip swapper reproduces the §5.2 anecdote — hospitals "on the
    boundary between two zip codes" — by swapping a zip for another zip
    of the *same city*. The swap never creates a ``zip -> city``
    violation, only partner conflicts under the variable rules, which
    keeps the wrong-city side-suggestions small and fragmented (as in
    the paper's data) instead of funnelling into giant junk groups.
    """
    by_name = {h["name"]: h for h in hospitals}
    same_city: dict[str, list[str]] = {}
    for zip_code, city in _GEOGRAPHY:
        alternates = [z for z, c in _GEOGRAPHY if c == city and z != zip_code]
        if alternates:
            same_city[zip_code] = alternates

    def systematic(row: dict[str, object], attr: str, rng: np.random.Generator):
        hospital = by_name.get(row["hospital"])
        if hospital is None:
            return None
        profile = hospital["profile"]
        if profile == "city_mangler" and attr == "city":
            return _CITY_MISTAKES.get(str(row["city"]), str(row["city"]).upper())
        if profile == "zip_swapper" and attr == "zip":
            alternates = same_city.get(str(row["zip"]))
            if alternates:
                return alternates[int(rng.integers(0, len(alternates)))]
            return None  # no boundary zip: fall back to a random error
        if profile == "street_typo" and attr == "street":
            return str(row["street"]).replace(" ", "")
        return None

    return systematic


def generate_hospital_dataset(
    config: HospitalConfig | None = None,
) -> tuple[Database, Database, RuleSet, CorruptionResult]:
    """Generate (dirty, clean, rules, corruption report).

    The clean instance is internally consistent with
    :func:`hospital_rules`; the dirty copy carries ~``dirty_rate``
    corrupted tuples whose errors correlate with the hospital source.

    Examples
    --------
    >>> dirty, clean, rules, report = generate_hospital_dataset(
    ...     HospitalConfig(n=200, seed=1))
    >>> len(dirty) == len(clean) == 200
    True
    """
    config = config if config is not None else HospitalConfig()
    rng = np.random.default_rng(config.seed)
    hospitals = _build_hospitals(config, rng)
    rows = []
    for i in range(config.n):
        hospital = hospitals[int(rng.integers(0, len(hospitals)))]
        rows.append(
            {
                "patient_id": f"P{i + 1:06d}",
                "age": int(rng.integers(0, 100)),
                "sex": "F" if rng.random() < 0.52 else "M",
                "classification": _CLASSIFICATIONS[int(rng.integers(0, len(_CLASSIFICATIONS)))],
                "complaint": _COMPLAINTS[int(rng.integers(0, len(_COMPLAINTS)))],
                "hospital": hospital["name"],
                "street": hospital["street"],
                "city": hospital["city"],
                "zip": hospital["zip"],
                "state": _STATE,
                "visit_date": f"2010-{int(rng.integers(1, 13)):02d}-{int(rng.integers(1, 29)):02d}",
            }
        )
    clean = Database(HOSPITAL_SCHEMA, rows)
    rules = hospital_rules(rule_coverage=config.rule_coverage)

    # Corruption: address attributes only. Sloppy sources are *bursty* —
    # they receive several times their share of the error budget, so a
    # sloppy hospital's tuples are wrong "most of the time" (§5.2) and
    # simple majority-evidence heuristics break on them.
    by_name = {h["name"]: h for h in hospitals}
    profile_targets = {
        "city_mangler": ("city",),
        "zip_swapper": ("zip",),
        "street_typo": ("street",),
        "clean": ("city", "zip", "state", "street"),
    }

    def weight(row: dict[str, object]) -> float:
        return 4.0 if by_name[row["hospital"]]["profile"] != "clean" else 1.0

    def pick_attributes(row: dict[str, object]) -> tuple[str, ...]:
        return profile_targets[by_name[row["hospital"]]["profile"]]

    spec = CorruptionSpec(
        rate=config.dirty_rate,
        max_attrs_per_tuple=2,
        attributes=("city", "zip", "state", "street"),
        char_error_prob=0.35,
        systematic=_make_systematic_hook(hospitals),
        systematic_prob=0.8,
        ensure_detectable=config.ensure_detectable,
        tuple_weight=weight,
        attribute_picker=pick_attributes,
    )
    dirty, report = corrupt_database(clean, spec, seed=config.seed + 1, rules=rules)
    return dirty, clean, rules, report
