"""Synthetic error injection (paper Appendix B protocol).

The paper corrupts its clean base table by randomly picking tuples,
then for each tuple a random subset of attributes, and perturbing each
picked value by **either changing characters or replacing the value
with another value from the attribute's domain**. All experiments run
at 30% dirty tuples.

Additions beyond the paper's protocol:

* *systematic* errors — a hook mapping a tuple to a deterministic wrong
  value, used by the hospital dataset to plant the source-correlated
  recurrent mistakes GDR's learner exploits;
* *detectability enforcement* — optionally keep only corruptions that
  actually violate a rule set, so the ground-truth loss of Eq. 3 is
  fully recoverable by constraint repair.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.constraints.repository import RuleSet
from repro.constraints.violations import ViolationDetector
from repro.db.database import Database
from repro.errors import ConfigError

__all__ = ["CorruptionResult", "CorruptionSpec", "corrupt_database", "perturb_string"]

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"

#: Optional systematic-error hook: ``fn(row_dict, attribute, rng) -> wrong
#: value or None`` (None falls back to the random perturbation).
SystematicError = Callable[[dict[str, object], str, np.random.Generator], object | None]


def perturb_string(value: object, rng: np.random.Generator) -> str:
    """Character-level perturbation: replace, delete, insert or swap.

    Always returns a string different from ``str(value)`` (guaranteed
    by retrying with an appended character as a last resort).
    """
    text = str(value)
    for _ in range(8):
        if not text:
            candidate = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
        else:
            op = int(rng.integers(0, 4))
            pos = int(rng.integers(0, len(text)))
            letter = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
            if text[pos].isdigit():
                letter = str(int(rng.integers(0, 10)))
            if op == 0:  # replace
                candidate = text[:pos] + letter + text[pos + 1 :]
            elif op == 1:  # delete
                candidate = text[:pos] + text[pos + 1 :]
            elif op == 2:  # insert
                candidate = text[:pos] + letter + text[pos:]
            else:  # swap with next
                if pos == len(text) - 1:
                    candidate = text[:-1] + letter
                else:
                    candidate = text[:pos] + text[pos + 1] + text[pos] + text[pos + 2 :]
        if candidate != text:
            return candidate
    return text + "x"


@dataclass(slots=True)
class CorruptionSpec:
    """Parameters of the error-injection protocol.

    Attributes
    ----------
    rate:
        Fraction of tuples to dirty (paper: 0.3).
    max_attrs_per_tuple:
        Each dirty tuple gets 1..this many perturbed attributes.
    attributes:
        Candidate attributes to perturb (default: all).
    char_error_prob:
        Probability a perturbation edits characters rather than
        swapping in another domain value.
    systematic:
        Optional hook planting deterministic, context-correlated
        errors; consulted first for every picked cell.
    systematic_prob:
        Probability the hook (when present) is consulted for a cell.
    ensure_detectable:
        When True (requires *rules*), corruptions that do not introduce
        a rule violation are rolled back and retried.
    max_tries:
        Retry budget per tuple when enforcing detectability.
    tuple_weight:
        Optional ``fn(row_dict) -> weight`` biasing which tuples get
        corrupted. Used to model *bursty* sources: a sloppy data-entry
        operator corrupts most of its own tuples, the way the paper
        describes recurrent mistakes ("when SRC = 'H2' the CT attribute
        is incorrect most of the time").
    attribute_picker:
        Optional ``fn(row_dict) -> sequence of attributes`` narrowing
        which attributes a given tuple's errors land on (e.g. a
        city-mangling operator always mangles the city). Falls back to
        *attributes* when it returns nothing.
    attribute_weights:
        Optional relative weights biasing which candidate attribute is
        perturbed (unlisted attributes weigh 1.0).
    """

    rate: float = 0.3
    max_attrs_per_tuple: int = 2
    attributes: Sequence[str] | None = None
    char_error_prob: float = 0.5
    systematic: SystematicError | None = None
    systematic_prob: float = 1.0
    ensure_detectable: bool = False
    max_tries: int = 6
    tuple_weight: Callable[[dict[str, object]], float] | None = None
    attribute_picker: Callable[[dict[str, object]], Sequence[str]] | None = None
    attribute_weights: dict[str, float] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"rate must be in [0, 1], got {self.rate}")
        if self.max_attrs_per_tuple < 1:
            raise ConfigError(f"max_attrs_per_tuple must be >= 1, got {self.max_attrs_per_tuple}")
        if not 0.0 <= self.char_error_prob <= 1.0:
            raise ConfigError(f"char_error_prob must be in [0, 1], got {self.char_error_prob}")


@dataclass(slots=True)
class CorruptionResult:
    """What the injector actually did.

    Attributes
    ----------
    dirty_tuples:
        Tuple ids that received at least one perturbation.
    corrupted_cells:
        Every ``(tid, attribute)`` whose value was changed.
    undetectable_dropped:
        Tuples skipped because no detectable corruption was found
        within the retry budget (only with ``ensure_detectable``).
    """

    dirty_tuples: set[int] = field(default_factory=set)
    corrupted_cells: list[tuple[int, str]] = field(default_factory=list)
    undetectable_dropped: int = 0


def corrupt_database(
    clean: Database,
    spec: CorruptionSpec,
    seed: int = 0,
    rules: RuleSet | None = None,
) -> tuple[Database, CorruptionResult]:
    """Produce a dirty copy of *clean* following *spec*.

    Returns the dirty instance (same schema and tids) and a
    :class:`CorruptionResult` describing the injected errors.

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> clean = Database(Schema("r", ["a"]), [["alpha"], ["beta"], ["gamma"], ["delta"]])
    >>> dirty, result = corrupt_database(clean, CorruptionSpec(rate=0.5), seed=1)
    >>> len(result.dirty_tuples)
    2
    """
    rng = np.random.default_rng(seed)
    dirty = clean.snapshot()
    result = CorruptionResult()
    attributes = tuple(spec.attributes) if spec.attributes is not None else clean.schema.attributes
    clean.schema.validate_attributes(attributes)
    # domains over the whole schema: the attribute picker may direct
    # errors to attributes outside the default candidate list
    domains = {attr: sorted(map(str, clean.domain(attr))) for attr in clean.schema.attributes}

    tids = dirty.tids()
    n_dirty = int(round(spec.rate * len(tids)))
    if n_dirty and spec.tuple_weight is not None:
        weights = np.array(
            [max(0.0, float(spec.tuple_weight(dirty.row(t).as_dict()))) for t in tids]
        )
        total = weights.sum()
        probabilities = weights / total if total > 0 else None
        picked = rng.choice(len(tids), size=n_dirty, replace=False, p=probabilities)
    elif n_dirty:
        picked = rng.choice(len(tids), size=n_dirty, replace=False)
    else:
        picked = []

    detector: ViolationDetector | None = None
    if spec.ensure_detectable:
        if rules is None:
            raise ConfigError("ensure_detectable requires a rule set")
        detector = ViolationDetector(dirty, rules)

    for index in picked:
        tid = tids[int(index)]
        if _corrupt_tuple(dirty, tid, attributes, domains, spec, rng, result, detector):
            result.dirty_tuples.add(tid)
        else:
            result.undetectable_dropped += 1
    if detector is not None:
        detector.detach()
    return dirty, result


def _corrupt_tuple(
    db: Database,
    tid: int,
    attributes: tuple[str, ...],
    domains: dict[str, list[str]],
    spec: CorruptionSpec,
    rng: np.random.Generator,
    result: CorruptionResult,
    detector: ViolationDetector | None,
) -> bool:
    """Perturb one tuple; returns True when a perturbation stuck."""
    tries = spec.max_tries if detector is not None else 1
    candidates = attributes
    if spec.attribute_picker is not None:
        picked_attrs = tuple(spec.attribute_picker(db.row(tid).as_dict()))
        if picked_attrs:
            candidates = picked_attrs
    probabilities = None
    if spec.attribute_weights is not None:
        raw = np.array([spec.attribute_weights.get(a, 1.0) for a in candidates], dtype=float)
        total = raw.sum()
        if total > 0:
            probabilities = raw / total
    for _ in range(tries):
        n_attrs = int(rng.integers(1, spec.max_attrs_per_tuple + 1))
        chosen = rng.choice(
            len(candidates),
            size=min(n_attrs, len(candidates)),
            replace=False,
            p=probabilities,
        )
        writes: list[tuple[str, object, object]] = []
        for ai in chosen:
            attr = candidates[int(ai)]
            old = db.value(tid, attr)
            new = _wrong_value(db, tid, attr, old, domains[attr], spec, rng)
            if new is None or new == old:
                continue
            writes.append((attr, old, new))
        if not writes:
            continue
        for attr, __, new in writes:
            db.set_value(tid, attr, new, source="corruption")
        if detector is not None and not detector.is_dirty(tid):
            for attr, old, __ in writes:  # roll back and retry
                db.set_value(tid, attr, old, source="corruption-rollback")
            continue
        result.corrupted_cells.extend((tid, attr) for attr, __, __2 in writes)
        return True
    return False


def _wrong_value(
    db: Database,
    tid: int,
    attr: str,
    old: object,
    domain: list[str],
    spec: CorruptionSpec,
    rng: np.random.Generator,
) -> object | None:
    if spec.systematic is not None and rng.random() < spec.systematic_prob:
        planted = spec.systematic(db.row(tid).as_dict(), attr, rng)
        if planted is not None and planted != old:
            return planted
    if rng.random() < spec.char_error_prob or len(domain) < 2:
        return perturb_string(old, rng)
    for _ in range(4):
        candidate = domain[int(rng.integers(0, len(domain)))]
        if candidate != str(old):
            return candidate
    return perturb_string(old, rng)
