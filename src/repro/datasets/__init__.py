"""Benchmark datasets: hospital (Dataset 1) and adult census (Dataset 2)."""

from repro.datasets.adult import ADULT_SCHEMA, AdultConfig, generate_adult_dataset
from repro.datasets.corruption import (
    CorruptionResult,
    CorruptionSpec,
    corrupt_database,
    perturb_string,
)
from repro.datasets.hospital import (
    HOSPITAL_SCHEMA,
    HospitalConfig,
    generate_hospital_dataset,
    hospital_rules,
)
from repro.datasets.loader import DATASET_NAMES, GDRDataset, load_dataset
from repro.datasets.synth import REKEY_ATTRIBUTES, load_synth_dataset, scale_dataset

__all__ = [
    "ADULT_SCHEMA",
    "AdultConfig",
    "CorruptionResult",
    "CorruptionSpec",
    "DATASET_NAMES",
    "GDRDataset",
    "HOSPITAL_SCHEMA",
    "HospitalConfig",
    "REKEY_ATTRIBUTES",
    "corrupt_database",
    "generate_adult_dataset",
    "generate_hospital_dataset",
    "hospital_rules",
    "load_dataset",
    "load_synth_dataset",
    "perturb_string",
    "scale_dataset",
]
