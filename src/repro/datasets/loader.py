"""Uniform access to the experiment datasets.

:func:`load_dataset` returns a :class:`GDRDataset` bundling the dirty
instance, its ground truth, the rule set and provenance of the injected
errors — everything an experiment run needs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.constraints.repository import RuleSet
from repro.datasets.adult import AdultConfig, generate_adult_dataset
from repro.datasets.corruption import CorruptionResult
from repro.datasets.hospital import HospitalConfig, generate_hospital_dataset
from repro.db.database import Database
from repro.errors import DatasetError

__all__ = ["DATASET_NAMES", "GDRDataset", "load_dataset"]

#: Dataset identifiers accepted by :func:`load_dataset`.
DATASET_NAMES = ("hospital", "adult")


@dataclass(slots=True)
class GDRDataset:
    """One ready-to-repair benchmark dataset.

    Attributes
    ----------
    name:
        ``"hospital"`` (Dataset 1 analogue) or ``"adult"`` (Dataset 2).
    dirty:
        The corrupted instance (this is what GDR repairs).
    clean:
        The ground truth ``Dopt``.
    rules:
        The quality rules Σ (given for hospital, discovered for adult).
    corruption:
        Report of the injected errors.
    """

    name: str
    dirty: Database
    clean: Database
    rules: RuleSet
    corruption: CorruptionResult

    @property
    def dirty_tuple_count(self) -> int:
        """Number of tuples that received at least one error."""
        return len(self.corruption.dirty_tuples)

    def fresh_dirty(self) -> Database:
        """An independent copy of the dirty instance (for repeated runs)."""
        return self.dirty.snapshot()

    def describe(self) -> str:
        """Human-readable dataset summary."""
        return (
            f"{self.name}: {len(self.dirty)} tuples, "
            f"{self.dirty_tuple_count} dirty, {len(self.rules)} rules"
        )


def load_dataset(
    name: str,
    n: int = 2000,
    seed: int = 0,
    dirty_rate: float = 0.3,
    **overrides,
) -> GDRDataset:
    """Generate one of the two benchmark datasets.

    Parameters
    ----------
    name:
        ``"hospital"`` or ``"adult"``.
    n:
        Number of tuples (paper scale: 20,000–23,000; the default is
        laptop-friendly — results scale, see EXPERIMENTS.md).
    seed:
        Master seed (generation and corruption).
    dirty_rate:
        Fraction of dirty tuples (paper: 0.3).
    overrides:
        Extra fields forwarded to :class:`HospitalConfig` /
        :class:`AdultConfig`.

    Examples
    --------
    >>> ds = load_dataset("hospital", n=300, seed=7)
    >>> ds.name
    'hospital'
    """
    if name == "hospital":
        config_cls, generate = HospitalConfig, generate_hospital_dataset
    elif name == "adult":
        config_cls, generate = AdultConfig, generate_adult_dataset
    else:
        raise DatasetError(name, f"unknown dataset; expected one of {DATASET_NAMES}")
    allowed = {field.name for field in fields(config_cls)}
    for key in overrides:
        if key not in allowed:
            raise DatasetError(
                name,
                f"unknown generator parameter (accepted: {sorted(allowed)})",
                field=key,
            )
    config = config_cls(n=n, seed=seed, dirty_rate=dirty_rate, **overrides)
    dirty, clean, rules, report = generate(config)
    return GDRDataset(name=name, dirty=dirty, clean=clean, rules=rules, corruption=report)
