"""Deterministic scale-up of the benchmark datasets.

The paper's datasets top out at ~23k tuples; exercising the sharded
violation engine needs 10^5–10^6 rows with the *same* violation
structure.  :func:`load_synth_dataset` replicates a seeded base
instance block by block:

* **hospital** — every replica block re-keys the attributes that feed
  the variable CFDs (``hospital``, ``street``) plus ``patient_id`` with
  a pure ``value~block`` suffix.  Partitions of ``street, city -> zip``,
  ``hospital -> street`` and ``hospital -> zip`` therefore never merge
  across blocks, so each block reproduces the base instance's variable
  violations exactly; ``zip``/``city``/``state`` are shared, so the
  constant tableau applies globally and each replica of a corrupted
  cell violates the same rules the original did.
* **adult** — blocks are replicated verbatim.  Its rules are
  *discovered* constants over a tiny categorical domain; re-keying any
  attribute would orphan the tableau, while verbatim replication keeps
  every constant context valid (variable-rule partition sizes grow with
  the block count, which is representative of a larger census extract).

Everything is a pure function of ``(name, n, seed, base_n, ...)`` — no
RNG is consumed beyond the base generator's, so two calls with the same
arguments produce byte-identical instances, ground truth and
provenance.
"""

from __future__ import annotations

from repro.datasets.corruption import CorruptionResult
from repro.datasets.loader import GDRDataset, load_dataset
from repro.db.database import Database
from repro.errors import DatasetError

__all__ = ["REKEY_ATTRIBUTES", "load_synth_dataset", "scale_dataset"]

#: Attributes given a per-block suffix so variable-rule partitions stay
#: block-local (empty tuple: replicate verbatim).
REKEY_ATTRIBUTES: dict[str, tuple[str, ...]] = {
    "hospital": ("patient_id", "hospital", "street"),
    "adult": (),
}


def _rekeyed(value: object, block: int) -> str:
    """The block-``b`` alias of ``value`` (pure, collision-free)."""
    return f"{value}~{block}"


def scale_dataset(base: GDRDataset, n: int) -> GDRDataset:
    """Replicate ``base`` into an ``n``-tuple instance.

    Block 0 is the base instance verbatim (``scale_dataset(ds, len(ds
    .dirty))`` round-trips); later blocks re-key
    ``REKEY_ATTRIBUTES[base.name]`` and the final block is truncated to
    hit ``n`` exactly.  Corruption provenance is re-based onto the new
    tuple ids so oracles and evaluation work unchanged.
    """
    if n <= 0:
        raise DatasetError(base.name, f"synthetic size must be positive, got {n}")
    try:
        rekey = REKEY_ATTRIBUTES[base.name]
    except KeyError:
        raise DatasetError(
            base.name,
            f"no scale-up recipe; expected one of {sorted(REKEY_ATTRIBUTES)}",
        ) from None
    schema = base.dirty.schema
    rekey_pos = [schema.position(attr) for attr in rekey]
    base_tids = sorted(base.dirty.tids())
    if base_tids != sorted(base.clean.tids()):
        raise DatasetError(base.name, "dirty/clean tuple ids diverge; cannot replicate")
    block_size = len(base_tids)
    rank = {tid: i for i, tid in enumerate(base_tids)}

    dirty_rows: list[tuple[object, ...]] = []
    clean_rows: list[tuple[object, ...]] = []
    dirty_tuples: set[int] = set()
    corrupted_cells: list[tuple[int, str]] = []
    block = 0
    while len(dirty_rows) < n:
        take = min(block_size, n - len(dirty_rows))
        offset = block * block_size
        for tid in base_tids[:take]:
            for source, sink in ((base.dirty, dirty_rows), (base.clean, clean_rows)):
                values = list(source.values_snapshot(tid))
                if block:
                    for pos in rekey_pos:
                        values[pos] = _rekeyed(values[pos], block)
                sink.append(tuple(values))
        for tid in base.corruption.dirty_tuples:
            if rank[tid] < take:
                dirty_tuples.add(offset + rank[tid])
        for tid, attr in base.corruption.corrupted_cells:
            if rank[tid] < take:
                corrupted_cells.append((offset + rank[tid], attr))
        block += 1

    report = CorruptionResult(
        dirty_tuples=dirty_tuples,
        corrupted_cells=corrupted_cells,
        undetectable_dropped=base.corruption.undetectable_dropped * block,
    )
    return GDRDataset(
        name=f"{base.name}-synth",
        dirty=Database(schema, dirty_rows),
        clean=Database(schema, clean_rows),
        rules=base.rules,
        corruption=report,
    )


def load_synth_dataset(
    name: str = "hospital",
    n: int = 100_000,
    seed: int = 0,
    base_n: int = 2000,
    dirty_rate: float = 0.3,
    **overrides,
) -> GDRDataset:
    """Generate a scaled-up benchmark instance.

    Parameters
    ----------
    name:
        Base dataset (``"hospital"`` or ``"adult"``).
    n:
        Target tuple count (10^5–10^6 for shard benchmarks).
    seed, dirty_rate, overrides:
        Forwarded to :func:`repro.datasets.load_dataset` for the base
        instance.
    base_n:
        Size of the seeded base block that gets replicated.

    Examples
    --------
    >>> ds = load_synth_dataset("hospital", n=5000, base_n=1000, seed=7)
    >>> len(ds.dirty)
    5000
    """
    base = load_dataset(name, n=base_n, seed=seed, dirty_rate=dirty_rate, **overrides)
    return scale_dataset(base, n)
