"""Committed baseline of grandfathered findings.

The lint gate is a *ratchet*: findings present when a rule lands are
recorded (fingerprint + human-readable context) in a committed JSON
file, and only **new** findings fail the run. Fixing a baselined
finding leaves a *stale* entry behind, which the CLI reports so the
baseline can be re-tightened (``--write-baseline``) — the file may
only ever shrink.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME", "diff_findings"]

DEFAULT_BASELINE_NAME = "repolint-baseline.json"

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """The set of grandfathered finding fingerprints."""

    entries: dict[str, dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        return cls({e["fingerprint"]: e for e in data.get("findings", [])})

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls({f.fingerprint(): f.as_dict() for f in findings})

    def save(self, path: str | Path) -> None:
        path = Path(path)
        entries = sorted(
            self.entries.values(),
            key=lambda e: (str(e.get("path", "")), str(e.get("rule", "")), str(e.get("message", ""))),
        )
        payload = {"version": _FORMAT_VERSION, "findings": entries}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class LintOutcome:
    """One run's findings split against the baseline."""

    new: list[Finding]
    baselined: list[Finding]
    stale: list[dict[str, object]]  # baseline entries no longer observed

    @property
    def ok(self) -> bool:
        return not self.new


def diff_findings(findings: list[Finding], baseline: Baseline) -> LintOutcome:
    """Split *findings* into new vs grandfathered; spot stale entries."""
    new: list[Finding] = []
    baselined: list[Finding] = []
    seen: set[str] = set()
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in baseline.entries:
            baselined.append(finding)
            seen.add(fingerprint)
        else:
            new.append(finding)
    stale = [
        entry
        for fingerprint, entry in sorted(baseline.entries.items())
        if fingerprint not in seen
    ]
    return LintOutcome(new=new, baselined=baselined, stale=stale)
