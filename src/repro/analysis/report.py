"""Human-readable and JSON reporters for one lint run."""

from __future__ import annotations

import json
from typing import TextIO

from repro.analysis.baseline import LintOutcome
from repro.analysis.core import Finding, Rule

__all__ = ["render_json", "render_text"]


def render_json(
    outcome: LintOutcome,
    rules: list[Rule],
    elapsed_s: float,
    files_scanned: int,
) -> str:
    """Machine-readable report (the CI artifact)."""
    payload = {
        "summary": {
            "ok": outcome.ok,
            "new": len(outcome.new),
            "baselined": len(outcome.baselined),
            "stale_baseline_entries": len(outcome.stale),
            "files_scanned": files_scanned,
            "elapsed_s": round(elapsed_s, 3),
            "rules": [rule.id for rule in rules],
        },
        "new_findings": [f.as_dict() for f in outcome.new],
        "baselined_findings": [f.as_dict() for f in outcome.baselined],
        "stale_baseline_entries": outcome.stale,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_text(
    outcome: LintOutcome,
    rules: list[Rule],
    elapsed_s: float,
    files_scanned: int,
    stream: TextIO,
) -> None:
    """Human report: new findings in full, the rest summarised."""
    if outcome.new:
        stream.write(f"repolint: {len(outcome.new)} new finding(s)\n\n")
        for finding in outcome.new:
            _write_finding(stream, finding)
    if outcome.baselined:
        stream.write(
            f"{len(outcome.baselined)} grandfathered finding(s) "
            "(in the committed baseline; fix when touched):\n"
        )
        for finding in outcome.baselined:
            stream.write(f"  - {finding.location()}  [{finding.rule}] {finding.message}\n")
        stream.write("\n")
    if outcome.stale:
        stream.write(
            f"{len(outcome.stale)} stale baseline entr(y/ies) — the finding is "
            "gone; re-run with --write-baseline to ratchet the file down:\n"
        )
        for entry in outcome.stale:
            stream.write(f"  - {entry.get('path')}  [{entry.get('rule')}] {entry.get('message')}\n")
        stream.write("\n")
    verdict = "OK" if outcome.ok else "FAIL"
    stream.write(
        f"repolint {verdict}: {files_scanned} files, {len(rules)} rules, "
        f"{len(outcome.new)} new / {len(outcome.baselined)} baselined, "
        f"{elapsed_s:.2f}s\n"
    )


def _write_finding(stream: TextIO, finding: Finding) -> None:
    symbol = f" in {finding.symbol}" if finding.symbol else ""
    stream.write(f"{finding.location()}: [{finding.rule}]{symbol}\n")
    stream.write(f"    {finding.message}\n")
