"""Findings, the rule protocol and the rule registry.

repolint enforces the *contracts* eight PRs of growth have relied on —
byte-identical parity references, stamped and bounded memos, registered
and chaos-tested fault points, deterministic core paths, spawn-safe
dispatch and leak-free shared memory. Every contract is a
:class:`Rule`; every breach is a :class:`Finding`.

Findings carry a *fingerprint* that deliberately excludes the line
number: ``(rule, path, symbol, message)`` hashed. Unrelated edits that
shift a grandfathered finding up or down the file therefore do not
"create" a new finding against the committed baseline — only changing
the finding itself (or moving it to another symbol/file) does.

Suppression syntax (checked per finding line, and file-wide)::

    something_flagged()  # repolint: disable=determinism
    # repolint: disable-file=cache-discipline

Suppressions take a comma-separated rule list or ``all``. A suppressed
finding disappears entirely (it is not baselined, not reported, and
does not affect the exit code) — the comment in the code *is* the
audit trail, so suppressions should always ride with a justification.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: project.py imports this module
    from repro.analysis.project import Project, SourceFile

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "all_rules",
    "register",
]


@dataclass(frozen=True)
class Finding:
    """One contract breach at one location."""

    rule: str
    path: str  # repo-relative posix path
    line: int  # 1-based; 0 for project-level findings with no anchor
    message: str
    symbol: str = ""  # enclosing class/function, stabilises fingerprints

    def fingerprint(self) -> str:
        """Line-independent stable identity (baseline matching key)."""
        raw = "|".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


class Rule:
    """Base class: one named, documented contract checker.

    Subclasses set the class attributes and override one of the two
    ``check_*`` hooks. ``scope="file"`` rules get one call per source
    file; ``scope="project"`` rules get one call with the whole
    project (cross-file contracts: registries vs call sites, knob
    specs vs test coverage).
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    scope: str = "file"  # "file" | "project"

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        """Per-file pass; *source* is a ``SourceFile``."""
        return []

    def check_project(self, project: Project) -> list[Finding]:
        """Whole-project pass (cross-file contracts)."""
        return []

    # ------------------------------------------------------------------
    def finding(self, path: str, line: int, message: str, symbol: str = "") -> Finding:
        return Finding(rule=self.id, path=path, line=line, message=message, symbol=symbol)


#: rule id -> rule instance. Populated by :func:`register` at import of
#: :mod:`repro.analysis.rules`.
RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to :data:`RULES`."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Registered rules, stable id order."""
    import repro.analysis.rules  # noqa: F401  - populates RULES on import

    return [RULES[rule_id] for rule_id in sorted(RULES)]


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

_LINE_RE = re.compile(r"#\s*repolint:\s*disable=([A-Za-z0-9_,\- ]+)")
_FILE_RE = re.compile(r"#\s*repolint:\s*disable-file=([A-Za-z0-9_,\- ]+)")


@dataclass
class Suppressions:
    """Parsed ``# repolint:`` comments of one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, text: str) -> "Suppressions":
        out = cls()
        for lineno, line in enumerate(text.splitlines(), start=1):
            if "repolint" not in line:
                continue
            match = _FILE_RE.search(line)
            if match:
                out.file_wide.update(_split_rules(match.group(1)))
                continue
            match = _LINE_RE.search(line)
            if match:
                out.by_line.setdefault(lineno, set()).update(_split_rules(match.group(1)))
        return out

    def suppresses(self, finding: Finding) -> bool:
        for rules in (self.file_wide, self.by_line.get(finding.line, ())):
            if finding.rule in rules or "all" in rules:
                return True
        return False


def _split_rules(spec: str) -> list[str]:
    return [part.strip() for part in spec.split(",") if part.strip()]
