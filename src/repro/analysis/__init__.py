"""repolint — AST-based contract checks for this repository.

Eight PRs of growth made the system fast and durable by convention:
batched/sharded paths must stay byte-identical to retained references,
memos must be version-stamped and bounded, fault points must be
registered and chaos-tested, core paths must be deterministic so
kill-and-restore replay works. This package checks those conventions
mechanically — per-file AST passes plus cross-file project passes over
``src/`` and ``tests/`` — with line suppressions, a committed baseline
of grandfathered findings, JSON/human reporters and a CLI
(``python -m repro.analysis``) that exits non-zero on new findings.

See ``docs/repolint.md`` for the rule catalog.
"""

from repro.analysis.baseline import Baseline, diff_findings
from repro.analysis.cli import main
from repro.analysis.core import RULES, Finding, Rule, all_rules, register
from repro.analysis.project import Project, SourceFile, find_repo_root, run_rules

__all__ = [
    "Baseline",
    "Finding",
    "Project",
    "RULES",
    "Rule",
    "SourceFile",
    "all_rules",
    "diff_findings",
    "find_repo_root",
    "main",
    "register",
    "run_rules",
]
