"""``python -m repro.analysis`` — the repolint command line.

Exit codes: ``0`` clean (no findings outside the committed baseline),
``1`` new findings, ``2`` usage or internal error.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import TextIO

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline, diff_findings
from repro.analysis.core import all_rules
from repro.analysis.project import Project, find_repo_root, run_rules
from repro.analysis.report import render_json, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repolint: AST-based contract checks for this repository",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root (default: auto-detected from cwd / install path)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding is reported as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from this run's findings and exit 0",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report on stdout instead of the human report",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the JSON report to this file (CI artifact)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None, stdout: TextIO | None = None) -> int:
    out = stdout if stdout is not None else sys.stdout
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors
        return int(exc.code or 0)

    rules = all_rules()
    if args.rules:
        wanted = {part.strip() for part in args.rules.split(",") if part.strip()}
        known = {rule.id for rule in rules}
        unknown = wanted - known
        if unknown:
            out.write(f"unknown rule id(s): {', '.join(sorted(unknown))}\n")
            out.write(f"known: {', '.join(sorted(known))}\n")
            return 2
        rules = [rule for rule in rules if rule.id in wanted]

    if args.list_rules:
        for rule in rules:
            out.write(f"{rule.id} [{rule.scope}] — {rule.title}\n")
            out.write(f"    {rule.rationale}\n")
        return 0

    try:
        root = Path(args.root).resolve() if args.root else find_repo_root()
    except FileNotFoundError as exc:
        out.write(f"{exc}\n")
        return 2

    start = time.perf_counter()
    project = Project(root)
    findings = run_rules(project, rules)
    elapsed = time.perf_counter() - start

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        out.write(f"wrote {len(findings)} finding(s) to {baseline_path}\n")
        return 0
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    outcome = diff_findings(findings, baseline)

    files_scanned = len(project.files())
    json_report = render_json(outcome, rules, elapsed, files_scanned)
    if args.output:
        Path(args.output).write_text(json_report + "\n", encoding="utf-8")
    if args.json:
        out.write(json_report + "\n")
    else:
        render_text(outcome, rules, elapsed, files_scanned, out)
    return 0 if outcome.ok else 1
