"""Fault-point cross-check: registry, instrumentation and chaos tests.

``testing/faults.py`` declares the named fault points the chaos suite
can arm (``FAULT_POINT_REGISTRY``: name, description, owning module).
Three things must stay in lockstep, and any drift silently erodes the
kill-and-restore guarantees:

* every registered point is **instrumented** — its owning module calls
  ``fault_hit("<name>", ...)``;
* every ``fault_hit``/``arm`` call site names a **registered** point —
  an unregistered string either never fires (``arm`` raises) or is a
  point the registry (and ``engine.health()``) cannot see;
* every registered point is **exercised** — at least one test arms it,
  so the failure mode it models stays chaos-tested.

Deleting a registry entry while call sites remain, or deleting the
last test arming a point, therefore fails the lint run.
"""

from __future__ import annotations

import ast

from typing import TYPE_CHECKING

from repro.analysis.core import Finding, Rule, register
from repro.analysis.rules._ast import call_name, string_arg, walk_calls

if TYPE_CHECKING:
    from repro.analysis.project import Project, SourceFile

FAULTS_MODULE = "src/repro/testing/faults.py"
REGISTRY_NAME = "FAULT_POINT_REGISTRY"


def parse_registry(tree: ast.Module) -> dict[str, dict[str, str]] | None:
    """``{point name: {"description":…, "module":…}}`` from faults.py.

    Returns None when the registry assignment is missing entirely.
    Entries are ``FaultPoint(name, description, module)`` constructor
    calls (positional or keyword); non-literal entries are skipped.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == REGISTRY_NAME for t in targets):
            continue
        entries: dict[str, dict[str, str]] = {}
        value = node.value
        elts = value.elts if isinstance(value, (ast.Tuple, ast.List)) else []
        for elt in elts:
            if not isinstance(elt, ast.Call):
                continue
            fields = {}
            for pos, field_name in enumerate(("name", "description", "module")):
                arg: ast.AST | None = elt.args[pos] if len(elt.args) > pos else None
                if arg is None:
                    for kw in elt.keywords:
                        if kw.arg == field_name:
                            arg = kw.value
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    fields[field_name] = arg.value
            if "name" in fields:
                entries[fields["name"]] = {
                    "description": fields.get("description", ""),
                    "module": fields.get("module", ""),
                }
        return entries
    return None


def _module_to_path(module: str) -> str:
    return "src/" + module.replace(".", "/") + ".py"


@register
class FaultRegistryRule(Rule):
    id: str = "fault-registry"
    title: str = "fault points: registered ⟺ instrumented ⟺ chaos-tested"
    rationale: str = (
        "the chaos suite only proves recovery for fault points that exist in "
        "the registry, fire in production code, and are armed by a test; any "
        "one-sided edit quietly drops a failure mode from coverage"
    )
    scope: str = "project"

    def check_project(self, project: Project) -> list[Finding]:
        faults = project.file(FAULTS_MODULE)
        if faults is None or faults.tree is None:
            return [
                self.finding(
                    FAULTS_MODULE, 0, "fault-point registry module is missing or unparseable"
                )
            ]
        registry = parse_registry(faults.tree)
        if registry is None:
            return [
                self.finding(
                    FAULTS_MODULE,
                    0,
                    f"{REGISTRY_NAME} not found — the machine-readable fault-point "
                    "registry is the single source of truth for arm(), health() "
                    "and this check",
                )
            ]
        findings: list[Finding] = []

        # production instrumentation: fault_hit("X") call sites
        hit_sites: dict[str, list[tuple[str, int]]] = {}
        for source in project.iter_prefix("src/repro"):
            tree = source.tree
            if tree is None or source.rel == FAULTS_MODULE:
                continue
            for call in walk_calls(tree):
                if call_name(call) != "fault_hit":
                    continue
                name = string_arg(call)
                if name is not None:
                    hit_sites.setdefault(name, []).append((source.rel, call.lineno))

        # test arming: arm("X") call sites
        armed: dict[str, list[tuple[str, int]]] = {}
        for source in project.test_files():
            tree = source.tree
            if tree is None:
                continue
            for call in walk_calls(tree):
                if call_name(call) != "arm":
                    continue
                name = string_arg(call)
                if name is not None:
                    armed.setdefault(name, []).append((source.rel, call.lineno))

        for name, info in sorted(registry.items()):
            sites = hit_sites.get(name, [])
            if not sites:
                findings.append(
                    self.finding(
                        FAULTS_MODULE,
                        0,
                        f"fault point {name!r} is registered but no src module calls "
                        f"fault_hit({name!r}, ...) — it can never fire",
                        symbol=name,
                    )
                )
            else:
                owner = _module_to_path(info["module"]) if info["module"] else ""
                if owner and all(rel != owner for rel, __ in sites):
                    where = ", ".join(sorted({rel for rel, __ in sites}))
                    findings.append(
                        self.finding(
                            FAULTS_MODULE,
                            0,
                            f"fault point {name!r} declares owning module "
                            f"{info['module']!r} but fires from {where} — fix the "
                            "registry's module field",
                            symbol=name,
                        )
                    )
            if name not in armed:
                findings.append(
                    self.finding(
                        FAULTS_MODULE,
                        0,
                        f"fault point {name!r} is registered but no test arms it — "
                        "its failure mode is not chaos-tested",
                        symbol=name,
                    )
                )

        for name, sites in sorted(hit_sites.items()):
            if name not in registry:
                rel, line = sites[0]
                findings.append(
                    self.finding(
                        rel,
                        line,
                        f"fault_hit({name!r}, ...) names an unregistered fault point — "
                        f"add it to {REGISTRY_NAME} with a description and owner",
                        symbol=name,
                    )
                )
        for name, sites in sorted(armed.items()):
            if name not in registry:
                rel, line = sites[0]
                findings.append(
                    self.finding(
                        rel,
                        line,
                        f"arm({name!r}, ...) names an unregistered fault point — the "
                        "test would raise before proving anything",
                        symbol=name,
                    )
                )
        return findings
