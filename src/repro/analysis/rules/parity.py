"""Parity coverage: every mode knob keeps its reference pinned by tests.

Every performance path in this repo earned its keep by reproducing a
retained reference byte-for-byte: ``pipeline="rebuild"``,
``drain="sequential"``, ``suggest="scalar"``, ``learner="exact"``,
``shards=0``. Those references only stay honest while tests keep
*pinning* them — constructing a run with the reference value and
comparing it against the optimised default. If the last test naming a
reference value disappears (or the knob itself is dropped from
``GDRConfig``), the byte-identity contract is unenforced and future
divergence lands silently. This rule fails the lint run in both cases.

The knob spec below is the contract; growing a new mode knob means
adding it here together with its parity test.
"""

from __future__ import annotations

import ast

from typing import TYPE_CHECKING

from repro.analysis.core import Finding, Rule, register
from repro.analysis.rules._ast import walk_calls

if TYPE_CHECKING:
    from repro.analysis.project import Project, SourceFile

GDR_MODULE = "src/repro/core/gdr.py"
CONFIG_CLASS = "GDRConfig"

#: knob -> the retained reference value a parity test must pin.
REFERENCE_KNOBS: dict[str, object] = {
    "pipeline": "rebuild",
    "drain": "sequential",
    "suggest": "scalar",
    "learner": "exact",
    "shards": 0,
}


def config_fields(tree: ast.Module) -> set[str] | None:
    """Field names of the GDRConfig dataclass (None if class missing)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            fields: set[str] = set()
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    fields.add(stmt.target.id)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            fields.add(target.id)
            return fields
    return None


def _matches(value: object, reference: object) -> bool:
    if isinstance(reference, bool) or isinstance(value, bool):
        return value is reference
    return type(value) is type(reference) and value == reference


@register
class ParityCoverageRule(Rule):
    id: str = "parity-coverage"
    title: str = "every GDRConfig mode knob keeps a test pinning its reference value"
    rationale: str = (
        "the optimised default of each mode knob is only trusted because a test "
        "runs the retained reference value against it; losing that test (or the "
        "knob) lets the byte-identity contract rot unenforced"
    )
    scope: str = "project"

    def check_project(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        gdr = project.file(GDR_MODULE)
        fields: set[str] | None = None
        if gdr is None or gdr.tree is None:
            findings.append(
                self.finding(GDR_MODULE, 0, "GDRConfig module missing or unparseable")
            )
        else:
            fields = config_fields(gdr.tree)
            if fields is None:
                findings.append(
                    self.finding(
                        GDR_MODULE, 0, f"class {CONFIG_CLASS} not found in {GDR_MODULE}"
                    )
                )

        pinned: dict[str, list[str]] = {knob: [] for knob in REFERENCE_KNOBS}
        for source in project.test_files():
            tree = source.tree
            if tree is None:
                continue
            # local helper signatures: parity tests often thread the knob
            # through a `_run(mode, ...)` helper positionally
            local_params: dict[str, list[str]] = {}
            for node in ast.walk(tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local_params[node.name] = [a.arg for a in node.args.args]
            for call in walk_calls(tree):
                for kw in call.keywords:
                    if kw.arg in REFERENCE_KNOBS and isinstance(kw.value, ast.Constant):
                        if _matches(kw.value.value, REFERENCE_KNOBS[kw.arg]):
                            pinned[kw.arg].append(source.rel)
                if isinstance(call.func, ast.Name) and call.func.id in local_params:
                    params = local_params[call.func.id]
                    for index, arg in enumerate(call.args):
                        if index >= len(params) or not isinstance(arg, ast.Constant):
                            continue
                        knob = params[index]
                        if knob in REFERENCE_KNOBS and _matches(
                            arg.value, REFERENCE_KNOBS[knob]
                        ):
                            pinned[knob].append(source.rel)

        for knob, reference in REFERENCE_KNOBS.items():
            if fields is not None and knob not in fields:
                findings.append(
                    self.finding(
                        GDR_MODULE,
                        0,
                        f"mode knob {knob!r} is in the parity spec but not a "
                        f"{CONFIG_CLASS} field — if the knob was retired on purpose, "
                        "retire it from REFERENCE_KNOBS in the same PR",
                        symbol=knob,
                    )
                )
                continue
            if not pinned[knob]:
                findings.append(
                    self.finding(
                        GDR_MODULE,
                        0,
                        f"no test pins the reference value {knob}={reference!r} — the "
                        "byte-identity contract for this knob is unenforced",
                        symbol=knob,
                    )
                )
        return findings
