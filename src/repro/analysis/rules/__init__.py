"""The repolint rule battery.

Importing this package registers every rule in
:data:`repro.analysis.core.RULES`. Each module is one contract; see
``docs/repolint.md`` for the catalog with rationale and the disable
syntax.
"""

from repro.analysis.rules import (  # noqa: F401  - import for registration
    cache_discipline,
    determinism,
    fault_points,
    parity,
    shm_lifecycle,
    spawn_safety,
)

__all__ = [
    "cache_discipline",
    "determinism",
    "fault_points",
    "parity",
    "shm_lifecycle",
    "spawn_safety",
]
