"""Determinism: no wall clocks or unseeded randomness in core paths.

Kill-and-restore replay (PR 6) and every byte-identical parity
reference depend on the engine being a pure function of ``(instance,
rules, config, oracle answers)``. A single ``time.time()`` feeding a
decision, or a module-global RNG draw, silently breaks deterministic
re-execution — the failure only shows up later as a replay divergence
that is miserable to bisect. This rule bans the sources of
nondeterminism at their call sites in ``core/``, ``constraints/``,
``repair/`` and ``ml/``.

Allowed by design:

* ``time.perf_counter`` / ``time.monotonic`` — telemetry timing never
  feeds a decision; the benches and worker timing sections use them.
* ``numpy.random.default_rng(seed)`` / ``random.Random(seed)`` *with*
  a seed argument — explicitly seeded generators are the sanctioned
  randomness.
"""

from __future__ import annotations

import ast

from typing import TYPE_CHECKING

from repro.analysis.core import Finding, Rule, register
from repro.analysis.rules._ast import (
    build_parents,
    enclosing_symbol,
    import_map,
    resolve_dotted,
    walk_calls,
)

if TYPE_CHECKING:
    from repro.analysis.project import Project, SourceFile

#: src/repro subpackages under the byte-identical replay contract.
CORE_PREFIXES = (
    "src/repro/core/",
    "src/repro/constraints/",
    "src/repro/repair/",
    "src/repro/ml/",
)

#: Always-banned canonical callables.
BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "clock/MAC-derived id",
    "uuid.uuid4": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.randbelow": "OS entropy",
}

#: numpy.random members that construct (seedable) generators.
_NP_RANDOM_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "MT19937",
}

#: Constructors that must receive an explicit seed argument.
_SEED_REQUIRED = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "random.Random",
}


@register
class DeterminismRule(Rule):
    id: str = "determinism"
    title: str = "no wall clocks or unseeded RNG in replay-contract packages"
    rationale: str = (
        "core/, constraints/, repair/ and ml/ must stay deterministic so "
        "kill-and-restore replay and the parity references hold byte-for-byte"
    )
    scope: str = "file"

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        if not source.rel.startswith(CORE_PREFIXES):
            return []
        tree = source.tree
        if tree is None:
            return []
        imports = import_map(tree)
        parents = build_parents(tree)
        findings: list[Finding] = []

        def add(node: ast.AST, message: str) -> None:
            findings.append(
                self.finding(
                    source.rel,
                    getattr(node, "lineno", 0),
                    message,
                    symbol=enclosing_symbol(node, parents),
                )
            )

        for call in walk_calls(tree):
            name = resolve_dotted(call.func, imports)
            if name is None:
                continue
            reason = BANNED_CALLS.get(name)
            if reason is not None:
                add(call, f"{name}() is nondeterministic ({reason}); core paths must replay byte-identically")
                continue
            if name in _SEED_REQUIRED:
                if not call.args and not call.keywords:
                    add(call, f"{name}() without a seed draws from OS entropy; pass the session seed")
                continue
            if name.startswith("numpy.random."):
                member = name[len("numpy.random.") :]
                if member not in _NP_RANDOM_CONSTRUCTORS:
                    add(
                        call,
                        f"{name}() uses the module-global numpy RNG; construct a "
                        "seeded numpy.random.default_rng(seed) instead",
                    )
                continue
            if name.startswith("random.") and name.count(".") == 1:
                member = name.split(".", 1)[1]
                if member not in {"Random"}:
                    add(
                        call,
                        f"{name}() uses the process-global stdlib RNG; construct a "
                        "seeded random.Random(seed) instead",
                    )
        return findings
