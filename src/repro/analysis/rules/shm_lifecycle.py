"""Shm lifecycle: every shared-memory acquisition has a visible release.

A POSIX shared-memory segment outlives the Python objects that forgot
it: a ``SharedMemory(create=True)`` (or a ``share_column_store`` arena)
leaked on an error path stays in ``/dev/shm`` until reboot, and a
worker-side attach leaked mid-setup pins pages for the life of the
process. This rule requires every function that acquires a segment
(``SharedMemory``, ``share_column_store``, ``attach_matrix``) to show a
release construct the reader can point at:

* the acquisition sits in a ``with`` item, **or**
* the function contains a ``try`` whose ``except`` or ``finally``
  invokes a release method (``close``/``unlink``/``detach``/
  ``shutdown``/``release``) — a visible failure-path release, **or**
* the function is a pure factory: its last statement directly
  ``return``\\ s the acquisition call (ownership transfers whole; no
  code runs between acquire and return).

When the handle lands in a ``self`` attribute, the owning class must
additionally define a release method, so some caller *can* free it.
The contract is deliberately syntactic — it cannot prove every path
releases, but it guarantees each acquiring function carries an
explicit release an auditor (and the chaos suite) can exercise.
"""

from __future__ import annotations

import ast

from typing import TYPE_CHECKING

from repro.analysis.core import Finding, Rule, register
from repro.analysis.rules._ast import build_parents, enclosing_symbol

if TYPE_CHECKING:
    from repro.analysis.project import Project, SourceFile

_ACQUIRERS = {"SharedMemory", "share_column_store", "attach_matrix"}
_RELEASE_METHODS = {"close", "unlink", "detach", "shutdown", "release"}


def _is_acquirer_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
    return name in _ACQUIRERS


def _calls_release(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _RELEASE_METHODS:
                return True
    return False


def _has_guarded_release(fn: ast.AST) -> bool:
    """A try whose except-handler or finally invokes a release method."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            if any(_calls_release(stmt) for stmt in handler.body):
                return True
        if any(_calls_release(stmt) for stmt in node.finalbody):
            return True
    return False


def _is_pure_factory(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    call: ast.Call,
    parents: dict[ast.AST, ast.AST],
) -> bool:
    """The acquisition is the value of the function's final return."""
    cursor = parents.get(call)
    if not isinstance(cursor, ast.Return):
        return False
    return fn.body and fn.body[-1] is cursor


def _in_with_item(call: ast.Call, parents: dict[ast.AST, ast.AST]) -> bool:
    cursor = parents.get(call)
    while cursor is not None and not isinstance(
        cursor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    ):
        if isinstance(cursor, ast.withitem):
            return True
        cursor = parents.get(cursor)
    return False


def _assigns_to_self(call: ast.Call, parents: dict[ast.AST, ast.AST]) -> bool:
    cursor = parents.get(call)
    if isinstance(cursor, (ast.Assign, ast.AnnAssign)):
        targets = cursor.targets if isinstance(cursor, ast.Assign) else [cursor.target]
        for target in targets:
            for node in ast.walk(target):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    return True
    return False


def _enclosing_function(
    call: ast.Call, parents: dict[ast.AST, ast.AST]
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    cursor = parents.get(call)
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cursor
        cursor = parents.get(cursor)
    return None


def _enclosing_class(fn: ast.AST, parents: dict[ast.AST, ast.AST]) -> ast.ClassDef | None:
    cursor = parents.get(fn)
    while cursor is not None:
        if isinstance(cursor, ast.ClassDef):
            return cursor
        cursor = parents.get(cursor)
    return None


def _class_defines_release(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name in _RELEASE_METHODS or stmt.name == "__exit__":
                return True
    return False


@register
class ShmLifecycleRule(Rule):
    id: str = "shm-lifecycle"
    title: str = "shared-memory acquisitions carry an explicit release path"
    rationale: str = (
        "a leaked POSIX segment survives the process (/dev/shm fills until "
        "reboot); every acquiring function must show a with-block, a "
        "try/except-or-finally release, or be a pure factory return"
    )
    scope: str = "file"

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        if not source.rel.startswith("src/repro/"):
            return []
        tree = source.tree
        if tree is None:
            return []
        parents = build_parents(tree)
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not _is_acquirer_call(node):
                continue
            # definition sites, not call sites: `def share_column_store`
            fn = _enclosing_function(node, parents)
            if fn is None:
                continue  # module-level acquisition: left to import-time review
            if _in_with_item(node, parents):
                continue
            if _is_pure_factory(fn, node, parents):
                continue
            symbol = enclosing_symbol(node, parents)
            if _assigns_to_self(node, parents):
                cls = _enclosing_class(fn, parents)
                if cls is not None:
                    if _class_defines_release(cls):
                        # ownership transfers to the instance; the class's
                        # release method is the explicit release path
                        continue
                    findings.append(
                        self.finding(
                            source.rel,
                            node.lineno,
                            f"{cls.name} stores a shared-memory handle but defines no "
                            "release method (close/detach/shutdown/release/__exit__)",
                            symbol=symbol,
                        )
                    )
                    continue
            if not _has_guarded_release(fn):
                findings.append(
                    self.finding(
                        source.rel,
                        node.lineno,
                        f"{fn.name}() acquires shared memory with no failure-path "
                        "release: wrap the post-acquisition steps in try/except (or "
                        "finally) that closes/unlinks the segment, or use a with block",
                        symbol=symbol,
                    )
                )
        return findings
