"""Shared AST utilities for the rule implementations."""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "build_parents",
    "call_name",
    "dotted_name",
    "enclosing_symbol",
    "import_map",
    "resolve_dotted",
    "walk_calls",
]


def import_map(tree: ast.Module) -> dict[str, str]:
    """Map of local alias -> canonical dotted module/object path.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy.random import default_rng`` ->
    ``{"default_rng": "numpy.random.default_rng"}``. Only module-level
    imports are considered — the conventions this repo enforces all use
    module-level imports, and function-local imports of banned modules
    still resolve through their (module-level) canonical names at the
    call site when aliased identically.
    """
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    out[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def dotted_name(node: ast.AST) -> list[str] | None:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]`` (None if not one)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def resolve_dotted(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Canonical dotted path of an expression, via the import map.

    ``np.random.default_rng`` -> ``"numpy.random.default_rng"``. Heads
    that are not imported names resolve to None (locals, attributes of
    ``self`` — never flagged).
    """
    parts = dotted_name(node)
    if not parts:
        return None
    head = imports.get(parts[0])
    if head is None:
        return None
    return ".".join([head, *parts[1:]])


def call_name(node: ast.Call) -> str | None:
    """Trailing name of a call target: ``a.b.c()`` -> ``"c"``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def build_parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent map for flow-ish checks."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def enclosing_symbol(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> str:
    """Dotted class/function path enclosing *node* (may be empty)."""
    names: list[str] = []
    cursor = parents.get(node)
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.append(cursor.name)
        cursor = parents.get(cursor)
    return ".".join(reversed(names))


def string_arg(node: ast.Call, index: int = 0) -> str | None:
    """The call's positional arg *index* when it is a string constant."""
    if len(node.args) > index:
        arg = node.args[index]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None
