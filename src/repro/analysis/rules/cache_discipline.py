"""Cache discipline: memos must be stamped, bounded and observable.

Every incremental structure in this repo is a bet that a cached value
still describes the live database. The conventions that keep the bet
safe (PRs 2–8):

* **stamped** — entries (or the whole memo) are validated against a
  version counter that moves when the underlying data moves
  (``db.version``, ``attr_stats_version``, ``stats_epoch``, arena
  generations);
* **bounded** — a capacity cap with a defined overflow policy, so a
  million-tuple session cannot grow a memo without limit;
* **observable** — a ``stats`` counter surface, so the benches, the
  invariant guard and ``engine.health()`` can see hit rates and
  occupancy instead of guessing.

This rule finds cache-holding classes — any class assigning a
dict-valued ``self.*_memo`` / ``self.*_cache`` attribute, or any class
named ``*Cache`` / ``*Memo`` holding dict state — and reports each
missing aspect. It also bans ``functools.lru_cache`` / ``cache`` in
``src/repro``: process-global memos leak across engines and datasets
sharing one process (the PR 5 lesson that motivated the engine-owned
``SimilarityCache``).

A cache of a *pure* function (same inputs, same value, forever) has
nothing to stamp; suppress the stamp finding on the class line with a
justification comment.
"""

from __future__ import annotations

import ast
import re

from typing import TYPE_CHECKING

from repro.analysis.core import Finding, Rule, register
from repro.analysis.rules._ast import import_map, resolve_dotted

if TYPE_CHECKING:
    from repro.analysis.project import Project, SourceFile

_ATTR_RE = re.compile(r"(_memo|_cache)s?$")
_CLASS_RE = re.compile(r"(Cache|Memo)$")

_STAMP_TOKENS = ("version", "epoch", "stamp", "generation")
_BOUND_TOKENS = ("capacity", "maxsize")

_DICT_FACTORIES = {"dict", "OrderedDict", "defaultdict", "Counter"}

_GLOBAL_MEMO_DECORATORS = {"functools.lru_cache", "functools.cache"}


def _is_dict_valued(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        return name in _DICT_FACTORIES
    return False


def _identifier_tokens(cls: ast.ClassDef) -> set[str]:
    """Every identifier mentioned anywhere in the class body, lowercased."""
    tokens: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Name):
            tokens.add(node.id.lower())
        elif isinstance(node, ast.Attribute):
            tokens.add(node.attr.lower())
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            tokens.add(node.name.lower())
        elif isinstance(node, ast.arg):
            tokens.add(node.arg.lower())
    return tokens


def _has_token(tokens: set[str], needles: tuple[str, ...]) -> bool:
    return any(any(needle in token for needle in needles) for token in tokens)


def _defines_stats(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == "stats":
            return True
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr == "stats"
                ):
                    return True
    return False


def _cache_attrs(cls: ast.ClassDef) -> list[tuple[str, int]]:
    """``(attribute name, line)`` of dict-valued self.*_memo/_cache assigns."""
    out: list[tuple[str, int]] = []
    seen: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        else:
            continue
        if not _is_dict_valued(value):
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and _ATTR_RE.search(target.attr)
                and target.attr not in seen
            ):
                seen.add(target.attr)
                out.append((target.attr, node.lineno))
    return out


def _holds_dict_state(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        else:
            continue
        if not _is_dict_valued(value):
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return True
    return False


@register
class CacheDisciplineRule(Rule):
    id: str = "cache-discipline"
    title: str = "memos must be version-stamped, capacity-bounded and expose stats"
    rationale: str = (
        "an unstamped memo serves stale values after the database moves; an "
        "unbounded one grows without limit at scale; an unobservable one hides "
        "both failures from health() and the benches"
    )
    scope: str = "file"

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        if not source.rel.startswith("src/repro/"):
            return []
        tree = source.tree
        if tree is None:
            return []
        findings: list[Finding] = []
        findings.extend(self._check_global_memos(source, tree))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    # ------------------------------------------------------------------
    def _check_global_memos(self, source: SourceFile, tree: ast.Module) -> list[Finding]:
        imports = import_map(tree)
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in node.decorator_list:
                target = decorator.func if isinstance(decorator, ast.Call) else decorator
                name = resolve_dotted(target, imports)
                if name in _GLOBAL_MEMO_DECORATORS:
                    findings.append(
                        self.finding(
                            source.rel,
                            decorator.lineno,
                            f"{name} is a process-global memo: it leaks entries across "
                            "engines and datasets sharing one process; use an "
                            "engine-owned bounded cache instead",
                            symbol=node.name,
                        )
                    )
        return findings

    def _check_class(self, source: SourceFile, cls: ast.ClassDef) -> list[Finding]:
        attrs = _cache_attrs(cls)
        cache_like = bool(attrs) or (_CLASS_RE.search(cls.name) and _holds_dict_state(cls))
        if not cache_like:
            return []
        held = ", ".join(name for name, __ in attrs) or "dict state"
        tokens = _identifier_tokens(cls)
        findings: list[Finding] = []
        if not _has_token(tokens, _STAMP_TOKENS):
            findings.append(
                self.finding(
                    source.rel,
                    cls.lineno,
                    f"cache-holding class {cls.name} ({held}) references no "
                    "version/epoch/stamp/generation — entries cannot be validated "
                    "against the live database (suppress with a justification if "
                    "the cached function is pure)",
                    symbol=cls.name,
                )
            )
        if not _has_token(tokens, _BOUND_TOKENS):
            findings.append(
                self.finding(
                    source.rel,
                    cls.lineno,
                    f"cache-holding class {cls.name} ({held}) references no "
                    "capacity/maxsize bound — the memo can grow without limit",
                    symbol=cls.name,
                )
            )
        if not _defines_stats(cls):
            findings.append(
                self.finding(
                    source.rel,
                    cls.lineno,
                    f"cache-holding class {cls.name} ({held}) exposes no `stats` "
                    "counters — hit rates and occupancy are invisible to health() "
                    "and the benches",
                    symbol=cls.name,
                )
            )
        return findings
