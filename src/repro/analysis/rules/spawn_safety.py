"""Spawn safety: worker entry points and payloads must survive pickling.

The shard pool (``core/parallel.py``) uses the *spawn* start method —
the only one that is fork-safe next to NumPy and threads — which means
a worker's ``target`` is located by import: it must be a module-level
function. A lambda, a nested function or a bound method either fails
immediately under spawn or, worse, works under fork in one environment
and dies in CI. The same goes for payloads: anything routed through
``send``/``request``/``submit``-style dispatch must be
picklable-by-construction, so function objects do not belong in
messages at all.
"""

from __future__ import annotations

import ast

from typing import TYPE_CHECKING

from repro.analysis.core import Finding, Rule, register
from repro.analysis.rules._ast import build_parents, enclosing_symbol

if TYPE_CHECKING:
    from repro.analysis.project import Project, SourceFile

_DISPATCH_METHODS = {"send", "request", "submit", "apply_async", "map_async"}


def _module_level_callables(tree: ast.Module) -> set[str]:
    """Names importable from the module: top-level defs, classes, imports."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                names.add(alias.asname or alias.name)
    return names


def _nested_callables(tree: ast.Module) -> set[str]:
    """Names of defs nested inside functions (not importable by spawn)."""
    nested: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(inner.name)
    return nested


@register
class SpawnSafetyRule(Rule):
    id: str = "spawn-safety"
    title: str = "spawned targets are module-level; dispatch payloads carry no functions"
    rationale: str = (
        "the shard pool uses the spawn start method: workers import their "
        "target by name and unpickle every message — lambdas, nested defs and "
        "function-bearing payloads fail at dispatch time (or only in CI)"
    )
    scope: str = "file"

    def check_file(self, source: SourceFile, project: Project) -> list[Finding]:
        if not source.rel.startswith("src/repro/"):
            return []
        tree = source.tree
        if tree is None:
            return []
        module_level = _module_level_callables(tree)
        nested = _nested_callables(tree)
        parents = build_parents(tree)
        findings: list[Finding] = []

        def add(node: ast.AST, message: str) -> None:
            findings.append(
                self.finding(
                    source.rel,
                    getattr(node, "lineno", 0),
                    message,
                    symbol=enclosing_symbol(node, parents),
                )
            )

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
            if name == "Process":
                target = next((kw.value for kw in node.keywords if kw.arg == "target"), None)
                if target is None:
                    continue
                if isinstance(target, ast.Lambda):
                    add(target, "Process target is a lambda — not importable under spawn")
                elif isinstance(target, ast.Name):
                    if target.id in nested and target.id not in module_level:
                        add(
                            target,
                            f"Process target {target.id!r} is a nested function — "
                            "spawn imports targets by name; hoist it to module level",
                        )
                elif isinstance(target, ast.Attribute):
                    chain_head = target.value
                    if isinstance(chain_head, ast.Name) and chain_head.id == "self":
                        add(
                            target,
                            f"Process target self.{target.attr} is a bound method — "
                            "spawn workers must start from a module-level function",
                        )
                # payload args must not carry function objects
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Lambda):
                            add(sub, "Process args contain a lambda — unpicklable payload")
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _DISPATCH_METHODS
            ):
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Lambda):
                            add(
                                sub,
                                f".{func.attr}(...) payload contains a lambda — "
                                "dispatch messages must be picklable-by-construction",
                            )
        return findings
