"""Project model: the parsed source tree repolint passes over.

A :class:`Project` owns the file set (``src/repro/`` + ``tests/`` by
default), hands out lazily parsed :class:`SourceFile`\\ s and runs the
registered rules. Tests construct projects over synthetic trees (or
over the real repo with *overrides*/*excludes*) to prove each rule
fires and each contract-removal breaks the lint run.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Mapping
from pathlib import Path

from repro.analysis.core import Finding, Rule, Suppressions, all_rules

__all__ = ["Project", "SourceFile", "find_repo_root", "run_rules"]

#: Directory prefixes (repo-relative, posix) scanned by default.
DEFAULT_PREFIXES = ("src/repro", "tests")

_SKIP_PARTS = {"__pycache__", ".git", ".pytest_cache"}


class SourceFile:
    """One Python file: text, lazily built AST, suppressions."""

    def __init__(self, rel: str, text: str) -> None:
        self.rel = rel  # repo-relative posix path
        self.text = text
        self._tree: ast.Module | None = None
        self._parse_error: SyntaxError | None = None
        self._parsed = False
        self._suppressions: Suppressions | None = None

    @property
    def tree(self) -> ast.Module | None:
        """Parsed module, or None when the file does not parse."""
        if not self._parsed:
            self._parsed = True
            try:
                self._tree = ast.parse(self.text, filename=self.rel)
            except SyntaxError as exc:
                self._parse_error = exc
        return self._tree

    @property
    def parse_error(self) -> SyntaxError | None:
        self.tree  # noqa: B018 - force the parse
        return self._parse_error

    @property
    def suppressions(self) -> Suppressions:
        if self._suppressions is None:
            self._suppressions = Suppressions.parse(self.text)
        return self._suppressions

    def is_test(self) -> bool:
        return self.rel.startswith("tests/")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SourceFile({self.rel!r})"


class Project:
    """The file set one repolint run passes over.

    Parameters
    ----------
    root:
        Repository root (the directory holding ``src/`` and ``tests/``).
    prefixes:
        Repo-relative directory prefixes to scan.
    overrides:
        ``{rel path: text}`` replacing (or adding) file contents —
        lets tests lint a hypothetical edit of the real tree without
        touching disk.
    excludes:
        Repo-relative paths to pretend do not exist — lets tests prove
        that *removing* a contract (a parity test, a registry entry)
        makes the lint run fail.
    """

    def __init__(
        self,
        root: str | Path,
        prefixes: Iterable[str] = DEFAULT_PREFIXES,
        overrides: Mapping[str, str] | None = None,
        excludes: Iterable[str] = (),
    ) -> None:
        self.root = Path(root).resolve()
        self.prefixes = tuple(prefixes)
        self._files: dict[str, SourceFile] = {}
        excluded = set(excludes)
        for rel in self._discover():
            if rel in excluded:
                continue
            text = (self.root / rel).read_text(encoding="utf-8")
            self._files[rel] = SourceFile(rel, text)
        if overrides:
            for rel, text in overrides.items():
                if rel in excluded:
                    continue
                self._files[rel] = SourceFile(rel, text)

    def _discover(self) -> list[str]:
        out: list[str] = []
        for prefix in self.prefixes:
            base = self.root / prefix
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                if _SKIP_PARTS.intersection(path.parts):
                    continue
                out.append(path.relative_to(self.root).as_posix())
        return out

    # ------------------------------------------------------------------
    def files(self) -> list[SourceFile]:
        """Every file, sorted by repo-relative path."""
        return [self._files[rel] for rel in sorted(self._files)]

    def file(self, rel: str) -> SourceFile | None:
        """Lookup one file by repo-relative path (None when absent)."""
        return self._files.get(rel)

    def iter_prefix(self, prefix: str) -> Iterator[SourceFile]:
        """Files under one repo-relative directory prefix."""
        if not prefix.endswith("/"):
            prefix += "/"
        for rel in sorted(self._files):
            if rel.startswith(prefix):
                yield self._files[rel]

    def test_files(self) -> Iterator[SourceFile]:
        return self.iter_prefix("tests")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Project({self.root}, {len(self._files)} files)"


def run_rules(project: Project, rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Run rules over the project; suppressed findings are dropped.

    Per-file rules see every file; project rules run once. Findings
    come back sorted by ``(path, line, rule)`` so reports and baselines
    are deterministic.
    """
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for rule in active:
        if rule.scope == "project":
            findings.extend(rule.check_project(project))
        else:
            for source in project.files():
                findings.extend(rule.check_file(source, project))
    kept = []
    for finding in findings:
        source = project.file(finding.path)
        if source is not None and source.suppressions.suppresses(finding):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return kept


def find_repo_root(start: str | Path | None = None) -> Path:
    """Locate the repository root.

    Walks up from *start* (default: cwd) looking for a directory that
    holds ``src/repro``; falls back to the root this package is
    installed under (four parents up: ``src/repro/analysis/project.py``).
    """
    probe = Path(start) if start is not None else Path.cwd()
    probe = probe.resolve()
    for candidate in (probe, *probe.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    packaged = Path(__file__).resolve().parents[3]
    if (packaged / "src" / "repro").is_dir():
        return packaged
    raise FileNotFoundError(
        f"cannot locate a repository root (src/repro) from {probe}"
    )
