"""CART decision-tree classifier (gini impurity, threshold splits).

A from-scratch replacement for the WEKA trees the paper uses inside its
random forest. Feature subsampling at every split (``max_features``)
provides the extra randomisation Breiman's forest requires.

The implementation is array-based: nodes live in parallel numpy arrays
and prediction walks them iteratively, so deep trees cannot hit Python
recursion limits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, NotFittedError

__all__ = ["DecisionTreeClassifier"]

_LEAF = -1


def _resolve_max_features(max_features, n_features: int) -> int:
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ConfigError(f"max_features fraction must be in (0, 1], got {max_features}")
        return max(1, int(max_features * n_features))
    if isinstance(max_features, int):
        if max_features < 1:
            raise ConfigError(f"max_features must be >= 1, got {max_features}")
        return min(max_features, n_features)
    raise ConfigError(f"unsupported max_features: {max_features!r}")


class DecisionTreeClassifier:
    """Binary-split classification tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` = unbounded).
    min_samples_split:
        Smallest node that may still be split.
    min_samples_leaf:
        Smallest admissible child size.
    max_features:
        Features considered per split: ``None`` (all), ``"sqrt"``,
        ``"log2"``, an int, or a float fraction.
    random_state:
        Seed or :class:`numpy.random.Generator` controlling feature
        subsampling.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0], [1.0], [2.0], [3.0]])
    >>> y = np.array([0, 0, 1, 1])
    >>> tree = DecisionTreeClassifier().fit(X, y)
    >>> tree.predict(np.array([[0.5], [2.5]])).tolist()
    [0, 1]
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state=None,
    ) -> None:
        if min_samples_split < 2:
            raise ConfigError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ConfigError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if max_depth is not None and max_depth < 1:
            raise ConfigError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(random_state)
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray, n_classes: int | None = None):
        """Grow the tree on ``X (n, m)`` and integer labels ``y (n,)``.

        Returns ``self`` for chaining. ``n_classes`` fixes the width of
        probability outputs (defaults to ``max(y) + 1``).
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2:
            raise ConfigError(f"X must be 2-D, got shape {X.shape}")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ConfigError(f"y shape {y.shape} incompatible with X shape {X.shape}")
        if X.shape[0] == 0:
            raise ConfigError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        self.n_classes_ = n_classes if n_classes is not None else int(y.max()) + 1
        k = _resolve_max_features(self.max_features, self.n_features_)

        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        counts: list[np.ndarray] = []

        def new_node(class_counts: np.ndarray) -> int:
            features.append(_LEAF)
            thresholds.append(0.0)
            lefts.append(_LEAF)
            rights.append(_LEAF)
            counts.append(class_counts)
            return len(features) - 1

        n_total = X.shape[0]
        importances = np.zeros(self.n_features_, dtype=np.float64)
        root_counts = np.bincount(y, minlength=self.n_classes_)
        stack: list[tuple[int, np.ndarray, int]] = [(new_node(root_counts), np.arange(len(y)), 0)]
        while stack:
            node, idx, depth = stack.pop()
            node_counts = counts[node]
            if (
                len(idx) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or int(np.count_nonzero(node_counts)) <= 1
            ):
                continue
            split = self._best_split(X, y, idx, k)
            if split is None:
                continue
            feature, threshold, left_idx, right_idx, gain = split
            importances[feature] += gain * len(idx) / n_total
            features[node] = feature
            thresholds[node] = threshold
            left_counts = np.bincount(y[left_idx], minlength=self.n_classes_)
            right_counts = node_counts - left_counts
            left = new_node(left_counts)
            right = new_node(right_counts)
            lefts[node] = left
            rights[node] = right
            stack.append((left, left_idx, depth + 1))
            stack.append((right, right_idx, depth + 1))

        self._feature = np.array(features, dtype=np.int64)
        self._threshold = np.array(thresholds, dtype=np.float64)
        self._left = np.array(lefts, dtype=np.int64)
        self._right = np.array(rights, dtype=np.int64)
        count_matrix = np.vstack(counts).astype(np.float64)
        totals = count_matrix.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        self._proba = count_matrix / totals
        total_importance = importances.sum()
        if total_importance > 0.0:
            importances /= total_importance
        self._importances = importances
        self._fitted = True
        return self

    def _best_split(self, X, y, idx, k):
        """Best gini split over a random subsample of k features."""
        n = len(idx)
        parent_counts = np.bincount(y[idx], minlength=self.n_classes_)
        parent_gini = 1.0 - np.sum((parent_counts / n) ** 2)
        if parent_gini <= 0.0:
            return None
        best_gain = 1e-12
        best = None
        n_feat = self.n_features_
        candidates = (
            self._rng.permutation(n_feat)[:k] if k < n_feat else np.arange(n_feat)
        )
        one_hot = np.zeros((n, self.n_classes_), dtype=np.float64)
        one_hot[np.arange(n), y[idx]] = 1.0
        for feature in candidates:
            column = X[idx, feature]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            boundaries = np.nonzero(sorted_vals[1:] != sorted_vals[:-1])[0]
            if boundaries.size == 0:
                continue
            cum = np.cumsum(one_hot[order], axis=0)
            left_sizes = boundaries + 1
            valid = (left_sizes >= self.min_samples_leaf) & (
                n - left_sizes >= self.min_samples_leaf
            )
            if not np.any(valid):
                continue
            boundaries = boundaries[valid]
            left_sizes = left_sizes[valid]
            left_counts = cum[boundaries]
            right_counts = parent_counts - left_counts
            right_sizes = n - left_sizes
            gini_left = 1.0 - np.sum((left_counts / left_sizes[:, None]) ** 2, axis=1)
            gini_right = 1.0 - np.sum((right_counts / right_sizes[:, None]) ** 2, axis=1)
            weighted = (left_sizes * gini_left + right_sizes * gini_right) / n
            gains = parent_gini - weighted
            best_pos = int(np.argmax(gains))
            if gains[best_pos] > best_gain:
                boundary = boundaries[best_pos]
                threshold = 0.5 * (sorted_vals[boundary] + sorted_vals[boundary + 1])
                left_idx = idx[order[: boundary + 1]]
                right_idx = idx[order[boundary + 1 :]]
                best_gain = gains[best_pos]
                best = (int(feature), float(threshold), left_idx, right_idx, float(best_gain))
        return best

    # ------------------------------------------------------------------
    def _leaf_of(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("DecisionTreeClassifier.predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self._feature[nodes] != _LEAF
        while np.any(active):
            current = nodes[active]
            feats = self._feature[current]
            go_left = X[active, feats] <= self._threshold[current]
            nodes[active] = np.where(go_left, self._left[current], self._right[current])
            active = self._feature[nodes] != _LEAF
        return nodes

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-class leaf frequencies, shape ``(n, n_classes)``."""
        if not self._fitted:
            raise NotFittedError("DecisionTreeClassifier.predict_proba called before fit")
        return self._proba[self._leaf_of(X)]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most frequent class of the reached leaf, shape ``(n,)``."""
        return np.argmax(self.predict_proba(X), axis=1)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalised impurity-decrease importance per feature."""
        if not self._fitted:
            raise NotFittedError("tree not fitted")
        return self._importances.copy()

    @property
    def node_count(self) -> int:
        """Number of nodes in the grown tree."""
        if not self._fitted:
            raise NotFittedError("tree not fitted")
        return len(self._feature)

    @property
    def depth(self) -> int:
        """Depth of the grown tree (0 = single leaf)."""
        if not self._fitted:
            raise NotFittedError("tree not fitted")
        depths = np.zeros(len(self._feature), dtype=np.int64)
        best = 0
        for node in range(len(self._feature)):
            if self._feature[node] != _LEAF:
                for child in (self._left[node], self._right[node]):
                    depths[child] = depths[node] + 1
                    best = max(best, int(depths[child]))
        return best
