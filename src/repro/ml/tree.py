"""CART decision-tree classifier (gini impurity, threshold splits).

A from-scratch replacement for the WEKA trees the paper uses inside its
random forest. Feature subsampling at every split (``max_features``)
provides the extra randomisation Breiman's forest requires.

The implementation is array-based: nodes live in parallel numpy arrays
and prediction walks them iteratively, so deep trees cannot hit Python
recursion limits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, NotFittedError
from repro.ml.binning import BinnedMatrix, bin_matrix

__all__ = ["DecisionTreeClassifier", "HistogramTreeClassifier"]

_LEAF = -1

# vocabulary cutoff for the fused histogram pass: features with more
# distinct values (similarity floats) use the node-compact path instead,
# so histogram allocations never scale with global vocabulary size
_HIST_MAX_BINS = 256


def _resolve_max_features(max_features, n_features: int) -> int:
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ConfigError(f"max_features fraction must be in (0, 1], got {max_features}")
        return max(1, int(max_features * n_features))
    if isinstance(max_features, int):
        if max_features < 1:
            raise ConfigError(f"max_features must be >= 1, got {max_features}")
        return min(max_features, n_features)
    raise ConfigError(f"unsupported max_features: {max_features!r}")


class DecisionTreeClassifier:
    """Binary-split classification tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` = unbounded).
    min_samples_split:
        Smallest node that may still be split.
    min_samples_leaf:
        Smallest admissible child size.
    max_features:
        Features considered per split: ``None`` (all), ``"sqrt"``,
        ``"log2"``, an int, or a float fraction.
    random_state:
        Seed or :class:`numpy.random.Generator` controlling feature
        subsampling.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0], [1.0], [2.0], [3.0]])
    >>> y = np.array([0, 0, 1, 1])
    >>> tree = DecisionTreeClassifier().fit(X, y)
    >>> tree.predict(np.array([[0.5], [2.5]])).tolist()
    [0, 1]
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state=None,
    ) -> None:
        if min_samples_split < 2:
            raise ConfigError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ConfigError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if max_depth is not None and max_depth < 1:
            raise ConfigError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(random_state)
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray, n_classes: int | None = None):
        """Grow the tree on ``X (n, m)`` and integer labels ``y (n,)``.

        Returns ``self`` for chaining. ``n_classes`` fixes the width of
        probability outputs (defaults to ``max(y) + 1``).
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2:
            raise ConfigError(f"X must be 2-D, got shape {X.shape}")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ConfigError(f"y shape {y.shape} incompatible with X shape {X.shape}")
        if X.shape[0] == 0:
            raise ConfigError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        self.n_classes_ = n_classes if n_classes is not None else int(y.max()) + 1
        k = _resolve_max_features(self.max_features, self.n_features_)

        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        counts: list[np.ndarray] = []

        def new_node(class_counts: np.ndarray) -> int:
            features.append(_LEAF)
            thresholds.append(0.0)
            lefts.append(_LEAF)
            rights.append(_LEAF)
            counts.append(class_counts)
            return len(features) - 1

        n_total = X.shape[0]
        importances = np.zeros(self.n_features_, dtype=np.float64)
        root_counts = np.bincount(y, minlength=self.n_classes_)
        stack: list[tuple[int, np.ndarray, int]] = [(new_node(root_counts), np.arange(len(y)), 0)]
        while stack:
            node, idx, depth = stack.pop()
            node_counts = counts[node]
            if (
                len(idx) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or int(np.count_nonzero(node_counts)) <= 1
            ):
                continue
            split = self._best_split(X, y, idx, k)
            if split is None:
                continue
            feature, threshold, left_idx, right_idx, gain = split
            importances[feature] += gain * len(idx) / n_total
            features[node] = feature
            thresholds[node] = threshold
            left_counts = np.bincount(y[left_idx], minlength=self.n_classes_)
            right_counts = node_counts - left_counts
            left = new_node(left_counts)
            right = new_node(right_counts)
            lefts[node] = left
            rights[node] = right
            stack.append((left, left_idx, depth + 1))
            stack.append((right, right_idx, depth + 1))

        self._finalize(
            features, thresholds, lefts, rights, counts, importances,
            n_features=self.n_features_, n_classes=self.n_classes_,
        )
        return self

    def _finalize(
        self, features, thresholds, lefts, rights, counts, importances,
        n_features: int, n_classes: int,
    ) -> None:
        """Freeze grown node lists into the fitted array representation."""
        self.n_features_ = n_features
        self.n_classes_ = n_classes
        self._feature = np.array(features, dtype=np.int64)
        self._threshold = np.array(thresholds, dtype=np.float64)
        self._left = np.array(lefts, dtype=np.int64)
        self._right = np.array(rights, dtype=np.int64)
        count_matrix = np.vstack(counts).astype(np.float64)
        totals = count_matrix.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        self._proba = count_matrix / totals
        total_importance = importances.sum()
        if total_importance > 0.0:
            importances /= total_importance
        self._importances = importances
        self._fitted = True

    def _best_split(self, X, y, idx, k):
        """Best gini split over a random subsample of k features."""
        n = len(idx)
        parent_counts = np.bincount(y[idx], minlength=self.n_classes_)
        parent_gini = 1.0 - np.sum((parent_counts / n) ** 2)
        if parent_gini <= 0.0:
            return None
        best_gain = 1e-12
        best = None
        n_feat = self.n_features_
        candidates = (
            self._rng.permutation(n_feat)[:k] if k < n_feat else np.arange(n_feat)
        )
        one_hot = np.zeros((n, self.n_classes_), dtype=np.float64)
        one_hot[np.arange(n), y[idx]] = 1.0
        for feature in candidates:
            column = X[idx, feature]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            boundaries = np.nonzero(sorted_vals[1:] != sorted_vals[:-1])[0]
            if boundaries.size == 0:
                continue
            cum = np.cumsum(one_hot[order], axis=0)
            left_sizes = boundaries + 1
            valid = (left_sizes >= self.min_samples_leaf) & (
                n - left_sizes >= self.min_samples_leaf
            )
            if not np.any(valid):
                continue
            boundaries = boundaries[valid]
            left_sizes = left_sizes[valid]
            left_counts = cum[boundaries]
            right_counts = parent_counts - left_counts
            right_sizes = n - left_sizes
            gini_left = 1.0 - np.sum((left_counts / left_sizes[:, None]) ** 2, axis=1)
            gini_right = 1.0 - np.sum((right_counts / right_sizes[:, None]) ** 2, axis=1)
            weighted = (left_sizes * gini_left + right_sizes * gini_right) / n
            gains = parent_gini - weighted
            best_pos = int(np.argmax(gains))
            if gains[best_pos] > best_gain:
                boundary = boundaries[best_pos]
                threshold = 0.5 * (sorted_vals[boundary] + sorted_vals[boundary + 1])
                left_idx = idx[order[: boundary + 1]]
                right_idx = idx[order[boundary + 1 :]]
                best_gain = gains[best_pos]
                best = (int(feature), float(threshold), left_idx, right_idx, float(best_gain))
        return best

    # ------------------------------------------------------------------
    def _leaf_of(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("DecisionTreeClassifier.predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self._feature[nodes] != _LEAF
        while np.any(active):
            current = nodes[active]
            feats = self._feature[current]
            go_left = X[active, feats] <= self._threshold[current]
            nodes[active] = np.where(go_left, self._left[current], self._right[current])
            active = self._feature[nodes] != _LEAF
        return nodes

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-class leaf frequencies, shape ``(n, n_classes)``."""
        if not self._fitted:
            raise NotFittedError("DecisionTreeClassifier.predict_proba called before fit")
        return self._proba[self._leaf_of(X)]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most frequent class of the reached leaf, shape ``(n,)``."""
        return np.argmax(self.predict_proba(X), axis=1)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalised impurity-decrease importance per feature."""
        if not self._fitted:
            raise NotFittedError("tree not fitted")
        return self._importances.copy()

    @property
    def node_count(self) -> int:
        """Number of nodes in the grown tree."""
        if not self._fitted:
            raise NotFittedError("tree not fitted")
        return len(self._feature)

    @property
    def depth(self) -> int:
        """Depth of the grown tree (0 = single leaf).

        One vectorized frontier descent per level — O(depth) numpy
        calls instead of a Python loop over every node.
        """
        if not self._fitted:
            raise NotFittedError("tree not fitted")
        depth = 0
        frontier = np.array([0], dtype=np.int64)
        while True:
            internal = frontier[self._feature[frontier] != _LEAF]
            if internal.size == 0:
                return depth
            frontier = np.concatenate([self._left[internal], self._right[internal]])
            depth += 1


class HistogramTreeClassifier(DecisionTreeClassifier):
    """Histogram-based CART, bit-identical to :class:`DecisionTreeClassifier`.

    Features are rank-encoded once per fit (one bin per distinct value
    — lossless, see :mod:`repro.ml.binning`); each node's split search
    is then **one fused** ``np.bincount`` building the class histograms
    of *all* candidate features simultaneously, with gini scored on
    cumulative histograms vectorized over ``(feature, bin)``. No
    per-node argsort, no per-feature Python loop.

    Bit-parity with the exact-sort reference is a hard contract, not an
    approximation: the RNG stream (one feature-subset permutation per
    split attempt, drawn in the same DFS node order), the split
    arithmetic (identical float64 operation sequences on identical
    integer counts), the tie-breaks (first-max argmax per feature,
    first strictly-greater across candidates) and the thresholds
    (midpoint of the node's two adjacent distinct values, reconstructed
    from the bin tables) all reproduce the reference exactly, so the
    two classifiers grow *identical trees*. The per-*node* (rather than
    per-level) histogram pass is forced by that contract: the reference
    consumes the RNG in DFS order, which a level-synchronous pass
    cannot replay. The parity suite asserts node-array equality on
    randomized inputs.
    """

    def fit(self, X: np.ndarray, y: np.ndarray, n_classes: int | None = None):
        """Bin ``X`` (lossless) and grow the tree; returns ``self``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2:
            raise ConfigError(f"X must be 2-D, got shape {X.shape}")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ConfigError(f"y shape {y.shape} incompatible with X shape {X.shape}")
        if X.shape[0] == 0:
            raise ConfigError("cannot fit on an empty dataset")
        return self.fit_binned(bin_matrix(X), y, n_classes=n_classes)

    def fit_binned(
        self, binned: BinnedMatrix, y: np.ndarray, n_classes: int | None = None
    ):
        """Grow the tree from a pre-binned matrix (shared across a forest)."""
        y = np.asarray(y, dtype=np.int64)
        if y.ndim != 1 or y.shape[0] != binned.n_rows:
            raise ConfigError(
                f"y shape {y.shape} incompatible with binned matrix of {binned.n_rows} rows"
            )
        if binned.n_rows == 0:
            raise ConfigError("cannot fit on an empty dataset")
        self.n_features_ = binned.n_features
        self.n_classes_ = n_classes if n_classes is not None else int(y.max()) + 1
        k = _resolve_max_features(self.max_features, self.n_features_)

        # feature-major code layout: one gather per node grabs the
        # (candidates x node rows) submatrix for the fused histogram
        codes_t = np.ascontiguousarray(binned.codes.T)
        bins_per_feat = np.array([len(v) for v in binned.bin_values], dtype=np.intp)

        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        counts: list[np.ndarray] = []

        def new_node(class_counts: np.ndarray) -> int:
            features.append(_LEAF)
            thresholds.append(0.0)
            lefts.append(_LEAF)
            rights.append(_LEAF)
            counts.append(class_counts)
            return len(features) - 1

        n_total = binned.n_rows
        importances = np.zeros(self.n_features_, dtype=np.float64)
        root_counts = np.bincount(y, minlength=self.n_classes_)
        stack: list[tuple[int, np.ndarray, int]] = [
            (new_node(root_counts), np.arange(n_total), 0)
        ]
        while stack:
            node, idx, depth = stack.pop()
            node_counts = counts[node]
            if (
                len(idx) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or int(np.count_nonzero(node_counts)) <= 1
            ):
                continue
            split = self._best_split_hist(
                codes_t, y, idx, k, node_counts, binned.bin_values, bins_per_feat
            )
            if split is None:
                continue
            feature, threshold, left_idx, right_idx, gain, left_counts = split
            importances[feature] += gain * len(idx) / n_total
            features[node] = feature
            thresholds[node] = threshold
            right_counts = node_counts - left_counts
            left = new_node(left_counts)
            right = new_node(right_counts)
            lefts[node] = left
            rights[node] = right
            stack.append((left, left_idx, depth + 1))
            stack.append((right, right_idx, depth + 1))

        self._finalize(
            features, thresholds, lefts, rights, counts, importances,
            n_features=self.n_features_, n_classes=self.n_classes_,
        )
        return self

    def _best_split_hist(self, codes_t, y, idx, k, node_counts, bin_values, bins_per_feat):
        """Fused best-gini split over a random subsample of k features.

        Low-vocabulary candidates (``<= _HIST_MAX_BINS`` distinct
        values — every dictionary-code column) are scored by ONE fused
        ``bincount`` building all their per-bin class histograms at
        once. High-vocabulary candidates (similarity floats, whose bin
        tables scale with the training size) fall back to a
        node-compact counting pass: histogram over the values *present
        in the node* only, so deep nodes never pay a vocabulary-sized
        memset. Both paths produce the same integer count sequences the
        exact path derives from sorted one-hot prefixes and score them
        with the same float64 operation order, so gains — and therefore
        the grown tree — are bit-identical to the reference.
        """
        n = len(idx)
        # node_counts equals bincount(y[idx]): maintained by the parent
        # split, so the reference's per-node recount is skipped
        parent_gini = 1.0 - np.sum((node_counts / n) ** 2)
        if parent_gini <= 0.0:
            return None
        n_feat = self.n_features_
        candidates = (
            self._rng.permutation(n_feat)[:k] if k < n_feat else np.arange(n_feat)
        )
        n_classes = self.n_classes_
        msl = self.min_samples_leaf
        y_node = y[idx]
        sub = codes_t[np.ix_(candidates, idx)]  # (k, n) bin codes
        cand_bins = bins_per_feat[candidates]
        k_eff = len(candidates)
        best_gains = np.full(k_eff, -np.inf)
        best_bound = np.zeros(k_eff, dtype=np.intp)

        hist_rows = np.nonzero(cand_bins <= _HIST_MAX_BINS)[0]
        cum = bin_totals = None
        if hist_rows.size:
            kh = len(hist_rows)
            n_bins = int(cand_bins[hist_rows].max())
            stride = n_bins * n_classes
            flat = sub[hist_rows].astype(np.intp) * n_classes
            flat += y_node
            flat += (np.arange(kh, dtype=np.intp) * stride)[:, None]
            hist = np.bincount(flat.ravel(), minlength=kh * stride).reshape(
                kh, n_bins, n_classes
            )
            cum = hist.cumsum(axis=1)  # (kh, bins, classes) left class counts
            left_sizes = cum.sum(axis=2)
            bin_totals = hist.sum(axis=2)
            # a split boundary sits after every *distinct node value*
            # except the last — every non-empty, non-final bin
            valid = (
                (bin_totals > 0)
                & (left_sizes < n)
                & (left_sizes >= msl)
                & (n - left_sizes >= msl)
            )
            if valid.any():
                safe_left = np.where(left_sizes > 0, left_sizes, 1)
                right_sizes = n - left_sizes
                safe_right = np.where(right_sizes > 0, right_sizes, 1)
                gini_left = 1.0 - np.sum((cum / safe_left[:, :, None]) ** 2, axis=2)
                right_counts = node_counts[None, None, :] - cum
                gini_right = 1.0 - np.sum(
                    (right_counts / safe_right[:, :, None]) ** 2, axis=2
                )
                weighted = (left_sizes * gini_left + right_sizes * gini_right) / n
                gains = parent_gini - weighted
                gains[~valid] = -np.inf
                bb = np.argmax(gains, axis=1)  # first max per feature
                best_gains[hist_rows] = gains[np.arange(kh), bb]
                best_bound[hist_rows] = bb

        large_info: dict[int, tuple[np.ndarray, int, np.ndarray]] = {}
        for i in np.nonzero(cand_bins > _HIST_MAX_BINS)[0]:
            present, inverse = np.unique(sub[i], return_inverse=True)
            if present.size < 2:
                continue
            hist_f = np.bincount(
                inverse * n_classes + y_node, minlength=present.size * n_classes
            ).reshape(present.size, n_classes)
            cum_f = np.cumsum(hist_f, axis=0)[:-1]
            left_sizes_f = cum_f.sum(axis=1)
            valid_f = (left_sizes_f >= msl) & (n - left_sizes_f >= msl)
            if not valid_f.any():
                continue
            right_sizes_f = n - left_sizes_f
            gini_left_f = 1.0 - np.sum((cum_f / left_sizes_f[:, None]) ** 2, axis=1)
            right_counts_f = node_counts[None, :] - cum_f
            gini_right_f = 1.0 - np.sum(
                (right_counts_f / right_sizes_f[:, None]) ** 2, axis=1
            )
            gains_f = parent_gini - (
                left_sizes_f * gini_left_f + right_sizes_f * gini_right_f
            ) / n
            gains_f[~valid_f] = -np.inf
            pos_f = int(np.argmax(gains_f))
            best_gains[i] = gains_f[pos_f]
            large_info[i] = (present, pos_f, cum_f[pos_f].copy())

        # first candidate holding the overall max = the reference's
        # strictly-greater sweep in candidate order
        pos = int(np.argmax(best_gains))
        best_gain = float(best_gains[pos])
        if not best_gain > 1e-12:
            return None
        feature = int(candidates[pos])
        values = bin_values[feature]
        if pos in large_info:
            present, pos_f, left_counts = large_info[pos]
            boundary = int(present[pos_f])
            after = int(present[pos_f + 1])
        else:
            hp = int(np.searchsorted(hist_rows, pos))
            boundary = int(best_bound[pos])
            nonempty = np.nonzero(bin_totals[hp])[0]
            after = int(nonempty[int(np.searchsorted(nonempty, boundary)) + 1])
            left_counts = cum[hp, boundary].copy()
        threshold = 0.5 * (values[boundary] + values[after])
        left_mask = sub[pos] <= boundary
        left_idx = idx[left_mask]
        right_idx = idx[~left_mask]
        return feature, float(threshold), left_idx, right_idx, best_gain, left_counts
