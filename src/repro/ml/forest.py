"""Random-forest committee classifier (Breiman 2001, paper §4.2).

The paper builds, per attribute, a WEKA random forest of ``k = 10``
trees: each tree is grown on a bootstrap sample and restricts every
split to a random feature subset. The committee's *vote fractions*
drive both the prediction (majority vote) and the active-learning
uncertainty score (entropy of the fractions, base #classes).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, NotFittedError
from repro.ml.metrics import vote_entropy
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bagged committee of :class:`DecisionTreeClassifier` trees.

    Parameters
    ----------
    n_estimators:
        Committee size ``k`` (paper default 10).
    max_depth, min_samples_leaf:
        Per-tree growth limits.
    max_features:
        Features sampled per split (default ``"sqrt"``).
    bootstrap_fraction:
        Bootstrap sample size as a fraction of ``n`` (sampled with
        replacement; the paper's ``N' < N``).
    random_state:
        Seed or generator; trees receive independent child seeds.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0], [0.2], [2.0], [2.2]] * 5)
    >>> y = np.array([0, 0, 1, 1] * 5)
    >>> forest = RandomForestClassifier(n_estimators=5, random_state=7).fit(X, y)
    >>> forest.predict(np.array([[0.1], [2.1]])).tolist()
    [0, 1]
    """

    def __init__(
        self,
        n_estimators: int = 10,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap_fraction: float = 1.0,
        random_state=None,
    ) -> None:
        if n_estimators < 1:
            raise ConfigError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < bootstrap_fraction <= 1.0:
            raise ConfigError(f"bootstrap_fraction must be in (0, 1], got {bootstrap_fraction}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap_fraction = bootstrap_fraction
        self._rng = np.random.default_rng(random_state)
        self._trees: list[DecisionTreeClassifier] = []
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray, n_classes: int | None = None):
        """Grow the committee; returns ``self``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ConfigError(f"X must be a non-empty 2-D array, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ConfigError(f"y shape {y.shape} incompatible with X shape {X.shape}")
        self.n_classes_ = n_classes if n_classes is not None else int(y.max()) + 1
        n = X.shape[0]
        sample_size = max(1, int(round(self.bootstrap_fraction * n)))
        self._trees = []
        for _ in range(self.n_estimators):
            sample = self._rng.integers(0, n, size=sample_size)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=self._rng.integers(0, 2**32 - 1),
            )
            tree.fit(X[sample], y[sample], n_classes=self.n_classes_)
            self._trees.append(tree)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def vote_fractions(self, X: np.ndarray) -> np.ndarray:
        """Fraction of committee members voting each class, ``(n, C)``."""
        if not self._fitted:
            raise NotFittedError("RandomForestClassifier used before fit")
        X = np.asarray(X, dtype=np.float64)
        votes = np.zeros((X.shape[0], self.n_classes_), dtype=np.float64)
        for tree in self._trees:
            predictions = tree.predict(X)
            votes[np.arange(X.shape[0]), predictions] += 1.0
        return votes / len(self._trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote class labels, shape ``(n,)``."""
        return np.argmax(self.vote_fractions(X), axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Alias of :meth:`vote_fractions` (hard-vote probabilities)."""
        return self.vote_fractions(X)

    def uncertainty(self, X: np.ndarray) -> np.ndarray:
        """Committee disagreement per sample: vote entropy in [0, 1]."""
        fractions = self.vote_fractions(X)
        return np.array([vote_entropy(row, self.n_classes_) for row in fractions])

    def predict_one(self, features: np.ndarray) -> tuple[int, np.ndarray, float]:
        """Classify one sample: ``(label, vote fractions, uncertainty)``."""
        fractions = self.vote_fractions(features.reshape(1, -1))[0]
        label = int(np.argmax(fractions))
        return label, fractions, vote_entropy(fractions, self.n_classes_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean normalised impurity-decrease importance per feature."""
        if not self._fitted:
            raise NotFittedError("RandomForestClassifier used before fit")
        stacked = np.vstack([tree.feature_importances_ for tree in self._trees])
        return stacked.mean(axis=0)

    @property
    def trees(self) -> list[DecisionTreeClassifier]:
        """The fitted committee members."""
        if not self._fitted:
            raise NotFittedError("RandomForestClassifier used before fit")
        return list(self._trees)
