"""Random-forest committee classifier (Breiman 2001, paper §4.2).

The paper builds, per attribute, a WEKA random forest of ``k = 10``
trees: each tree is grown on a bootstrap sample and restricts every
split to a random feature subset. The committee's *vote fractions*
drive both the prediction (majority vote) and the active-learning
uncertainty score (entropy of the fractions, base #classes).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, NotFittedError
from repro.ml.binning import BinnedMatrix, bin_matrix
from repro.ml.metrics import vote_entropy
from repro.ml.tree import (
    _HIST_MAX_BINS,
    _LEAF,
    DecisionTreeClassifier,
    HistogramTreeClassifier,
    _resolve_max_features,
)

__all__ = ["HistogramForestClassifier", "RandomForestClassifier"]


class _TreeState:
    """Growth state of one committee member inside the batched grower."""

    __slots__ = (
        "rng", "n_total", "features", "thresholds", "lefts", "rights",
        "counts", "nnz", "imp_feats", "imp_vals", "stack",
    )

    def __init__(self, rng, sample: np.ndarray, y: np.ndarray, n_feat: int, n_classes: int) -> None:
        self.rng = rng
        self.n_total = len(sample)
        self.features: list[int] = []
        self.thresholds: list[float] = []
        self.lefts: list[int] = []
        self.rights: list[int] = []
        self.counts: list[np.ndarray] = []
        # distinct-class count per node, maintained at creation so the
        # purity gate at pop time is a plain int compare
        self.nnz: list[int] = []
        # per-split importance contributions, accumulated at the end in
        # split order — the same float64 addition sequence as the
        # reference's per-split in-place adds
        self.imp_feats: list[int] = []
        self.imp_vals: list[float] = []
        root_counts = np.bincount(y[sample], minlength=n_classes)
        root = self.new_node(root_counts, int(np.count_nonzero(root_counts)))
        # node index sets are GLOBAL row ids into the shared binned
        # matrix, so batch gathers never go through a per-tree remap
        self.stack: list[tuple[int, np.ndarray, int]] = [(root, sample, 0)]

    def new_node(self, class_counts: np.ndarray, nonzero: int) -> int:
        self.features.append(_LEAF)
        self.thresholds.append(0.0)
        self.lefts.append(_LEAF)
        self.rights.append(_LEAF)
        self.counts.append(class_counts)
        self.nnz.append(nonzero)
        return len(self.features) - 1


def _grow_forest_batched(
    binned: BinnedMatrix,
    y: np.ndarray,
    samples: list[np.ndarray],
    seeds: list[int],
    n_classes: int,
    max_depth: int | None,
    min_samples_split: int,
    min_samples_leaf: int,
    max_features,
) -> list[tuple[list, list, list, list, list, np.ndarray]]:
    """Grow every tree of the committee simultaneously, bit-identically.

    Each round pops ONE pending node from every tree's DFS stack and
    scores all of them with one fused histogram pass. Per-tree state —
    the RNG stream, the DFS pop order, node numbering, every float64
    operation a node's split search performs — is exactly what
    :meth:`HistogramTreeClassifier.fit_binned` (and therefore the
    exact-sort reference) would produce tree by tree; batching only
    amortises the per-node numpy dispatch overhead across the
    committee. Returns per-tree ``(features, thresholds, lefts,
    rights, counts, importances)``.
    """
    codes_t = np.ascontiguousarray(binned.codes.T).astype(np.int64)
    bins_per_feat = np.array([len(v) for v in binned.bin_values], dtype=np.intp)
    # flattened bin-value table: threshold lookups for a whole round
    # become two gathers instead of per-member ragged indexing
    values_flat = np.concatenate(binned.bin_values)
    value_offsets = np.concatenate(
        [[0], np.cumsum(bins_per_feat)[:-1]]
    )
    n_feat = binned.n_features
    k = _resolve_max_features(max_features, n_feat)
    C = n_classes
    msl = min_samples_leaf
    all_features = np.arange(n_feat)
    # one fixed histogram width per fit: the rectangles stay tiny (the
    # large-vocabulary features are excluded), and every per-round
    # shape computation disappears
    n_bins = max(
        (int(b) for b in bins_per_feat if b <= _HIST_MAX_BINS), default=1
    )
    has_large = bool((bins_per_feat > _HIST_MAX_BINS).any())
    slot_offsets = np.arange(k) * (n_bins * C)
    bins_arange = np.arange(n_bins)
    row_base = n_bins * C * k

    states = [
        _TreeState(np.random.default_rng(seed), sample, y, n_feat, C)
        for sample, seed in zip(samples, seeds)
    ]
    pending = list(states)
    b_arange_all = np.arange(len(states))
    arange_cache = np.arange(0, dtype=np.int64)
    # empty leading bins divide by a zero left size; those lanes are
    # masked as invalid before any value is consumed
    old_err = np.seterr(divide="ignore", invalid="ignore")
    while pending:
        if any(not st.stack for st in pending):
            pending = [st for st in pending if st.stack]
        active: list[tuple[_TreeState, int, np.ndarray, int, np.ndarray]] = []
        cands: list[np.ndarray] = []
        for st in pending:
            # drain leaves eagerly: the leaf gate draws no RNG, so
            # popping past them keeps the per-tree draw order intact
            # while guaranteeing every member contributes one real
            # split search per round
            while st.stack:
                node, idx, depth = st.stack.pop()
                # purity (nnz <= 1) implies parent gini exactly 0, and
                # nnz >= 2 implies gini > 0 in float64 — so this gate
                # is the reference's leaf checks AND its gini <= 0
                # bailout
                if (
                    len(idx) < min_samples_split
                    or (max_depth is not None and depth >= max_depth)
                    or st.nnz[node] <= 1
                ):
                    continue
                cands.append(
                    st.rng.permutation(n_feat)[:k] if k < n_feat else all_features
                )
                active.append((st, node, idx, depth, st.counts[node]))
                break
        if not active:
            continue
        B = len(active)
        counts_mat = np.concatenate([m[4] for m in active]).reshape(B, C)
        sizes = np.array([len(m[2]) for m in active], dtype=np.int64)
        parent_gini = 1.0 - ((counts_mat / sizes[:, None]) ** 2).sum(axis=1)

        cand_mat = np.concatenate(cands).reshape(B, k)
        if has_large:
            slot_large = bins_per_feat[cand_mat] > _HIST_MAX_BINS
            any_large = bool(slot_large.any())
        else:
            any_large = False
        # row-major pair layout: row r of the round owns pair slots
        # r*k .. r*k+k-1, one per candidate — all pair arrays are built
        # with round-level repeats, no per-member loop
        idx_cat = np.concatenate([m[2] for m in active])
        total_rows = len(idx_cat)
        if arange_cache.size < total_rows:
            arange_cache = np.arange(
                max(total_rows, 2 * arange_cache.size), dtype=np.int64
            )
        row_member = np.repeat(b_arange_all[:B], sizes)
        row_starts = np.empty(B + 1, dtype=np.int64)
        row_starts[0] = 0
        np.cumsum(sizes, out=row_starts[1:])
        R = np.repeat(idx_cat, k)
        F = cand_mat[row_member].ravel()
        codes_pairs = codes_t[F, R]
        y_cat = y[idx_cat]
        if any_large:
            # clamp large-vocabulary slots to bin 0: they are scored by
            # the node-compact path below, not the fused histogram
            hist_codes = np.where(slot_large[row_member].ravel(), 0, codes_pairs)
        else:
            hist_codes = codes_pairs
        # flat histogram index, built row-wise: a row's class label and
        # slot offsets broadcast over its k pair slots
        flat = row_member * row_base + y_cat
        flat = flat[:, None] + slot_offsets
        flat += hist_codes.reshape(-1, k) * C
        hist = np.bincount(flat.ravel(), minlength=B * row_base).reshape(B, k, n_bins, C)
        cum = hist.cumsum(axis=2)  # (B, k, bins, C) left class counts
        bin_totals = hist.sum(axis=3)
        left_sizes = bin_totals.cumsum(axis=2)
        nb = sizes[:, None, None]
        if msl > 1:
            valid = (
                (bin_totals > 0)
                & (left_sizes < nb)
                & (left_sizes >= msl)
                & (nb - left_sizes >= msl)
            )
        else:
            # min_samples_leaf == 1: both leaf-size bounds are implied
            # by "non-empty, non-final bin"
            valid = (bin_totals > 0) & (left_sizes < nb)
        if any_large:
            valid &= ~slot_large[:, :, None]
        # invalid lanes (zero left/right sizes) divide to nan/inf and
        # are overwritten below; valid lanes divide by positive sizes,
        # so their float64 values match the reference exactly
        right_sizes = nb - left_sizes
        gini_left = 1.0 - ((cum / left_sizes[..., None]) ** 2).sum(axis=3)
        right_counts = counts_mat[:, None, None, :] - cum
        gini_right = 1.0 - ((right_counts / right_sizes[..., None]) ** 2).sum(axis=3)
        weighted = (left_sizes * gini_left + right_sizes * gini_right) / nb
        gains = parent_gini[:, None, None] - weighted
        gains = np.where(valid, gains, -np.inf)
        bb = gains.argmax(axis=2)  # (B, k) first-max bin per slot
        slot_best = gains.max(axis=2)

        large_best: dict[tuple[int, int], tuple[np.ndarray, int, np.ndarray]] = {}
        if any_large:
            for b, j in zip(*np.nonzero(slot_large)):
                b, j = int(b), int(j)
                s0, s1 = row_starts[b], row_starts[b + 1]
                col = codes_pairs[s0 * k + j:s1 * k:k]
                present, inverse = np.unique(col, return_inverse=True)
                if present.size < 2:
                    continue
                n = int(sizes[b])
                hist_f = np.bincount(
                    inverse * C + y_cat[s0:s1], minlength=present.size * C
                ).reshape(present.size, C)
                cum_f = hist_f.cumsum(axis=0)[:-1]
                ls = cum_f.sum(axis=1)
                valid_f = (ls >= msl) & (n - ls >= msl)
                if not valid_f.any():
                    continue
                rs = n - ls
                gl = 1.0 - ((cum_f / ls[:, None]) ** 2).sum(axis=1)
                rc = counts_mat[b][None, :] - cum_f
                gr = 1.0 - ((rc / rs[:, None]) ** 2).sum(axis=1)
                gains_f = parent_gini[b] - (ls * gl + rs * gr) / n
                gains_f[~valid_f] = -np.inf
                pos_f = int(gains_f.argmax())
                slot_best[b, j] = gains_f[pos_f]
                large_best[(b, j)] = (present, pos_f, cum_f[pos_f].copy())

        # first slot holding the overall max = the reference's
        # strictly-greater sweep in candidate order
        win = slot_best.argmax(axis=1)
        b_arange = b_arange_all[:B]
        best_gain = slot_best[b_arange, win]
        split_mask = best_gain > 1e-12
        if not split_mask.any():
            continue
        # batched winner decoding: boundary bin, next non-empty bin,
        # midpoint threshold, left partition, child class counts —
        # large-slot winners are patched from the compact path
        boundary_arr = bb[b_arange, win]
        win_totals = bin_totals[b_arange, win]  # (B, n_bins)
        beyond = bins_arange[None, :] > boundary_arr[:, None]
        after_arr = ((win_totals > 0) & beyond).argmax(axis=1)
        left_counts_mat = cum[b_arange, win, boundary_arr]  # (B, C)
        if large_best:
            for (b, j), (present, pos_f, lc) in large_best.items():
                if win[b] == j and split_mask[b]:
                    boundary_arr[b] = present[pos_f]
                    after_arr[b] = present[pos_f + 1]
                    left_counts_mat[b] = lc
        feat_win = cand_mat[b_arange, win]
        offs = value_offsets[feat_win]
        thresholds_arr = 0.5 * (
            values_flat[offs + boundary_arr] + values_flat[offs + after_arr]
        )
        right_counts_mat = counts_mat - left_counts_mat
        left_nnz = (left_counts_mat != 0).sum(axis=1)
        right_nnz = (right_counts_mat != 0).sum(axis=1)
        pair_of_row = arange_cache[:total_rows] * k + win[row_member]
        left_mask_cat = codes_pairs[pair_of_row] <= boundary_arr[row_member]
        right_mask_cat = ~left_mask_cat
        for b in np.nonzero(split_mask)[0].tolist():
            st, node, idx, depth, node_counts = active[b]
            s0, s1 = row_starts[b], row_starts[b + 1]
            left_idx = idx[left_mask_cat[s0:s1]]
            right_idx = idx[right_mask_cat[s0:s1]]
            feature = int(feat_win[b])
            st.imp_feats.append(feature)
            st.imp_vals.append(float(best_gain[b]) * len(idx) / st.n_total)
            st.features[node] = feature
            st.thresholds[node] = float(thresholds_arr[b])
            left = st.new_node(left_counts_mat[b], int(left_nnz[b]))
            right = st.new_node(right_counts_mat[b], int(right_nnz[b]))
            st.lefts[node] = left
            st.rights[node] = right
            st.stack.append((left, left_idx, depth + 1))
            st.stack.append((right, right_idx, depth + 1))
    np.seterr(**old_err)

    grown = []
    for st in states:
        importances = np.zeros(n_feat, dtype=np.float64)
        # unbuffered add in split order: identical accumulation
        # sequence to the reference's per-split in-place adds
        if st.imp_feats:
            np.add.at(importances, st.imp_feats, st.imp_vals)
        grown.append(
            (st.features, st.thresholds, st.lefts, st.rights, st.counts, importances)
        )
    return grown


class RandomForestClassifier:
    """Bagged committee of :class:`DecisionTreeClassifier` trees.

    Parameters
    ----------
    n_estimators:
        Committee size ``k`` (paper default 10).
    max_depth, min_samples_leaf:
        Per-tree growth limits.
    max_features:
        Features sampled per split (default ``"sqrt"``).
    bootstrap_fraction:
        Bootstrap sample size as a fraction of ``n`` (sampled with
        replacement; the paper's ``N' < N``).
    random_state:
        Seed or generator; trees receive independent child seeds.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0], [0.2], [2.0], [2.2]] * 5)
    >>> y = np.array([0, 0, 1, 1] * 5)
    >>> forest = RandomForestClassifier(n_estimators=5, random_state=7).fit(X, y)
    >>> forest.predict(np.array([[0.1], [2.1]])).tolist()
    [0, 1]
    """

    def __init__(
        self,
        n_estimators: int = 10,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap_fraction: float = 1.0,
        random_state=None,
    ) -> None:
        if n_estimators < 1:
            raise ConfigError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < bootstrap_fraction <= 1.0:
            raise ConfigError(f"bootstrap_fraction must be in (0, 1], got {bootstrap_fraction}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap_fraction = bootstrap_fraction
        self._rng = np.random.default_rng(random_state)
        self._trees: list[DecisionTreeClassifier] = []
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray, n_classes: int | None = None):
        """Grow the committee; returns ``self``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ConfigError(f"X must be a non-empty 2-D array, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ConfigError(f"y shape {y.shape} incompatible with X shape {X.shape}")
        self.n_classes_ = n_classes if n_classes is not None else int(y.max()) + 1
        n = X.shape[0]
        sample_size = max(1, int(round(self.bootstrap_fraction * n)))
        self._trees = []
        for _ in range(self.n_estimators):
            sample = self._rng.integers(0, n, size=sample_size)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=self._rng.integers(0, 2**32 - 1),
            )
            tree.fit(X[sample], y[sample], n_classes=self.n_classes_)
            self._trees.append(tree)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def vote_fractions(self, X: np.ndarray) -> np.ndarray:
        """Fraction of committee members voting each class, ``(n, C)``."""
        if not self._fitted:
            raise NotFittedError("RandomForestClassifier used before fit")
        X = np.asarray(X, dtype=np.float64)
        votes = np.zeros((X.shape[0], self.n_classes_), dtype=np.float64)
        for tree in self._trees:
            predictions = tree.predict(X)
            votes[np.arange(X.shape[0]), predictions] += 1.0
        return votes / len(self._trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote class labels, shape ``(n,)``."""
        return np.argmax(self.vote_fractions(X), axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Alias of :meth:`vote_fractions` (hard-vote probabilities)."""
        return self.vote_fractions(X)

    def uncertainty(self, X: np.ndarray) -> np.ndarray:
        """Committee disagreement per sample: vote entropy in [0, 1].

        One array expression over the whole batch (equal to mapping
        :func:`~repro.ml.metrics.vote_entropy` row by row, up to libm
        vs numpy ``log`` rounding in the last ulp).
        """
        fractions = self.vote_fractions(X)
        if self.n_classes_ <= 1:
            return np.zeros(fractions.shape[0], dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(fractions > 0.0, fractions * np.log(fractions), 0.0)
        return -terms.sum(axis=1) / np.log(self.n_classes_) + 0.0

    def predict_one(self, features: np.ndarray) -> tuple[int, np.ndarray, float]:
        """Classify one sample: ``(label, vote fractions, uncertainty)``."""
        fractions = self.vote_fractions(features.reshape(1, -1))[0]
        label = int(np.argmax(fractions))
        return label, fractions, vote_entropy(fractions, self.n_classes_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean normalised impurity-decrease importance per feature."""
        if not self._fitted:
            raise NotFittedError("RandomForestClassifier used before fit")
        stacked = np.vstack([tree.feature_importances_ for tree in self._trees])
        return stacked.mean(axis=0)

    @property
    def trees(self) -> list[DecisionTreeClassifier]:
        """The fitted committee members."""
        if not self._fitted:
            raise NotFittedError("RandomForestClassifier used before fit")
        return list(self._trees)


class HistogramForestClassifier(RandomForestClassifier):
    """Histogram-based committee, bit-identical to the exact reference.

    Two structural changes over :class:`RandomForestClassifier`, zero
    behavioural ones:

    * **fit** bins the training matrix once (losslessly — one bin per
      distinct value) and grows every tree from the shared binned
      matrix, bootstrapping by row index; each tree is a
      :class:`~repro.ml.tree.HistogramTreeClassifier` whose fused
      histogram split search replays the exact CART bit for bit
      (including the RNG stream, so the bootstrap samples, feature
      subsets, and grown trees are *identical* to the reference's).
    * **vote_fractions** walks all trees over the batch simultaneously:
      the committee's node arrays are packed into one arena and a
      single ``(tree, row)`` state matrix descends level-synchronously,
      with votes accumulated by one ``bincount`` — instead of one
      Python-level walk per tree.
    """

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_classes: int | None = None,
        binned: BinnedMatrix | None = None,
    ):
        """Grow the committee from one shared binned matrix.

        *binned*, when given, must be the lossless rank encoding of
        ``X`` (the warm-started learner passes its incrementally
        maintained encoding to skip re-binning); otherwise ``X`` is
        binned here, once for all trees.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ConfigError(f"X must be a non-empty 2-D array, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ConfigError(f"y shape {y.shape} incompatible with X shape {X.shape}")
        self.n_classes_ = n_classes if n_classes is not None else int(y.max()) + 1
        if binned is None:
            binned = bin_matrix(X)
        n = X.shape[0]
        sample_size = max(1, int(round(self.bootstrap_fraction * n)))
        samples: list[np.ndarray] = []
        seeds: list[int] = []
        for _ in range(self.n_estimators):
            # same RNG draw order as the reference: sample, then seed
            samples.append(self._rng.integers(0, n, size=sample_size))
            seeds.append(self._rng.integers(0, 2**32 - 1))
        grown = _grow_forest_batched(
            binned,
            y,
            samples,
            seeds,
            self.n_classes_,
            self.max_depth,
            2,
            self.min_samples_leaf,
            self.max_features,
        )
        self._trees = []
        for seed, (features, thresholds, lefts, rights, counts, importances) in zip(
            seeds, grown
        ):
            tree = HistogramTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=seed,
            )
            tree._finalize(
                features, thresholds, lefts, rights, counts, importances,
                n_features=binned.n_features, n_classes=self.n_classes_,
            )
            self._trees.append(tree)
        self._fitted = True
        self._pack()
        return self

    def _pack(self) -> None:
        """Concatenate the committee's node arrays into one walk arena."""
        sizes = np.array([tree.node_count for tree in self._trees], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        self._arena_roots = offsets
        self._arena_feature = np.concatenate([t._feature for t in self._trees])
        self._arena_threshold = np.concatenate([t._threshold for t in self._trees])
        # child pointers are tree-local; rebase them into the arena
        # (leaf sentinels get rebased too, but leaves are never walked)
        self._arena_left = np.concatenate(
            [t._left + off for t, off in zip(self._trees, offsets)]
        )
        self._arena_right = np.concatenate(
            [t._right + off for t, off in zip(self._trees, offsets)]
        )
        # per-node majority label: argmax over the same proba rows the
        # per-tree reference argmaxes at its reached leaves
        self._arena_label = np.concatenate(
            [np.argmax(t._proba, axis=1) for t in self._trees]
        )

    def vote_fractions(self, X: np.ndarray) -> np.ndarray:
        """Fraction of committee members voting each class, ``(n, C)``.

        One level-synchronous descent of every ``(tree, row)`` pair,
        then one ``bincount`` to accumulate the votes — identical
        output to the per-tree reference walk.
        """
        if not self._fitted:
            raise NotFittedError("RandomForestClassifier used before fit")
        X = np.asarray(X, dtype=np.float64)
        n = X.shape[0]
        n_trees = len(self._trees)
        states = np.repeat(self._arena_roots[:, None], n, axis=1)  # (T, n)
        rows = np.broadcast_to(np.arange(n)[None, :], (n_trees, n))
        active = self._arena_feature[states] != _LEAF
        while active.any():
            current = states[active]
            go_left = (
                X[rows[active], self._arena_feature[current]]
                <= self._arena_threshold[current]
            )
            states[active] = np.where(
                go_left, self._arena_left[current], self._arena_right[current]
            )
            active = self._arena_feature[states] != _LEAF
        labels = self._arena_label[states]  # (T, n)
        flat = rows.ravel() * self.n_classes_ + labels.ravel()
        votes = np.bincount(flat, minlength=n * self.n_classes_)
        return votes.reshape(n, self.n_classes_).astype(np.float64) / n_trees
