"""From-scratch learning substrate: encoders, CART trees, random forests."""

from repro.ml.encoding import (
    FEEDBACK_CLASSES,
    CategoricalEncoder,
    UpdateExampleEncoder,
    feedback_to_class,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy_score, confusion_matrix, entropy, vote_entropy
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "FEEDBACK_CLASSES",
    "CategoricalEncoder",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "UpdateExampleEncoder",
    "accuracy_score",
    "confusion_matrix",
    "entropy",
    "feedback_to_class",
    "vote_entropy",
]
