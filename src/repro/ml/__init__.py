"""From-scratch learning substrate: encoders, CART trees, random forests."""

from repro.ml.binning import BinnedMatrix, bin_matrix
from repro.ml.encoding import (
    FEEDBACK_CLASSES,
    CategoricalEncoder,
    UpdateExampleEncoder,
    feedback_to_class,
)
from repro.ml.forest import HistogramForestClassifier, RandomForestClassifier
from repro.ml.metrics import accuracy_score, confusion_matrix, entropy, vote_entropy
from repro.ml.tree import DecisionTreeClassifier, HistogramTreeClassifier

__all__ = [
    "FEEDBACK_CLASSES",
    "BinnedMatrix",
    "CategoricalEncoder",
    "DecisionTreeClassifier",
    "HistogramForestClassifier",
    "HistogramTreeClassifier",
    "RandomForestClassifier",
    "UpdateExampleEncoder",
    "accuracy_score",
    "bin_matrix",
    "confusion_matrix",
    "entropy",
    "feedback_to_class",
    "vote_entropy",
]
