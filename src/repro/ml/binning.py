"""Lossless per-fit feature binning for the histogram learner stack.

The feedback learner's feature matrices are tiny and categorical-heavy:
dictionary codes for every schema attribute plus one similarity float.
Binning therefore maps each feature to the rank of its value among the
column's *distinct values* — one bin per distinct value, so binning is
**lossless**: the binned matrix plus the per-feature sorted value
arrays carry exactly the information of the raw matrix. That is what
lets :class:`~repro.ml.tree.HistogramTreeClassifier` reproduce the
exact-sort CART bit for bit while replacing per-node argsorts with
cumulative histograms.

Bin indices use the smallest unsigned dtype that fits (uint8/uint16,
uint32 as an escape hatch for pathological cardinalities), so a whole
forest's split search runs over cache-friendly small-int matrices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BinnedMatrix", "bin_matrix", "code_dtype"]


def code_dtype(n_bins: int) -> np.dtype:
    """Smallest unsigned dtype able to hold bin indices ``0..n_bins-1``."""
    if n_bins <= 1 << 8:
        return np.dtype(np.uint8)
    if n_bins <= 1 << 16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


class BinnedMatrix:
    """A feature matrix rank-encoded against per-feature value tables.

    Attributes
    ----------
    codes:
        ``(n, m)`` unsigned-int bin indices; ``codes[i, j]`` is the rank
        of ``X[i, j]`` among column *j*'s distinct values.
    bin_values:
        Per-feature sorted float64 arrays of the distinct values; bin
        ``b`` of feature ``j`` represents exactly ``bin_values[j][b]``.
    """

    __slots__ = ("codes", "bin_values")

    def __init__(self, codes: np.ndarray, bin_values: tuple[np.ndarray, ...]) -> None:
        self.codes = codes
        self.bin_values = bin_values

    @property
    def n_rows(self) -> int:
        return self.codes.shape[0]

    @property
    def n_features(self) -> int:
        return self.codes.shape[1]

    @property
    def max_bins(self) -> int:
        """Largest per-feature bin count (histogram stride)."""
        return max((len(v) for v in self.bin_values), default=1)

    def take(self, rows: np.ndarray) -> "BinnedMatrix":
        """Row subset (bootstrap by index); bin tables are shared."""
        return BinnedMatrix(self.codes[rows], self.bin_values)

    def __repr__(self) -> str:
        return (
            f"BinnedMatrix({self.n_rows}x{self.n_features}, "
            f"max_bins={self.max_bins}, dtype={self.codes.dtype})"
        )


def bin_matrix(X: np.ndarray) -> BinnedMatrix:
    """Rank-encode ``X (n, m)`` column by column (one bin per value).

    One ``np.unique`` (a sort) per column per *fit* — versus one argsort
    per feature per *node per tree* on the exact-sort path.
    """
    X = np.asarray(X, dtype=np.float64)
    n, m = X.shape
    bin_values: list[np.ndarray] = []
    columns: list[np.ndarray] = []
    max_bins = 1
    for j in range(m):
        values, inverse = np.unique(X[:, j], return_inverse=True)
        bin_values.append(values)
        columns.append(inverse)
        max_bins = max(max_bins, len(values))
    codes = np.empty((n, m), dtype=code_dtype(max_bins))
    for j, column in enumerate(columns):
        codes[:, j] = column
    return BinnedMatrix(codes, tuple(bin_values))
