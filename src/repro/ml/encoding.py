"""Feature encoding for the feedback learner.

A training example for model ``M_Ai`` (paper §4.2) is::

    ⟨t[A1], ..., t[An], v, R(t[Ai], v), F⟩

— the original (dirty) tuple values, the suggested value, a similarity
feature relating the current and suggested values, and the feedback
label. All categorical values are mapped to integer codes by
:class:`CategoricalEncoder`; the encoder grows its vocabulary on the
fly because active learning sees new values incrementally.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.db.schema import Schema
from repro.repair.feedback import Feedback
from repro.repair.similarity import SimilarityFunction, similarity

__all__ = ["FEEDBACK_CLASSES", "CategoricalEncoder", "UpdateExampleEncoder", "feedback_to_class"]

#: Fixed class ordering for feedback labels.
FEEDBACK_CLASSES: tuple[Feedback, ...] = (Feedback.CONFIRM, Feedback.REJECT, Feedback.RETAIN)

_CLASS_OF = {fb: i for i, fb in enumerate(FEEDBACK_CLASSES)}


def feedback_to_class(feedback: Feedback) -> int:
    """Map a feedback kind to its fixed class index (0/1/2)."""
    return _CLASS_OF[feedback]


class CategoricalEncoder:
    """Incremental value-to-code mapping for one categorical column.

    Codes start at 0 and grow as new values appear; encoding never
    fails on unseen values, which is essential for active learning.

    Examples
    --------
    >>> enc = CategoricalEncoder()
    >>> enc.encode("a"), enc.encode("b"), enc.encode("a")
    (0, 1, 0)
    >>> enc.decode(1)
    'b'
    """

    def __init__(self) -> None:
        self._codes: dict[object, int] = {}
        self._values: list[object] = []

    def encode(self, value: object) -> int:
        """The integer code of *value*, assigning a new one if unseen."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def decode(self, code: int) -> object:
        """The value carrying *code* (inverse of :meth:`encode`)."""
        return self._values[code]

    def export_values(self) -> list[object]:
        """The vocabulary in code order (for checkpoints)."""
        return list(self._values)

    @classmethod
    def from_values(cls, values: Sequence[object]) -> "CategoricalEncoder":
        """Rebuild an encoder whose codes match an exported vocabulary."""
        encoder = cls()
        for value in values:
            encoder.encode(value)
        return encoder

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: object) -> bool:
        return value in self._codes


class UpdateExampleEncoder:
    """Builds numeric feature vectors for suggested-update examples.

    The layout is ``[code(A1=t[A1]), ..., code(An=t[An]), code(Ai=v),
    R(t[Ai], v)]`` — one column per schema attribute, one for the
    suggested value (sharing the target attribute's vocabulary), and
    one continuous similarity feature.

    Parameters
    ----------
    schema:
        Relation schema of the repaired table.
    sim:
        Relationship function ``R`` (defaults to Eq. 7 similarity).
    """

    def __init__(self, schema: Schema, sim: SimilarityFunction = similarity) -> None:
        self.schema = schema
        self.sim = sim
        self._encoders = {attr: CategoricalEncoder() for attr in schema.attributes}

    @property
    def n_features(self) -> int:
        """Width of the produced feature vectors."""
        return len(self.schema) + 2

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Column labels of the produced feature vectors."""
        return self.schema.attributes + ("suggested_value", "similarity")

    def encode(
        self,
        row_values: Sequence[object],
        attribute: str,
        suggested_value: object,
    ) -> np.ndarray:
        """Encode one example for model ``M_attribute``.

        Parameters
        ----------
        row_values:
            The tuple's values in schema order, *as they were when the
            update was suggested* (the dirty snapshot).
        attribute:
            The target attribute ``Ai``.
        suggested_value:
            The suggested replacement ``v``.
        """
        features = np.empty(self.n_features, dtype=np.float64)
        for i, attr in enumerate(self.schema.attributes):
            features[i] = self._encoders[attr].encode(row_values[i])
        features[len(self.schema)] = self._encoders[attribute].encode(suggested_value)
        current = row_values[self.schema.position(attribute)]
        features[len(self.schema) + 1] = float(self.sim(current, suggested_value))
        return features

    def encode_many(
        self,
        rows: Sequence[Sequence[object]],
        attribute: str,
        suggested_values: Sequence[object],
    ) -> np.ndarray:
        """Encode many examples for model ``M_attribute`` in one pass.

        Byte-identical to stacking :meth:`encode` row by row: every
        per-attribute encoder sees its values in the same first
        encounter order as the sequential path would feed it — each
        non-target column is one pass down the rows, and the target
        attribute's encoder interleaves each row's current value with
        its suggested value, exactly like ``encode`` does. The
        similarity feature routes through ``self.sim`` — the engine's
        shared code-space cache when wired by
        :class:`~repro.core.learner.FeedbackLearner`.
        """
        count = len(suggested_values)
        features = np.empty((count, self.n_features), dtype=np.float64)
        n_attrs = len(self.schema)
        target_pos = self.schema.position(attribute)
        for j, attr in enumerate(self.schema.attributes):
            if j == target_pos:
                continue
            encode = self._encoders[attr].encode
            features[:, j] = [encode(row[j]) for row in rows]
        target_encode = self._encoders[attribute].encode
        sim = self.sim
        for i, (row, suggested) in enumerate(zip(rows, suggested_values)):
            current = row[target_pos]
            features[i, target_pos] = target_encode(current)
            features[i, n_attrs] = target_encode(suggested)
            features[i, n_attrs + 1] = float(sim(current, suggested))
        return features

    def encoder_for(self, attribute: str) -> CategoricalEncoder:
        """The vocabulary encoder of one attribute (shared with ``v``)."""
        return self._encoders[attribute]

    def export_vocab(self) -> dict[str, list[object]]:
        """Per-attribute vocabularies in code order (for checkpoints).

        The code assignment is *state*: committees are trained on these
        codes, so a restored learner must encode future examples with
        the same value→code mapping or its models answer against the
        wrong dictionary.
        """
        return {a: enc.export_values() for a, enc in self._encoders.items()}

    def restore_vocab(self, vocab: dict[str, list[object]]) -> None:
        """Rebuild every attribute encoder from an exported vocabulary."""
        self._encoders = {
            a: CategoricalEncoder.from_values(values) for a, values in vocab.items()
        }
