"""Small metric utilities shared by the learning components.

The committee-uncertainty measure reproduces the paper's §4.2 worked
example: vote fractions ``(3/5, 1/5, 1/5)`` over three classes give an
entropy (base 3) of ≈0.86 and ``(1/5, 4/5)`` gives ≈0.45.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

__all__ = ["accuracy_score", "confusion_matrix", "entropy", "vote_entropy"]


def entropy(fractions: Sequence[float], base: float | None = None) -> float:
    """Shannon entropy of a distribution, optionally rebased.

    Parameters
    ----------
    fractions:
        Probabilities (zeros allowed; they contribute nothing). They
        are not renormalised — callers pass proper distributions.
    base:
        Logarithm base; defaults to ``e``.

    Examples
    --------
    >>> round(entropy([0.5, 0.5], base=2), 6)
    1.0
    >>> entropy([1.0, 0.0])
    0.0
    """
    total = 0.0
    for p in fractions:
        if p > 0.0:
            total -= p * math.log(p)
    if base is not None and total > 0.0:
        total /= math.log(base)
    return total


def vote_entropy(fractions: Sequence[float], n_classes: int | None = None) -> float:
    """Committee disagreement: entropy of vote fractions, base #classes.

    With the base set to the number of classes the score lies in
    ``[0, 1]``; 0 means unanimous, 1 means maximally split.

    Examples
    --------
    >>> round(vote_entropy([3 / 5, 1 / 5, 1 / 5]), 2)
    0.86
    >>> round(vote_entropy([1 / 5, 4 / 5, 0.0]), 2)
    0.45
    """
    k = n_classes if n_classes is not None else len(fractions)
    if k <= 1:
        return 0.0
    return entropy(fractions, base=k)


def accuracy_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of matching labels (1.0 on empty input)."""
    true_arr = np.asarray(y_true)
    pred_arr = np.asarray(y_pred)
    if true_arr.shape != pred_arr.shape:
        raise ValueError(f"shape mismatch: {true_arr.shape} vs {pred_arr.shape}")
    if true_arr.size == 0:
        return 1.0
    return float(np.mean(true_arr == pred_arr))


def confusion_matrix(y_true: Sequence[int], y_pred: Sequence[int], n_classes: int) -> np.ndarray:
    """``(n_classes, n_classes)`` matrix with true labels on rows."""
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for t, p in zip(y_true, y_pred, strict=True):
        matrix[int(t), int(p)] += 1
    return matrix
