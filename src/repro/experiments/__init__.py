"""Experiment harness regenerating every figure of the paper's evaluation."""

from repro.experiments.figure3 import figure3_series, run_figure3
from repro.experiments.figure4 import figure4_series, run_figure4
from repro.experiments.figure5 import figure5_series, run_figure5
from repro.experiments.harness import (
    FIGURE3_STRATEGIES,
    FIGURE4_APPROACHES,
    heuristic_improvement,
    initial_dirty_count,
    run_heuristic,
    run_strategy,
    trajectory_series,
)
from repro.experiments.report import Series, interpolate_at, render_table, save_csv

__all__ = [
    "FIGURE3_STRATEGIES",
    "FIGURE4_APPROACHES",
    "Series",
    "figure3_series",
    "figure4_series",
    "figure5_series",
    "heuristic_improvement",
    "initial_dirty_count",
    "interpolate_at",
    "render_table",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_heuristic",
    "run_strategy",
    "save_csv",
    "trajectory_series",
]
