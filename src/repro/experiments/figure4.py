"""Figure 4: overall GDR evaluation against all baselines.

Contenders: GDR (VOI + active learning), GDR-S-Learning (VOI + passive
learning), Active-Learning (no grouping / no VOI), GDR-NoLearning and
the Automatic-Heuristic constant line. Feedback is reported as a
percentage of the initially identified dirty tuples (the paper assumes
the user affords at most that many verifications).

Headline claims to reproduce: GDR reaches ≈90% improvement with
20–30% effort; it overtakes the automatic heuristic with ≈10% effort;
the learning curves beat GDR-NoLearning everywhere; Active-Learning is
weaker on the adult dataset (random errors carry fewer learnable
correlations).

Run directly::

    python -m repro.experiments.figure4 --dataset hospital --n 1200
"""

from __future__ import annotations

import argparse

from repro.datasets.loader import GDRDataset, load_dataset
from repro.experiments.harness import (
    FIGURE4_APPROACHES,
    heuristic_improvement,
    initial_dirty_count,
    run_strategy,
)
from repro.experiments.report import Series, render_table

__all__ = ["DEFAULT_EFFORTS", "figure4_series", "main", "run_figure4"]

_X_TICKS = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]

#: Feedback budgets as fractions of the initial dirty-tuple count.
DEFAULT_EFFORTS = (0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0)


def figure4_series(
    dataset: GDRDataset,
    seed: int = 0,
    efforts: tuple[float, ...] = DEFAULT_EFFORTS,
) -> list[Series]:
    """Run every Figure 4 approach; returns one curve per approach.

    Following the paper's protocol, each point is an independent run:
    the user affords ``F`` verifications (a fraction of the initially
    identified dirty tuples ``E``), the learned models then decide the
    remaining updates, and the final quality improvement is recorded.
    """
    base = initial_dirty_count(dataset)
    curves: list[Series] = []
    for approach in FIGURE4_APPROACHES:
        series = Series(approach)
        series.add(0.0, 0.0)
        for effort in efforts:
            budget = max(1, int(round(effort * base)))
            result, __ = run_strategy(dataset, approach, seed=seed, feedback_limit=budget)
            series.add(100.0 * effort, result.improvement)
        curves.append(series)
    curves.append(heuristic_improvement(dataset))
    return curves


def run_figure4(dataset_name: str, n: int = 1200, seed: int = 0) -> str:
    """Regenerate one panel of Figure 4 and render it as a table."""
    dataset = load_dataset(dataset_name, n=n, seed=seed)
    curves = figure4_series(dataset, seed=seed)
    title = (
        f"Figure 4 ({dataset_name}): quality improvement (%) vs feedback "
        f"(% of initial dirty tuples) — {dataset.describe()}"
    )
    return render_table(title, "feedback %", curves, _X_TICKS)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=("hospital", "adult", "both"), default="both")
    parser.add_argument("--n", type=int, default=1200, help="number of tuples")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    names = ("hospital", "adult") if args.dataset == "both" else (args.dataset,)
    for name in names:
        print(run_figure4(name, n=args.n, seed=args.seed))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
