"""Figure 3: VOI-based ranking vs Greedy vs Random (no learning).

For each dataset the three ranking strategies run with the learner
disabled and an unlimited budget (the user verifies every suggestion).
Quality improvement is plotted against feedback reported as the
percentage of the total updates that strategy needed — the paper's
Figure 3 convention. The headline claim to reproduce: the VOI curve is
the steepest early, Random is clearly worst on the hospital dataset,
and Greedy ≈ Random on the adult dataset.

Run directly::

    python -m repro.experiments.figure3 --dataset hospital --n 1500
"""

from __future__ import annotations

import argparse

from repro.datasets.loader import GDRDataset, load_dataset
from repro.experiments.harness import FIGURE3_STRATEGIES, run_strategy, trajectory_series
from repro.experiments.report import Series, render_table

__all__ = ["figure3_series", "main", "run_figure3"]

_X_TICKS = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]


def figure3_series(dataset: GDRDataset, seed: int = 0) -> list[Series]:
    """Run the three ranking strategies; returns one curve each."""
    curves: list[Series] = []
    for approach in FIGURE3_STRATEGIES:
        result, __ = run_strategy(dataset, approach, seed=seed)
        curves.append(trajectory_series(approach, result, x_mode="percent_of_own_total"))
    return curves


def run_figure3(dataset_name: str, n: int = 1200, seed: int = 0) -> str:
    """Regenerate one panel of Figure 3 and render it as a table."""
    dataset = load_dataset(dataset_name, n=n, seed=seed)
    curves = figure3_series(dataset, seed=seed)
    title = (
        f"Figure 3 ({dataset_name}): quality improvement (%) vs feedback "
        f"(% of each approach's total verified updates) — {dataset.describe()}"
    )
    return render_table(title, "feedback %", curves, _X_TICKS)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=("hospital", "adult", "both"), default="both")
    parser.add_argument("--n", type=int, default=1200, help="number of tuples")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    names = ("hospital", "adult") if args.dataset == "both" else (args.dataset,)
    for name in names:
        print(run_figure3(name, n=args.n, seed=args.seed))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
