"""Figure 5: repair accuracy (precision / recall) vs user effort.

The user affords ``F`` verifications (reported as a percentage of the
initially identified dirty tuples); GDR then decides the remaining
updates automatically via the learned models. Precision and recall of
the performed updates are measured against the ground truth.

Headline claims to reproduce: both precision and recall rise with
effort; the hospital dataset's precision dominates the adult dataset's
(the learner is more accurate when errors correlate with context).

Run directly::

    python -m repro.experiments.figure5 --dataset hospital --n 1200
"""

from __future__ import annotations

import argparse

from repro.datasets.loader import GDRDataset, load_dataset
from repro.experiments.harness import initial_dirty_count, run_strategy
from repro.experiments.report import Series, render_table

__all__ = ["figure5_series", "main", "run_figure5"]

#: Effort levels as fractions of the initial dirty-tuple count.
DEFAULT_EFFORTS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def figure5_series(
    dataset: GDRDataset,
    seed: int = 0,
    efforts: tuple[float, ...] = DEFAULT_EFFORTS,
) -> list[Series]:
    """One GDR run per effort level; returns precision + recall curves."""
    base = initial_dirty_count(dataset)
    precision = Series("Precision")
    recall = Series("Recall")
    for effort in efforts:
        budget = max(1, int(round(effort * base)))
        result, __ = run_strategy(dataset, "GDR", seed=seed, feedback_limit=budget)
        assert result.report is not None  # ground truth is always present here
        x = 100.0 * effort
        precision.add(x, result.report.precision)
        recall.add(x, result.report.recall)
    return [precision, recall]


def run_figure5(dataset_name: str, n: int = 1200, seed: int = 0) -> str:
    """Regenerate one panel of Figure 5 and render it as a table."""
    dataset = load_dataset(dataset_name, n=n, seed=seed)
    curves = figure5_series(dataset, seed=seed)
    title = (
        f"Figure 5 ({dataset_name}): precision & recall vs feedback "
        f"(% of initial dirty tuples) — {dataset.describe()}"
    )
    xs = [100.0 * e for e in DEFAULT_EFFORTS]
    return render_table(title, "feedback %", curves, xs, y_format="{:6.3f}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=("hospital", "adult", "both"), default="both")
    parser.add_argument("--n", type=int, default=1200, help="number of tuples")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    names = ("hospital", "adult") if args.dataset == "both" else (args.dataset,)
    for name in names:
        print(run_figure5(name, n=args.n, seed=args.seed))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
