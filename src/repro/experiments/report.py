"""Series containers and plain-text rendering for experiment output.

The benchmark harness prints the same rows/series the paper plots:
quality improvement (%) against user feedback (%), one column per
approach. Everything renders as monospace tables so results are
readable in CI logs and can be diffed across runs.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Series", "interpolate_at", "render_table", "save_csv"]


@dataclass(slots=True)
class Series:
    """One labelled curve: monotone x positions with y values.

    Attributes
    ----------
    label:
        Curve name (e.g. ``"GDR"``, ``"Greedy"``).
    points:
        ``(x, y)`` samples in ascending-x order.
    """

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one sample (x must be >= the previous sample's x)."""
        self.points.append((x, y))

    @property
    def xs(self) -> list[float]:
        """The x positions."""
        return [x for x, __ in self.points]

    @property
    def ys(self) -> list[float]:
        """The y values."""
        return [y for __, y in self.points]

    def final(self) -> float:
        """The last y value (0.0 when empty)."""
        return self.points[-1][1] if self.points else 0.0

    def x_at_y(self, target: float) -> float | None:
        """Smallest x whose y reaches *target* (None if never reached)."""
        for x, y in self.points:
            if y >= target:
                return x
        return None


def interpolate_at(series: Series, xs: list[float]) -> list[float]:
    """Sample a series at arbitrary x positions (linear, clamped).

    Positions before the first sample return the first y; positions
    after the last return the last y.

    Examples
    --------
    >>> s = Series("a", [(0.0, 0.0), (10.0, 100.0)])
    >>> interpolate_at(s, [5.0])
    [50.0]
    """
    if not series.points:
        return [0.0 for __ in xs]
    output: list[float] = []
    points = series.points
    for x in xs:
        if x <= points[0][0]:
            output.append(points[0][1])
            continue
        if x >= points[-1][0]:
            output.append(points[-1][1])
            continue
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if x0 <= x <= x1:
                if x1 == x0:
                    output.append(y1)
                else:
                    output.append(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
                break
    return output


def render_table(
    title: str,
    x_label: str,
    series_list: list[Series],
    xs: list[float],
    y_format: str = "{:6.1f}",
) -> str:
    """Render curves as a monospace table sampled at *xs*.

    Examples
    --------
    >>> s = Series("A", [(0, 0), (100, 90)])
    >>> print(render_table("demo", "x%", [s], [0, 50, 100]))  # doctest: +ELLIPSIS
    demo
    ...
    """
    header = [x_label.rjust(10)] + [s.label.rjust(18) for s in series_list]
    lines = [title, "-" * (12 + 19 * len(series_list)), " | ".join(header)]
    columns = [interpolate_at(s, xs) for s in series_list]
    for i, x in enumerate(xs):
        row = [f"{x:10.0f}"] + [y_format.format(col[i]).rjust(18) for col in columns]
        lines.append(" | ".join(row))
    return "\n".join(lines)


def save_csv(path: str | Path, series_list: list[Series], xs: list[float], x_label: str = "x") -> None:
    """Write the sampled curves to a CSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns = [interpolate_at(s, xs) for s in series_list]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label] + [s.label for s in series_list])
        for i, x in enumerate(xs):
            writer.writerow([x] + [f"{col[i]:.4f}" for col in columns])
