"""Strategy runners shared by the figure-regeneration experiments.

Each runner takes a :class:`~repro.datasets.loader.GDRDataset`, repairs
a *fresh copy* of the dirty instance with one configuration, and
returns the quality-improvement trajectory as a
:class:`~repro.experiments.report.Series`.
"""

from __future__ import annotations

from repro.constraints.violations import ViolationDetector
from repro.core.gdr import GDRConfig, GDREngine, GDRResult
from repro.core.quality import QualityEvaluator, quality_improvement
from repro.core.user import GroundTruthOracle
from repro.datasets.loader import GDRDataset
from repro.experiments.report import Series
from repro.repair.heuristic import batch_repair

__all__ = [
    "FIGURE3_STRATEGIES",
    "FIGURE4_APPROACHES",
    "heuristic_improvement",
    "initial_dirty_count",
    "run_heuristic",
    "run_strategy",
    "trajectory_series",
]

#: Figure 3 contenders: ranking strategies with the learner disabled.
FIGURE3_STRATEGIES = ("GDR-NoLearning", "Greedy", "Random")

#: Figure 4 contenders (Automatic-Heuristic is handled separately).
FIGURE4_APPROACHES = ("GDR", "GDR-S-Learning", "Active-Learning", "GDR-NoLearning")


def _config_for(approach: str, seed: int) -> GDRConfig:
    """Map a paper approach name to an engine configuration."""
    if approach == "GDR":
        return GDRConfig.gdr(seed=seed)
    if approach == "GDR-S-Learning":
        return GDRConfig.s_learning(seed=seed)
    if approach == "Active-Learning":
        return GDRConfig.active_learning(seed=seed)
    if approach == "GDR-NoLearning":
        return GDRConfig.no_learning(seed=seed)
    if approach == "Greedy":
        return GDRConfig(ranking="greedy", learning="none", use_benefit_quota=False, seed=seed)
    if approach == "Random":
        return GDRConfig(ranking="random", learning="none", use_benefit_quota=False, seed=seed)
    raise ValueError(f"unknown approach {approach!r}")


def run_strategy(
    dataset: GDRDataset,
    approach: str,
    seed: int = 0,
    feedback_limit: int | None = None,
) -> tuple[GDRResult, GDREngine]:
    """Repair a fresh copy of the dataset with one approach."""
    dirty = dataset.fresh_dirty()
    oracle = GroundTruthOracle(dataset.clean)
    engine = GDREngine(
        dirty,
        dataset.rules,
        oracle,
        config=_config_for(approach, seed),
        clean_db=dataset.clean,
    )
    result = engine.run(feedback_limit=feedback_limit)
    return result, engine


def trajectory_series(
    label: str,
    result: GDRResult,
    x_mode: str = "percent_of_own_total",
    denominator: int | None = None,
) -> Series:
    """Convert a result's trajectory into an improvement curve.

    Parameters
    ----------
    label:
        Curve label.
    result:
        The engine result carrying loss samples per feedback unit.
    x_mode:
        ``"percent_of_own_total"`` — Figure 3 convention: x is the
        percentage of the total feedback *this* run required;
        ``"percent_of_denominator"`` — Figure 4/5 convention: x is the
        percentage of *denominator* (the initial dirty-tuple count).
    denominator:
        Required for ``percent_of_denominator``.
    """
    series = Series(label)
    if x_mode == "percent_of_own_total":
        total = max(1, result.feedback_used)
    elif x_mode == "percent_of_denominator":
        if denominator is None or denominator <= 0:
            raise ValueError("percent_of_denominator requires a positive denominator")
        total = denominator
    else:
        raise ValueError(f"unknown x_mode {x_mode!r}")
    last_feedback = -1
    for point in result.trajectory:
        improvement = quality_improvement(result.initial_loss, point.loss)
        x = 100.0 * point.feedback / total
        if point.feedback == last_feedback and series.points:
            # keep the latest sample per feedback count (learner
            # decisions between labels update y at the same x)
            series.points[-1] = (x, improvement)
        else:
            series.add(x, improvement)
        last_feedback = point.feedback
    return series


def run_heuristic(dataset: GDRDataset) -> float:
    """Run the automatic baseline; returns its % quality improvement."""
    dirty = dataset.fresh_dirty()
    evaluator = QualityEvaluator(dataset.clean, dataset.rules)
    initial_loss = evaluator.loss_of(dirty)
    batch_repair(dirty, dataset.rules)
    final_loss = evaluator.loss_of(dirty)
    return quality_improvement(initial_loss, final_loss)


def heuristic_improvement(dataset: GDRDataset) -> Series:
    """The Automatic-Heuristic constant line of Figure 4."""
    improvement = run_heuristic(dataset)
    return Series("Heuristic", [(0.0, improvement), (100.0, improvement)])


def initial_dirty_count(dataset: GDRDataset) -> int:
    """Initially identified dirty tuples (the Figure 4/5 denominator)."""
    detector = ViolationDetector(dataset.dirty, dataset.rules)
    count = detector.dirty_count()
    detector.detach()
    return count
