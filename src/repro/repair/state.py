"""Mutable repair bookkeeping: PossibleUpdates, preventedList, Changeable.

The paper keeps three pieces of state per cell ``⟨t, B⟩``:

* at most one live suggestion in the ``PossibleUpdates`` list;
* ``⟨t, B⟩.preventedList`` — values confirmed wrong for the cell;
* ``⟨t, B⟩.Changeable`` — cleared once the cell's value is confirmed
  correct (retain feedback) or has been repaired (confirm feedback).

:class:`RepairState` centralises that bookkeeping for the generator,
the consistency manager and the GDR engine.
"""

from __future__ import annotations

from repro.repair.candidate import CandidateUpdate

__all__ = ["RepairState"]

Cell = tuple[int, str]


class RepairState:
    """Per-cell repair flags plus the live candidate-update pool."""

    def __init__(self) -> None:
        self._prevented: dict[Cell, set[object]] = {}
        self._frozen: set[Cell] = set()
        self._possible: dict[Cell, CandidateUpdate] = {}

    # ------------------------------------------------------------------
    # changeable flag
    # ------------------------------------------------------------------
    def is_changeable(self, cell: Cell) -> bool:
        """True unless the cell's value has been confirmed/repaired."""
        return cell not in self._frozen

    def freeze(self, cell: Cell) -> None:
        """Mark the cell unchangeable and drop any live suggestion."""
        self._frozen.add(cell)
        self._possible.pop(cell, None)

    def frozen_cells(self) -> set[Cell]:
        """All cells whose values are confirmed (copy)."""
        return set(self._frozen)

    # ------------------------------------------------------------------
    # prevented values
    # ------------------------------------------------------------------
    def prevent(self, cell: Cell, value: object) -> None:
        """Record that *value* was rejected for *cell*."""
        self._prevented.setdefault(cell, set()).add(value)

    def prevented(self, cell: Cell) -> set[object]:
        """Values confirmed wrong for *cell* (copy)."""
        return set(self._prevented.get(cell, ()))

    def is_prevented(self, cell: Cell, value: object) -> bool:
        """True when *value* was already rejected for *cell*."""
        return value in self._prevented.get(cell, ())

    # ------------------------------------------------------------------
    # possible updates (at most one live suggestion per cell)
    # ------------------------------------------------------------------
    def put(self, update: CandidateUpdate) -> None:
        """Insert or replace the live suggestion for the update's cell."""
        self._possible[update.cell] = update

    def get(self, cell: Cell) -> CandidateUpdate | None:
        """The live suggestion for *cell*, if any."""
        return self._possible.get(cell)

    def remove(self, cell: Cell) -> CandidateUpdate | None:
        """Drop and return the live suggestion for *cell*, if any."""
        return self._possible.pop(cell, None)

    def discard(self, update: CandidateUpdate) -> bool:
        """Remove *update* only if it is still the live suggestion."""
        if self._possible.get(update.cell) == update:
            del self._possible[update.cell]
            return True
        return False

    def contains(self, update: CandidateUpdate) -> bool:
        """True when *update* is still the live suggestion for its cell."""
        return self._possible.get(update.cell) == update

    def updates(self) -> list[CandidateUpdate]:
        """All live suggestions, ordered by (tid, attribute)."""
        return [self._possible[cell] for cell in sorted(self._possible)]

    def updates_for_tuple(self, tid: int) -> list[CandidateUpdate]:
        """Live suggestions targeting tuple *tid*."""
        return [u for cell, u in sorted(self._possible.items()) if cell[0] == tid]

    def __len__(self) -> int:
        return len(self._possible)

    def clear_updates(self) -> None:
        """Drop every live suggestion (flags are kept)."""
        self._possible.clear()

    def reset(self) -> None:
        """Forget everything: suggestions, prevented values and flags."""
        self._possible.clear()
        self._prevented.clear()
        self._frozen.clear()

    def __repr__(self) -> str:
        return (
            f"RepairState({len(self._possible)} updates, "
            f"{len(self._frozen)} frozen cells, "
            f"{sum(len(v) for v in self._prevented.values())} prevented values)"
        )
