"""Mutable repair bookkeeping: PossibleUpdates, preventedList, Changeable.

The paper keeps three pieces of state per cell ``⟨t, B⟩``:

* at most one live suggestion in the ``PossibleUpdates`` list;
* ``⟨t, B⟩.preventedList`` — values confirmed wrong for the cell;
* ``⟨t, B⟩.Changeable`` — cleared once the cell's value is confirmed
  correct (retain feedback) or has been repaired (confirm feedback).

:class:`RepairState` centralises that bookkeeping for the generator,
the consistency manager and the GDR engine.

Delta pipeline: every mutation of the suggestion pool emits a typed
:class:`StateEvent` to registered listeners, so downstream consumers
(the incremental :class:`~repro.core.grouping.GroupIndex`, the
consistency manager's O(delta) refresh) can maintain derived structures
without re-scanning the pool. A per-tuple index makes "which cells of
tuple *t* carry suggestions" an O(1) lookup instead of a pool scan.
"""

from __future__ import annotations

from collections.abc import Callable
from enum import Enum
from typing import NamedTuple

from repro.repair.candidate import CandidateUpdate

__all__ = ["EventKind", "RepairState", "StateEvent"]

Cell = tuple[int, str]


class EventKind(Enum):
    """What happened to the suggestion pool."""

    #: A suggestion became the live one for its cell (possibly
    #: replacing another — a replacement emits REMOVED then ADDED).
    ADDED = "added"
    #: A live suggestion left the pool (removed, discarded, replaced,
    #: or dropped by a freeze).
    REMOVED = "removed"
    #: A cell became unchangeable. Fired *after* the REMOVED event for
    #: any suggestion the freeze dropped.
    FROZEN = "frozen"
    #: The whole pool was dropped at once (``clear_updates``/``reset``);
    #: per-suggestion REMOVED events are *not* fired — consumers should
    #: rebuild from scratch.
    CLEARED = "cleared"


class StateEvent(NamedTuple):
    """One typed mutation of the repair state.

    Attributes
    ----------
    kind:
        The mutation type.
    cell:
        The affected ``(tid, attribute)`` cell (``None`` for CLEARED).
    update:
        The suggestion added or removed (``None`` for FROZEN on a cell
        without a live suggestion, and for CLEARED).
    """

    kind: EventKind
    cell: Cell | None
    update: CandidateUpdate | None


StateListener = Callable[[StateEvent], None]


class RepairState:
    """Per-cell repair flags plus the live candidate-update pool."""

    def __init__(self) -> None:
        self._prevented: dict[Cell, set[object]] = {}
        self._frozen: set[Cell] = set()
        self._possible: dict[Cell, CandidateUpdate] = {}
        # tid -> attributes of that tuple currently carrying a live
        # suggestion (the per-tuple coverage index)
        self._by_tid: dict[int, set[str]] = {}
        self._listeners: list[StateListener] = []

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------
    def add_listener(self, listener: StateListener) -> None:
        """Register a callback fired on every suggestion-pool mutation."""
        self._listeners.append(listener)

    def remove_listener(self, listener: StateListener) -> None:
        """Unregister a previously added callback (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _emit(self, kind: EventKind, cell: Cell | None, update: CandidateUpdate | None) -> None:
        if not self._listeners:
            return
        event = StateEvent(kind, cell, update)
        for listener in self._listeners:
            listener(event)

    # ------------------------------------------------------------------
    # changeable flag
    # ------------------------------------------------------------------
    def is_changeable(self, cell: Cell) -> bool:
        """True unless the cell's value has been confirmed/repaired."""
        return cell not in self._frozen

    def freeze(self, cell: Cell) -> None:
        """Mark the cell unchangeable and drop any live suggestion."""
        self._frozen.add(cell)
        dropped = self._pop(cell)
        self._emit(EventKind.FROZEN, cell, dropped)

    def frozen_cells(self) -> set[Cell]:
        """All cells whose values are confirmed (copy)."""
        return set(self._frozen)

    # ------------------------------------------------------------------
    # prevented values
    # ------------------------------------------------------------------
    def prevent(self, cell: Cell, value: object) -> None:
        """Record that *value* was rejected for *cell*."""
        self._prevented.setdefault(cell, set()).add(value)

    def prevented(self, cell: Cell) -> set[object]:
        """Values confirmed wrong for *cell* (copy)."""
        return set(self._prevented.get(cell, ()))

    def is_prevented(self, cell: Cell, value: object) -> bool:
        """True when *value* was already rejected for *cell*."""
        return value in self._prevented.get(cell, ())

    def prevented_map(self) -> dict[Cell, set[object]]:
        """All prevented values per cell (deep copy), for checkpoints."""
        return {cell: set(values) for cell, values in self._prevented.items()}

    # ------------------------------------------------------------------
    # possible updates (at most one live suggestion per cell)
    # ------------------------------------------------------------------
    def _pop(self, cell: Cell) -> CandidateUpdate | None:
        """Drop the live suggestion for *cell*, emitting REMOVED."""
        dropped = self._possible.pop(cell, None)
        if dropped is not None:
            attrs = self._by_tid[cell[0]]
            attrs.discard(cell[1])
            if not attrs:
                del self._by_tid[cell[0]]
            self._emit(EventKind.REMOVED, cell, dropped)
        return dropped

    def put(self, update: CandidateUpdate) -> None:
        """Insert or replace the live suggestion for the update's cell."""
        cell = update.cell
        existing = self._possible.get(cell)
        if existing is not None and existing != update:
            self._pop(cell)
        self._possible[cell] = update
        self._by_tid.setdefault(cell[0], set()).add(cell[1])
        self._emit(EventKind.ADDED, cell, update)

    def get(self, cell: Cell) -> CandidateUpdate | None:
        """The live suggestion for *cell*, if any."""
        return self._possible.get(cell)

    def remove(self, cell: Cell) -> CandidateUpdate | None:
        """Drop and return the live suggestion for *cell*, if any."""
        return self._pop(cell)

    def discard(self, update: CandidateUpdate) -> bool:
        """Remove *update* only if it is still the live suggestion."""
        if self._possible.get(update.cell) == update:
            self._pop(update.cell)
            return True
        return False

    def contains(self, update: CandidateUpdate) -> bool:
        """True when *update* is still the live suggestion for its cell."""
        return self._possible.get(update.cell) == update

    def updates(self) -> list[CandidateUpdate]:
        """All live suggestions, ordered by (tid, attribute)."""
        return [self._possible[cell] for cell in sorted(self._possible)]

    def live_updates(self) -> list[CandidateUpdate]:
        """All live suggestions in pool order (no sort — cheap view).

        For consumers that only aggregate over the pool (coverage sets,
        staleness sweeps) and do not need the deterministic
        ``(tid, attribute)`` order of :meth:`updates`.
        """
        return list(self._possible.values())

    def updates_for_tuple(self, tid: int) -> list[CandidateUpdate]:
        """Live suggestions targeting tuple *tid* (cell order)."""
        attrs = self._by_tid.get(tid)
        if not attrs:
            return []
        return [self._possible[(tid, attr)] for attr in sorted(attrs)]

    def covers_tuple(self, tid: int) -> bool:
        """True when tuple *tid* has at least one live suggestion."""
        return tid in self._by_tid

    def __len__(self) -> int:
        return len(self._possible)

    def clear_updates(self) -> None:
        """Drop every live suggestion (flags are kept)."""
        self._possible.clear()
        self._by_tid.clear()
        self._emit(EventKind.CLEARED, None, None)

    def reset(self) -> None:
        """Forget everything: suggestions, prevented values and flags."""
        self._possible.clear()
        self._by_tid.clear()
        self._prevented.clear()
        self._frozen.clear()
        self._emit(EventKind.CLEARED, None, None)

    def __repr__(self) -> str:
        return (
            f"RepairState({len(self._possible)} updates, "
            f"{len(self._frozen)} frozen cells, "
            f"{sum(len(v) for v in self._prevented.values())} prevented values)"
        )
