"""Fully automatic CFD repair: the *Automatic-Heuristic* baseline.

This reproduces the role of the ``BatchRepair`` method of Cong et al.
(VLDB 2007) in the paper's Figure 4: repair every violation without any
user feedback, selecting value modifications that minimise change cost
(1 − Eq. 7 similarity).

Resolution strategy, per pass:

* a tuple violating a *constant* CFD considers (i) forcing the RHS to
  the pattern constant and (ii) *exiting the context* by nudging a
  constant-bound LHS attribute to a nearby domain value; candidates are
  feasibility-checked with the violation detector's what-if API (a
  repair must strictly reduce violations) and the cheapest feasible
  change wins — minimal-cost repair in the spirit of [7], which is also
  why the heuristic often lands on a consistent-but-wrong instance;
* a non-uniform partition of a *variable* CFD is reconciled to its
  majority RHS value (ties broken by total similarity cost) — with
  recurrent source errors the majority can be the wrong value, the
  heuristic's documented blind spot;
* a cell the heuristic already rewrote is never rewritten again, which
  guarantees termination without oscillation.

Passes repeat until a fixpoint, the database is clean, or *max_passes*
is hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.repository import RuleSet
from repro.constraints.violations import ViolationDetector
from repro.db.database import Database
from repro.repair.similarity import SimilarityCache, SimilarityFunction, similarity

__all__ = ["HeuristicRepairResult", "batch_repair"]

#: How many nearest domain values are tried per LHS attribute when
#: looking for a context exit.
_EXIT_CANDIDATES = 3


@dataclass(slots=True)
class HeuristicRepairResult:
    """Outcome of an automatic repair run.

    Attributes
    ----------
    passes:
        Number of resolution passes executed.
    changed_cells:
        Every ``(tid, attribute)`` the heuristic wrote, in order.
    remaining_violations:
        ``vio(D, Σ)`` after the final pass (0 when fully repaired).
    converged:
        True when the run stopped because no further change was
        proposed (as opposed to exhausting *max_passes*).
    """

    passes: int = 0
    changed_cells: list[tuple[int, str]] = field(default_factory=list)
    remaining_violations: int = 0
    converged: bool = False


def batch_repair(
    db: Database,
    rules: RuleSet,
    sim: SimilarityFunction = similarity,
    max_passes: int = 25,
    source: str = "heuristic",
    detector: ViolationDetector | None = None,
) -> HeuristicRepairResult:
    """Repair *db* in place against *rules* without user involvement.

    Parameters
    ----------
    db:
        Database to repair (modified in place).
    rules:
        The quality rules Σ.
    sim:
        Similarity used as the change-cost model (cost = 1 − sim).
    max_passes:
        Safety cap on resolution passes.
    source:
        Provenance tag for the change log.
    detector:
        Optional pre-built detector over ``(db, rules)`` to reuse; one
        is constructed (and detached afterwards) when omitted.

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> from repro.constraints import RuleSet, parse_rules
    >>> db = Database(Schema("r", ["zip", "city"]), [["46360", "Michigan Cty"]])
    >>> rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
    >>> result = batch_repair(db, rules)
    >>> db.value(0, "city"), result.remaining_violations
    ('Michigan City', 0)
    """
    own_detector = detector is None
    if detector is None:
        detector = ViolationDetector(db, rules)
    if sim is similarity:
        # the default Eq. 7 function is pure and uncached (the old
        # module-global lru_cache is gone); a run-scoped cache restores
        # memoization of the repeated per-partition pairs at identical
        # values
        sim = SimilarityCache(db.columns)
    result = HeuristicRepairResult()
    settled: set[tuple[int, str]] = set()
    try:
        for _pass in range(max_passes):
            proposals = _collect_proposals(db, rules, detector, sim, settled)
            if not proposals:
                result.converged = True
                break
            result.passes += 1
            for (tid, attribute), (value, __) in sorted(proposals.items()):
                if db.set_value(tid, attribute, value, source=source):
                    result.changed_cells.append((tid, attribute))
                    settled.add((tid, attribute))
        result.remaining_violations = detector.vio_total()
    finally:
        if own_detector:
            detector.detach()
    return result


def _collect_proposals(
    db: Database,
    rules: RuleSet,
    detector: ViolationDetector,
    sim: SimilarityFunction,
    settled: set[tuple[int, str]],
) -> dict[tuple[int, str], tuple[object, float]]:
    """One pass: propose the cheapest feasible resolving write per cell."""
    proposals: dict[tuple[int, str], tuple[object, float]] = {}
    domain_cache: dict[str, list[object]] = {}

    def domain_of(attribute: str) -> list[object]:
        values = domain_cache.get(attribute)
        if values is None:
            values = sorted(db.domain(attribute), key=str)
            domain_cache[attribute] = values
        return values

    def reduces_violations(tid: int, attribute: str, value: object) -> bool:
        outcomes = detector.what_if(tid, attribute, value)
        delta = sum(o.vio_after - o.vio_before for o in outcomes.values())
        return delta < 0

    def propose(tid: int, attribute: str, value: object, cost: float) -> None:
        cell = (tid, attribute)
        if cell in settled or db.value(tid, attribute) == value:
            return
        existing = proposals.get(cell)
        if existing is None or cost < existing[1]:
            proposals[cell] = (value, cost)

    def resolve_constant(tid: int, rule) -> None:
        candidates: list[tuple[float, str, object]] = []
        rhs_cell = (tid, rule.rhs)
        if rhs_cell not in settled:
            rhs_cost = 1.0 - sim(db.value(tid, rule.rhs), rule.rhs_constant)
            candidates.append((rhs_cost, rule.rhs, rule.rhs_constant))
        for attr, const in rule.lhs_constants().items():
            if (tid, attr) in settled:
                continue
            nearest = sorted(
                (value for value in domain_of(attr) if value != const),
                key=lambda v: (1.0 - sim(const, v), str(v)),
            )[:_EXIT_CANDIDATES]
            for value in nearest:
                candidates.append((1.0 - sim(const, value), attr, value))
        candidates.sort(key=lambda c: (c[0], c[1], str(c[2])))
        for cost, attribute, value in candidates:
            if reduces_violations(tid, attribute, value):
                propose(tid, attribute, value, cost)
                return

    for rule in rules:
        if rule.is_constant:
            for tid in sorted(detector.violating_tids(rule)):
                resolve_constant(tid, rule)
        else:
            handled: set[int] = set()
            for tid in sorted(detector.violating_tids(rule)):
                if tid in handled:
                    continue
                members = detector.group_members(tid, rule)
                handled.update(members)
                counts = detector.group_value_counts(tid, rule)
                if len(counts) < 2:
                    continue
                target = _majority_value(counts, members, db, rule.rhs, sim)
                for member in sorted(members):
                    current = db.value(member, rule.rhs)
                    if current != target:
                        propose(member, rule.rhs, target, 1.0 - sim(current, target))
    return proposals


def _majority_value(
    counts: dict[object, int],
    members: set[int],
    db: Database,
    rhs: str,
    sim: SimilarityFunction,
) -> object:
    """Majority RHS value; ties favour the lowest total change cost."""
    best_value: object | None = None
    best_key: tuple[float, float, str] | None = None
    for value, count in counts.items():
        total_cost = sum(
            1.0 - sim(db.value(m, rhs), value) for m in members if db.value(m, rhs) != value
        )
        key = (-count, total_cost, str(value))
        if best_key is None or key < best_key:
            best_key = key
            best_value = value
    return best_value
