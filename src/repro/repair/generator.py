"""On-demand candidate-update generation (paper Algorithm 1).

``UpdateAttributeTuple(t, B)`` searches the best replacement value for
cell ``t[B]`` across three scenarios:

1. ``B`` is the RHS of a violated *constant* CFD — suggest the pattern
   constant ``tp[A]``;
2. ``B`` is the RHS of a violated *variable* CFD — suggest a partner
   tuple's RHS value (``getValueForRHS``);
3. ``B`` appears on the LHS of a violated CFD — suggest the value
   maximising Eq. 7 similarity, searching first the constants that the
   rules assign to ``B`` and then the values of ``B`` among tuples that
   agree with ``t`` on the rule's remaining attributes
   (``getValueForLHS``).

Scenario 3 enumeration runs on the database's dictionary-encoded
columns: witness agreement is one vectorized equality mask and the
candidate values come straight from the column vocabulary — no hash
index builds, no full-table scans.

The best-scoring value that is neither the current value nor in the
cell's prevented list becomes the cell's live suggestion.
"""

from __future__ import annotations

from itertools import chain

from repro.constraints.repository import RuleSet
from repro.constraints.violations import ViolationDetector
from repro.db.database import Database
from repro.repair.candidate import CandidateUpdate
from repro.repair.similarity import SimilarityFunction, best_candidate, similarity
from repro.repair.state import RepairState

__all__ = ["UpdateGenerator"]


class UpdateGenerator:
    """Generates candidate updates for dirty cells on demand.

    Parameters
    ----------
    db, rules, detector, state:
        The shared repair substrate. The generator writes its
        suggestions into *state* (one live suggestion per cell).
    sim:
        Update-evaluation function (defaults to Eq. 7 edit-distance
        similarity).

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> from repro.constraints import RuleSet, ViolationDetector, parse_rules
    >>> from repro.repair import RepairState
    >>> db = Database(Schema("r", ["zip", "city"]), [["46360", "Westvile"]])
    >>> rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
    >>> det = ViolationDetector(db, rules)
    >>> gen = UpdateGenerator(db, rules, det, RepairState())
    >>> update = gen.generate_for_cell(0, "city")
    >>> update.value
    'Michigan City'
    """

    def __init__(
        self,
        db: Database,
        rules: RuleSet,
        detector: ViolationDetector,
        state: RepairState,
        sim: SimilarityFunction = similarity,
    ) -> None:
        self.db = db
        self.rules = rules
        self.detector = detector
        self.state = state
        self.sim = sim
        # (witness positions, witness codes, target column) -> candidate
        # values; shared by every tuple in the same witness group and
        # invalidated wholesale when the database version moves
        self._witness_memo: dict[tuple, list[object]] = {}
        self._witness_memo_version = -1

    # ------------------------------------------------------------------
    def generate_all(self) -> list[CandidateUpdate]:
        """Initial pass: suggest updates for every dirty tuple's cells.

        Following the paper, every attribute of a dirty tuple is
        initially assumed potentially incorrect; attributes not involved
        in any violated rule simply yield no suggestion. Iterates the
        detector's incrementally ordered dirty view — no per-pass sort.
        """
        produced: list[CandidateUpdate] = []
        for tid in self.detector.dirty_tuples_ordered():
            produced.extend(self.generate_for_tuple(tid))
        return produced

    def generate_for_tuple(self, tid: int) -> list[CandidateUpdate]:
        """Run ``UpdateAttributeTuple`` for every attribute of tuple *tid*."""
        produced: list[CandidateUpdate] = []
        violated = self.detector.violated_rules(tid)
        if not violated:
            return produced
        attrs: list[str] = []
        seen: set[str] = set()
        for rule in violated:
            for attr in rule.attributes:
                if attr not in seen:
                    seen.add(attr)
                    attrs.append(attr)
        for attr in attrs:
            update = self.generate_for_cell(tid, attr)
            if update is not None:
                produced.append(update)
        return produced

    def generate_for_cell(self, tid: int, attribute: str) -> CandidateUpdate | None:
        """``UpdateAttributeTuple(t, B)`` — Algorithm 1.

        Returns the new live suggestion for the cell, or ``None`` when
        the cell is frozen, the tuple is clean, or no admissible value
        exists. Any previous suggestion for the cell is replaced.
        """
        cell = (tid, attribute)
        if not self.state.is_changeable(cell):
            return None
        violated = self.detector.violated_rules(tid)
        if not violated:
            self.state.remove(cell)
            return None
        current = self.db.value(tid, attribute)
        prevented = self.state.prevented(cell)

        pools = []
        saw_lhs_rule = False
        for rule in violated:
            if rule.rhs == attribute:
                if rule.is_constant:
                    pools.append((rule.rhs_constant,))  # scenario 1
                else:
                    pools.append(self._values_for_rhs(tid, rule))  # scenario 2
            if attribute in rule.lhs:
                saw_lhs_rule = True
        if saw_lhs_rule:
            pools.append(self._values_for_lhs(tid, attribute, violated))  # scenario 3

        best_value, best_score = best_candidate(
            current, chain.from_iterable(pools), excluded=prevented, sim=self.sim
        )
        if best_value is None:
            self.state.remove(cell)
            return None
        update = CandidateUpdate(tid, attribute, best_value, best_score)
        self.state.put(update)
        return update

    # ------------------------------------------------------------------
    def _values_for_rhs(self, tid: int, rule) -> list[object]:
        """``getValueForRHS``: partner RHS values, most frequent first."""
        counts = self.detector.group_value_counts(tid, rule)
        current = self.db.value(tid, rule.rhs)
        candidates = [(count, value) for value, count in counts.items() if value != current]
        candidates.sort(key=lambda pair: (-pair[0], str(pair[1])))
        return [value for __, value in candidates]

    def _values_for_lhs(self, tid: int, attribute: str, violated) -> set[object]:
        """``getValueForLHS``: rule constants plus context-agreeing values.

        Algorithm 1 operates entirely on ``t.vioRuleList``, so the
        "values in the CFDs" pool is drawn from the *violated* rules'
        patterns only — pooling constants from all of Σ would funnel
        unrelated constants into every dirty tuple's suggestions.
        Witness agreement is evaluated as a vectorized equality mask
        over the dictionary-encoded columns, and the agreeing tuples'
        values of ``attribute`` are decoded via the column vocabulary.
        """
        pool: set[object] = set()
        schema = self.db.schema
        columns = self.db.columns
        attr_pos = schema.position(attribute)
        version = self.db.version
        if version != self._witness_memo_version:
            self._witness_memo.clear()
            self._witness_memo_version = version
        row_pos = columns.position_of(tid)
        for rule in violated:
            if attribute not in rule.lhs:
                continue
            entry = rule.pattern.get(attribute)
            if entry is not None and rule.pattern.is_constant_on(attribute):
                pool.add(entry)
            witness_attrs = tuple(a for a in rule.attributes if a != attribute)
            if not witness_attrs:
                continue
            positions = schema.positions(witness_attrs)
            codes = tuple(columns.code_at(row_pos, p) for p in positions)
            memo_key = (positions, codes, attr_pos)
            values = self._witness_memo.get(memo_key)
            if values is None:
                # no exclude_tid: the tuple's own value re-enters the pool
                # but is never admissible (it equals the current value), so
                # the lookup is shareable across the whole witness group
                mask = columns.match_mask_codes(zip(positions, codes))
                values = columns.values_at(attr_pos, mask) if mask.any() else []
                self._witness_memo[memo_key] = values
            pool.update(values)
        return pool

    def detach(self) -> None:
        """Release the generator's derived caches."""
        self._witness_memo.clear()
        self._witness_memo_version = -1
