"""On-demand candidate-update generation (paper Algorithm 1).

``UpdateAttributeTuple(t, B)`` searches the best replacement value for
cell ``t[B]`` across three scenarios:

1. ``B`` is the RHS of a violated *constant* CFD — suggest the pattern
   constant ``tp[A]``;
2. ``B`` is the RHS of a violated *variable* CFD — suggest a partner
   tuple's RHS value (``getValueForRHS``);
3. ``B`` appears on the LHS of a violated CFD — suggest the value
   maximising Eq. 7 similarity, searching first the constants that the
   rules assign to ``B`` and then the values of ``B`` among tuples that
   agree with ``t`` on the rule's remaining attributes
   (``getValueForLHS``).

The best-scoring value that is neither the current value nor in the
cell's prevented list becomes the cell's live suggestion.
"""

from __future__ import annotations

from repro.constraints.repository import RuleSet
from repro.constraints.violations import ViolationDetector
from repro.db.database import Database
from repro.db.index import HashIndex
from repro.repair.candidate import CandidateUpdate
from repro.repair.similarity import SimilarityFunction, similarity
from repro.repair.state import RepairState

__all__ = ["UpdateGenerator"]


class UpdateGenerator:
    """Generates candidate updates for dirty cells on demand.

    Parameters
    ----------
    db, rules, detector, state:
        The shared repair substrate. The generator writes its
        suggestions into *state* (one live suggestion per cell).
    sim:
        Update-evaluation function (defaults to Eq. 7 edit-distance
        similarity).

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> from repro.constraints import RuleSet, ViolationDetector, parse_rules
    >>> from repro.repair import RepairState
    >>> db = Database(Schema("r", ["zip", "city"]), [["46360", "Westvile"]])
    >>> rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
    >>> det = ViolationDetector(db, rules)
    >>> gen = UpdateGenerator(db, rules, det, RepairState())
    >>> update = gen.generate_for_cell(0, "city")
    >>> update.value
    'Michigan City'
    """

    def __init__(
        self,
        db: Database,
        rules: RuleSet,
        detector: ViolationDetector,
        state: RepairState,
        sim: SimilarityFunction = similarity,
    ) -> None:
        self.db = db
        self.rules = rules
        self.detector = detector
        self.state = state
        self.sim = sim
        self._indexes: dict[tuple[str, ...], HashIndex] = {}

    # ------------------------------------------------------------------
    def generate_all(self) -> list[CandidateUpdate]:
        """Initial pass: suggest updates for every dirty tuple's cells.

        Following the paper, every attribute of a dirty tuple is
        initially assumed potentially incorrect; attributes not involved
        in any violated rule simply yield no suggestion.
        """
        produced: list[CandidateUpdate] = []
        for tid in sorted(self.detector.dirty_tuples()):
            produced.extend(self.generate_for_tuple(tid))
        return produced

    def generate_for_tuple(self, tid: int) -> list[CandidateUpdate]:
        """Run ``UpdateAttributeTuple`` for every attribute of tuple *tid*."""
        produced: list[CandidateUpdate] = []
        violated = self.detector.violated_rules(tid)
        if not violated:
            return produced
        attrs: list[str] = []
        seen: set[str] = set()
        for rule in violated:
            for attr in rule.attributes:
                if attr not in seen:
                    seen.add(attr)
                    attrs.append(attr)
        for attr in attrs:
            update = self.generate_for_cell(tid, attr)
            if update is not None:
                produced.append(update)
        return produced

    def generate_for_cell(self, tid: int, attribute: str) -> CandidateUpdate | None:
        """``UpdateAttributeTuple(t, B)`` — Algorithm 1.

        Returns the new live suggestion for the cell, or ``None`` when
        the cell is frozen, the tuple is clean, or no admissible value
        exists. Any previous suggestion for the cell is replaced.
        """
        cell = (tid, attribute)
        if not self.state.is_changeable(cell):
            return None
        violated = self.detector.violated_rules(tid)
        if not violated:
            self.state.remove(cell)
            return None
        current = self.db.value(tid, attribute)
        prevented = self.state.prevented(cell)
        # A zero-similarity value is still admissible (the paper's own
        # example suggests 'Michigan City' for 'Westville'); it simply
        # carries the lowest possible certainty score.
        best_score = -1.0
        best_value: object | None = None

        def consider(value: object) -> None:
            nonlocal best_score, best_value
            if value == current or value in prevented or value is None:
                return
            score = self.sim(current, value)
            if (
                best_value is None
                or score > best_score
                or (score == best_score and str(value) < str(best_value))
            ):
                best_score = score
                best_value = value

        saw_lhs_rule = False
        for rule in violated:
            if rule.rhs == attribute:
                if rule.is_constant:
                    consider(rule.rhs_constant)  # scenario 1
                else:
                    for value in self._values_for_rhs(tid, rule):  # scenario 2
                        consider(value)
            if attribute in rule.lhs:
                saw_lhs_rule = True
        if saw_lhs_rule:
            for value in self._values_for_lhs(tid, attribute, violated):  # scenario 3
                consider(value)

        if best_value is None:
            self.state.remove(cell)
            return None
        update = CandidateUpdate(tid, attribute, best_value, best_score)
        self.state.put(update)
        return update

    # ------------------------------------------------------------------
    def _values_for_rhs(self, tid: int, rule) -> list[object]:
        """``getValueForRHS``: partner RHS values, most frequent first."""
        counts = self.detector.group_value_counts(tid, rule)
        current = self.db.value(tid, rule.rhs)
        candidates = [(count, value) for value, count in counts.items() if value != current]
        candidates.sort(key=lambda pair: (-pair[0], str(pair[1])))
        return [value for __, value in candidates]

    def _values_for_lhs(self, tid: int, attribute: str, violated) -> set[object]:
        """``getValueForLHS``: rule constants plus context-agreeing values.

        Algorithm 1 operates entirely on ``t.vioRuleList``, so the
        "values in the CFDs" pool is drawn from the *violated* rules'
        patterns only — pooling constants from all of Σ would funnel
        unrelated constants into every dirty tuple's suggestions.
        """
        pool: set[object] = set()
        row = self.db.row(tid)
        for rule in violated:
            if attribute not in rule.lhs:
                continue
            entry = rule.pattern.get(attribute)
            if entry is not None and rule.pattern.is_constant_on(attribute):
                pool.add(entry)
            witness_attrs = tuple(a for a in rule.attributes if a != attribute)
            if not witness_attrs:
                continue
            index = self._index_for(witness_attrs)
            key = tuple(row[a] for a in witness_attrs)
            for other_tid in index.lookup(key):
                if other_tid != tid:
                    pool.add(self.db.value(other_tid, attribute))
        return pool

    def _index_for(self, attributes: tuple[str, ...]) -> HashIndex:
        index = self._indexes.get(attributes)
        if index is None:
            index = HashIndex(self.db, attributes)
            self._indexes[attributes] = index
        return index

    def sync_indexes(self, change) -> None:
        """Fold a cell change into the witness indexes immediately.

        Database listeners fire in registration order; a consumer whose
        listener runs *before* the indexes' own listeners (such as the
        consistency manager's trigger) calls this first so scenario-3
        lookups see the new value. The index handler is idempotent, so
        the later regular notification is harmless.
        """
        for index in self._indexes.values():
            index._on_change(change)

    def detach(self) -> None:
        """Release the generator's auto-maintained indexes."""
        for index in self._indexes.values():
            index.detach()
        self._indexes.clear()
