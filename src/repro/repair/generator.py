"""On-demand candidate-update generation (paper Algorithm 1).

``UpdateAttributeTuple(t, B)`` searches the best replacement value for
cell ``t[B]`` across three scenarios:

1. ``B`` is the RHS of a violated *constant* CFD — suggest the pattern
   constant ``tp[A]``;
2. ``B`` is the RHS of a violated *variable* CFD — suggest a partner
   tuple's RHS value (``getValueForRHS``);
3. ``B`` appears on the LHS of a violated CFD — suggest the value
   maximising Eq. 7 similarity, searching first the constants that the
   rules assign to ``B`` and then the values of ``B`` among tuples that
   agree with ``t`` on the rule's remaining attributes
   (``getValueForLHS``).

Scenario enumeration runs on the database's dictionary-encoded columns:
witness agreement is one vectorized equality mask, candidate values
come straight from the column vocabulary, and scenario-2 partner
histograms are memoised per ``(rule, partition, stats version)``.

The engine drives generation through the **batched** path
(:meth:`UpdateGenerator.generate_for_cells`): cells are processed in
order, each tuple's violated-rule list is resolved once, cells sharing
an ``(attribute, current code, witness signature)`` reuse one selection
decision — carried *across* batches while ``(db.version,
detector.stats_epoch)`` holds still — and candidate pools are scored
through the batched Eq. 7
kernel (:meth:`~repro.repair.similarity.SimilarityCache.scores`). The
per-cell scalar path (:meth:`UpdateGenerator.generate_for_cell` with
``batched=False``) is retained as the byte-identical reference behind
``GDRConfig(suggest="scalar")``.

The best-scoring value that is neither the current value nor in the
cell's prevented list becomes the cell's live suggestion.
"""

from __future__ import annotations

from itertools import chain

from repro.constraints.repository import RuleSet
from repro.constraints.violations import ViolationDetector
from repro.db.database import Database
from repro.repair.candidate import CandidateUpdate
from repro.repair.similarity import SimilarityFunction, best_candidate, similarity
from repro.repair.state import RepairState

__all__ = ["UpdateGenerator"]

#: Scenario-2 histogram memo bound; the memo is cleared wholesale when
#: it fills (entries for dead partitions would otherwise accumulate).
_RHS_MEMO_CAPACITY = 4096

#: Cross-batch decision memo bound (cleared wholesale when full).
_DECISION_MEMO_CAPACITY = 8192

#: Witness-group value-pool memo bound; within one database version the
#: memo holds one entry per distinct witness signature, which is
#: unbounded in the number of partitions at scale.
_WITNESS_MEMO_CAPACITY = 1 << 16

_UNSET = object()


class UpdateGenerator:
    """Generates candidate updates for dirty cells on demand.

    Parameters
    ----------
    db, rules, detector, state:
        The shared repair substrate. The generator writes its
        suggestions into *state* (one live suggestion per cell).
    sim:
        Update-evaluation function (defaults to Eq. 7 edit-distance
        similarity). A :class:`~repro.repair.similarity.SimilarityCache`
        additionally enables code-space batched scoring.
    batched:
        When True (default) :meth:`generate_for_cells` shares witness
        signatures and batch-scores pools; when False it degrades to
        the scalar per-cell reference path.

    Examples
    --------
    >>> from repro.db import Database, Schema
    >>> from repro.constraints import RuleSet, ViolationDetector, parse_rules
    >>> from repro.repair import RepairState
    >>> db = Database(Schema("r", ["zip", "city"]), [["46360", "Westvile"]])
    >>> rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
    >>> det = ViolationDetector(db, rules)
    >>> gen = UpdateGenerator(db, rules, det, RepairState())
    >>> update = gen.generate_for_cell(0, "city")
    >>> update.value
    'Michigan City'
    """

    def __init__(
        self,
        db: Database,
        rules: RuleSet,
        detector: ViolationDetector,
        state: RepairState,
        sim: SimilarityFunction = similarity,
        batched: bool = True,
    ) -> None:
        self.db = db
        self.rules = rules
        self.detector = detector
        self.state = state
        self.sim = sim
        self.batched = batched
        # (witness positions, witness codes, target column) -> candidate
        # values; shared by every tuple in the same witness group and
        # invalidated wholesale when the database version moves
        self._witness_memo: dict[tuple, list[object]] = {}
        self._witness_memo_version = -1
        # (rule, partition key) -> (rule stats version, histogram values
        # ordered most-frequent-first); the scenario-2 pool minus the
        # tuple's own current value
        self._rhs_memo: dict[tuple, tuple[int, list[object]]] = {}
        # (rule, attribute) -> witness column positions, fixed per rule
        self._witness_positions: dict[tuple, tuple[tuple[str, ...], tuple[int, ...]]] = {}
        # witness signature -> shared selection outcome, carried across
        # generate_for_cells batches while (db version, detector stats
        # epoch) hold still; a signature pins every pool input, so the
        # stamp is the only remaining variable
        self._decision_memo: dict[tuple, tuple[object | None, float]] = {}
        self._decision_stamp: tuple[int, int] = (-1, -1)
        self._memo_hits = {"witness": 0, "rhs": 0, "decision": 0}
        self._memo_misses = {"witness": 0, "rhs": 0, "decision": 0}
        self._memo_clears = {"witness": 0, "rhs": 0, "decision": 0}

    # ------------------------------------------------------------------
    def generate_all(self) -> list[CandidateUpdate]:
        """Initial pass: suggest updates for every dirty tuple's cells.

        Following the paper, every attribute of a dirty tuple is
        initially assumed potentially incorrect; attributes not involved
        in any violated rule simply yield no suggestion. Iterates the
        detector's incrementally ordered dirty view — no per-pass sort —
        and (on the batched path) generates every cell through one
        :meth:`generate_for_cells` call, sharing witness signatures
        across the whole dirty set.
        """
        return self.generate_for_tuples(self.detector.dirty_tuples_ordered())

    def generate_for_tuples(self, tids) -> list[CandidateUpdate]:
        """Run ``UpdateAttributeTuple`` over every cell of many tuples.

        Cells are visited in the same order as per-tuple generation
        (tuples in the given order, each tuple's attributes in violated
        rule order), so the state-event stream is identical to the
        scalar path's.
        """
        violated_by_tid: dict[int, list] = {}
        cells: list[tuple[int, str]] = []
        for tid in tids:
            violated = self.detector.violated_rules(tid)
            violated_by_tid[tid] = violated
            cells.extend((tid, attr) for attr in self._tuple_attrs(violated))
        produced = self.generate_for_cells(cells, violated_by_tid)
        return [update for update in produced if update is not None]

    def generate_for_tuple(self, tid: int) -> list[CandidateUpdate]:
        """Run ``UpdateAttributeTuple`` for every attribute of tuple *tid*."""
        return self.generate_for_tuples((tid,))

    @staticmethod
    def _tuple_attrs(violated) -> list[str]:
        """Attributes of a tuple's violated rules, first-seen order."""
        attrs: list[str] = []
        seen: set[str] = set()
        for rule in violated:
            for attr in rule.attributes:
                if attr not in seen:
                    seen.add(attr)
                    attrs.append(attr)
        return attrs

    # ------------------------------------------------------------------
    def generate_for_cells(
        self,
        cells,
        violated_by_tid: dict[int, list] | None = None,
    ) -> list[CandidateUpdate | None]:
        """Algorithm 1 batched over many cells (aligned result list).

        Byte-identical to running :meth:`generate_for_cell` per cell in
        order: cell decisions are independent (each depends only on the
        database, the detector and the cell's own prevented/changeable
        flags), so violated-rule lists are shared per tuple and the
        full selection outcome is shared across cells with an equal
        witness signature. The decision memo survives between calls,
        stamped by ``(db.version, detector.stats_epoch)`` — repeated
        generation passes over an unchanged substrate (e.g. re-ranking
        between feedback batches) skip pool construction and scoring
        entirely. Pools are scored through the batched Eq. 7 kernel
        when the similarity function supports it.
        """
        if not self.batched:
            return [self.generate_for_cell(tid, attr) for tid, attr in cells]
        state = self.state
        detector = self.detector
        db = self.db
        columns = db.columns
        schema = db.schema
        if violated_by_tid is None:
            violated_by_tid = {}
        results: list[CandidateUpdate | None] = []
        stamp = (db.version, detector.stats_epoch)
        if stamp != self._decision_stamp:
            self._decision_memo.clear()
            self._decision_stamp = stamp
        decisions = self._decision_memo
        for cell in cells:
            tid, attribute = cell
            if not state.is_changeable(cell):
                results.append(None)
                continue
            violated = violated_by_tid.get(tid)
            if violated is None:
                violated = violated_by_tid[tid] = detector.violated_rules(tid)
            if not violated:
                state.remove(cell)
                results.append(None)
                continue
            current = db.value(tid, attribute)
            prevented = state.prevented(cell)
            signature = None
            decision = _UNSET
            if not prevented:
                # prevented cells get no sharing: their admissible set
                # is cell-specific
                signature = self._signature(
                    tid, columns.position_of(tid), attribute, violated, columns, schema
                )
                decision = decisions.get(signature, _UNSET)
            if decision is _UNSET:
                pools = self._pools_for(tid, attribute, violated)
                decision = self._select_best(attribute, current, pools, prevented)
                if signature is not None:
                    self._memo_misses["decision"] += 1
                    if len(decisions) >= _DECISION_MEMO_CAPACITY:
                        decisions.clear()
                        self._memo_clears["decision"] += 1
                    decisions[signature] = decision
            elif signature is not None:
                self._memo_hits["decision"] += 1
            best_value, best_score = decision
            if best_value is None:
                state.remove(cell)
                results.append(None)
                continue
            update = CandidateUpdate(tid, attribute, best_value, best_score)
            state.put(update)
            results.append(update)
        return results

    def generate_for_cell(self, tid: int, attribute: str) -> CandidateUpdate | None:
        """``UpdateAttributeTuple(t, B)`` — Algorithm 1, one cell.

        The scalar reference path (per-candidate similarity calls, no
        cross-cell sharing); the batched path reproduces it
        byte-for-byte. Returns the new live suggestion for the cell, or
        ``None`` when the cell is frozen, the tuple is clean, or no
        admissible value exists. Any previous suggestion for the cell
        is replaced.
        """
        cell = (tid, attribute)
        if not self.state.is_changeable(cell):
            return None
        violated = self.detector.violated_rules(tid)
        if not violated:
            self.state.remove(cell)
            return None
        current = self.db.value(tid, attribute)
        prevented = self.state.prevented(cell)

        pools = self._pools_for(tid, attribute, violated)
        best_value, best_score = best_candidate(
            current, chain.from_iterable(pools), excluded=prevented, sim=self.sim
        )
        if best_value is None:
            self.state.remove(cell)
            return None
        update = CandidateUpdate(tid, attribute, best_value, best_score)
        self.state.put(update)
        return update

    # ------------------------------------------------------------------
    # candidate pools (shared by the scalar and batched paths)
    # ------------------------------------------------------------------
    def _pools_for(self, tid: int, attribute: str, violated) -> list:
        """The scenario-1/2/3 candidate pools for one cell, in order."""
        pools = []
        saw_lhs_rule = False
        for rule in violated:
            if rule.rhs == attribute:
                if rule.is_constant:
                    pools.append((rule.rhs_constant,))  # scenario 1
                else:
                    pools.append(self._values_for_rhs(tid, rule))  # scenario 2
            if attribute in rule.lhs:
                saw_lhs_rule = True
        if saw_lhs_rule:
            pools.append(self._values_for_lhs(tid, attribute, violated))  # scenario 3
        return pools

    def _signature(self, tid: int, row: int, attribute: str, violated, columns, schema) -> tuple:
        """Witness signature: everything the cell's decision depends on.

        Two unprevented cells with equal signatures see identical
        candidate pools (built in identical order) and an identical
        current value, so they share one selection outcome:

        * the attribute and the cell's current code;
        * per violated rule touching the attribute, the rule identity
          plus its pool key — nothing for a constant RHS (the constant
          is fixed by the rule), the tuple's LHS partition for a
          variable RHS, the tuple's witness codes for an LHS rule.
        """
        pos = schema.position(attribute)
        code_at = columns.code_at
        parts: list = [pos, code_at(row, pos)]
        for rule in violated:
            if rule.rhs == attribute:
                if rule.is_constant:
                    parts.append(id(rule))
                else:
                    parts.append((id(rule), self.detector.partition_key(tid, rule)))
            if attribute in rule.lhs:
                __, positions = self._witness_layout(rule, attribute, schema)
                codes = tuple(code_at(row, p) for p in positions)
                parts.append((id(rule), codes))
        return tuple(parts)

    def _witness_layout(self, rule, attribute: str, schema):
        """Witness attributes and column positions of *rule* sans *attribute*."""
        layout_key = (rule, attribute)
        layout = self._witness_positions.get(layout_key)
        if layout is None:
            witness_attrs = tuple(a for a in rule.attributes if a != attribute)
            positions = tuple(schema.positions(witness_attrs))
            layout = self._witness_positions[layout_key] = (witness_attrs, positions)
        return layout

    def _values_for_rhs(self, tid: int, rule) -> list[object]:
        """``getValueForRHS``: partner RHS values, most frequent first.

        The partition's ordered histogram is memoised per ``(rule,
        partition key)`` and stamped with the rule's statistics version,
        so every tuple of the partition (and every repeated visit while
        the rule's statistics hold still) shares one sort. Filtering
        the tuple's own current value afterwards preserves the
        reference order (the sort is stable and the key ignores list
        position).
        """
        detector = self.detector
        part_key = detector.partition_key(tid, rule)
        memo_key = (rule, part_key)
        version = detector.rule_stats_version(rule)
        entry = self._rhs_memo.get(memo_key)
        if entry is None or entry[0] != version:
            self._memo_misses["rhs"] += 1
            counts = detector.group_value_counts(tid, rule)
            ranked = [(count, value) for value, count in counts.items()]
            ranked.sort(key=lambda pair: (-pair[0], str(pair[1])))
            if len(self._rhs_memo) >= _RHS_MEMO_CAPACITY:
                self._rhs_memo.clear()
                self._memo_clears["rhs"] += 1
            entry = self._rhs_memo[memo_key] = (version, [value for __, value in ranked])
        else:
            self._memo_hits["rhs"] += 1
        current = self.db.value(tid, rule.rhs)
        return [value for value in entry[1] if value != current]

    def _values_for_lhs(self, tid: int, attribute: str, violated) -> set[object]:
        """``getValueForLHS``: rule constants plus context-agreeing values.

        Algorithm 1 operates entirely on ``t.vioRuleList``, so the
        "values in the CFDs" pool is drawn from the *violated* rules'
        patterns only — pooling constants from all of Σ would funnel
        unrelated constants into every dirty tuple's suggestions.
        Witness agreement is evaluated as a vectorized equality mask
        over the dictionary-encoded columns, and the agreeing tuples'
        values of ``attribute`` are decoded via the column vocabulary.
        """
        pool: set[object] = set()
        schema = self.db.schema
        columns = self.db.columns
        attr_pos = schema.position(attribute)
        version = self.db.version
        if version != self._witness_memo_version:
            self._witness_memo.clear()
            self._witness_memo_version = version
        row_pos = columns.position_of(tid)
        for rule in violated:
            if attribute not in rule.lhs:
                continue
            entry = rule.pattern.get(attribute)
            if entry is not None and rule.pattern.is_constant_on(attribute):
                pool.add(entry)
            witness_attrs, positions = self._witness_layout(rule, attribute, schema)
            if not witness_attrs:
                continue
            codes = tuple(columns.code_at(row_pos, p) for p in positions)
            memo_key = (positions, codes, attr_pos)
            values = self._witness_memo.get(memo_key)
            if values is None:
                self._memo_misses["witness"] += 1
                # no exclude_tid: the tuple's own value re-enters the pool
                # but is never admissible (it equals the current value), so
                # the lookup is shareable across the whole witness group
                mask = columns.match_mask_codes(zip(positions, codes))
                if mask.any():
                    values = columns.vocabulary(attr_pos).decode_many(
                        columns.codes_at(attr_pos, mask).tolist()
                    )
                else:
                    values = []
                if len(self._witness_memo) >= _WITNESS_MEMO_CAPACITY:
                    self._witness_memo.clear()
                    self._memo_clears["witness"] += 1
                self._witness_memo[memo_key] = values
            else:
                self._memo_hits["witness"] += 1
            pool.update(values)
        return pool

    # ------------------------------------------------------------------
    def _select_best(
        self, attribute: str, current, pools, prevented
    ) -> tuple[object | None, float]:
        """Batch-scored :func:`~repro.repair.similarity.best_candidate`.

        Admissibility (skip the current value, prevented values and
        ``None``) is applied first; the surviving candidates are scored
        in one batched pass and the selection loop then reproduces the
        reference tie-breaks (higher score, then lexicographically
        smaller string form) over the same candidate order.
        """
        admissible = [
            value
            for value in chain.from_iterable(pools)
            if not (value == current or value in prevented or value is None)
        ]
        if not admissible:
            return None, -1.0
        scores = self._scores(attribute, current, admissible)
        best_value: object | None = None
        best_score = -1.0
        best_str: str | None = None
        for value, score in zip(admissible, scores):
            if best_value is None or score > best_score:
                best_value = value
                best_score = score
                best_str = None
            elif score == best_score:
                if best_str is None:
                    best_str = str(best_value)
                value_str = str(value)
                if value_str < best_str:
                    best_value = value
                    best_str = value_str
        return best_value, best_score

    def _scores(self, attribute: str, current, values) -> list[float]:
        """Eq. 7 scores for a candidate list (kernel-batched when possible)."""
        scores = getattr(self.sim, "scores", None)
        if scores is not None:
            return scores(self.db.schema.position(attribute), current, values)
        sim = self.sim
        return [sim(current, value) for value in values]

    @property
    def stats(self) -> dict[str, int]:
        """Cache-health counters for the generator's three memos."""
        out: dict[str, int] = {
            "witness_memo_size": len(self._witness_memo),
            "witness_memo_capacity": _WITNESS_MEMO_CAPACITY,
            "rhs_memo_size": len(self._rhs_memo),
            "rhs_memo_capacity": _RHS_MEMO_CAPACITY,
            "decision_memo_size": len(self._decision_memo),
            "decision_memo_capacity": _DECISION_MEMO_CAPACITY,
        }
        for memo in ("witness", "rhs", "decision"):
            out[f"{memo}_memo_hits"] = self._memo_hits[memo]
            out[f"{memo}_memo_misses"] = self._memo_misses[memo]
            out[f"{memo}_memo_clears"] = self._memo_clears[memo]
        return out

    def detach(self) -> None:
        """Release the generator's derived caches."""
        self._witness_memo.clear()
        self._witness_memo_version = -1
        self._rhs_memo.clear()
        self._witness_positions.clear()
        self._decision_memo.clear()
        self._decision_stamp = (-1, -1)
