"""The updates consistency manager (paper §3 and Appendix A.5).

Once an update is confirmed — by the user or by the learner — it is
applied to the database immediately. The manager then restores the two
invariants of Appendix A.5:

(i)  every tuple violating some rule is (again) known to be dirty and
     has candidate updates where derivable;
(ii) no live suggestion depends on cell values that the applied update
     changed — such suggestions are regenerated against the new
     instance.

Because :class:`~repro.constraints.violations.ViolationDetector`
maintains violations incrementally via database listeners, invariant
(i) reduces to regenerating updates for the tuples whose violation
status the write could have altered: the written tuple itself and the
tuples that shared (before or after the write) a variable-CFD partition
with it.

Step 9 of the GDR process (cover newly dirty tuples, prune clean ones)
runs in **O(delta)**: the manager holds a
:class:`~repro.constraints.violations.DirtyDelta` cursor over the
detector's dirty-set transitions, listens to
:class:`~repro.repair.state.RepairState` events for coverage changes,
and records the tuples its own writes revisited — each
:meth:`ConsistencyManager.refresh_suggestions` walks only that union
(plus the persistent set of dirty-but-uncoverable tuples, which the
paper's process re-attempts every round). The full sweep survives as
:meth:`ConsistencyManager.refresh_suggestions_full`, the
cross-checked reference path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.repository import RuleSet
from repro.constraints.violations import ViolationDetector
from repro.db.changelog import CellChange
from repro.db.database import Database
from repro.repair.candidate import CandidateUpdate
from repro.repair.feedback import Feedback, UserFeedback
from repro.repair.generator import UpdateGenerator
from repro.repair.state import EventKind, RepairState, StateEvent

__all__ = ["AppliedFeedback", "ConsistencyManager"]


@dataclass(frozen=True, slots=True)
class AppliedFeedback:
    """Outcome of routing one feedback decision through the manager.

    Attributes
    ----------
    update:
        The suggestion the feedback was about.
    feedback:
        The decision that was applied.
    applied_value:
        Value actually written to the database (``None`` when nothing
        was written — reject without correction, or retain).
    revisited_cells:
        Cells whose suggestions were invalidated and regenerated.
    replacement:
        The new suggestion generated for the same cell after a plain
        reject, if any.
    """

    update: CandidateUpdate
    feedback: UserFeedback
    applied_value: object | None = None
    revisited_cells: tuple[tuple[int, str], ...] = field(default_factory=tuple)
    replacement: CandidateUpdate | None = None

    @property
    def wrote_database(self) -> bool:
        """True when the decision modified the database."""
        return self.applied_value is not None


class ConsistencyManager:
    """Applies feedback decisions and keeps PossibleUpdates consistent."""

    def __init__(
        self,
        db: Database,
        rules: RuleSet,
        detector: ViolationDetector,
        state: RepairState,
        generator: UpdateGenerator,
    ) -> None:
        self.db = db
        self.rules = rules
        self.detector = detector
        self.state = state
        self.generator = generator
        # optional write-ahead journal (repro.db.journal.FeedbackJournal):
        # when set, every feedback decision is journaled on entry to
        # apply_feedback, before any routing or database write
        self.journal = None
        # trigger hook (paper §3): out-of-band edits — data entry, other
        # tools — must also keep PossibleUpdates consistent. Writes the
        # manager itself performs are handled by the feedback path and
        # suppressed here.
        self._suspend_trigger = False
        # --- O(delta) refresh bookkeeping -----------------------------
        # dirty-status flips since the last refresh, straight from the
        # detector's tracker
        self._dirty_cursor = detector.dirty_delta()
        # tuples whose coverage or suggestion values may have drifted:
        # revisited by our own writes, touched by external writes, or
        # stripped of a suggestion (state REMOVED events)
        self._touched: set[int] = set()
        # dirty tuples for which generation produced nothing — the full
        # sweep re-attempts them every round (the database may have
        # changed elsewhere, opening new candidate values), so the delta
        # path must too
        self._uncovered: set[int] = set()
        # the delta machinery ignores state events the refresh itself
        # causes: every mutation inside a refresh concerns a tuple the
        # sweep is already processing
        self._in_refresh = False
        self._need_full = False
        state.add_listener(self._on_state_event)
        db.add_listener(self._on_external_change)

    def detach(self) -> None:
        """Stop watching out-of-band database edits and state events."""
        self.db.remove_listener(self._on_external_change)
        self.state.remove_listener(self._on_state_event)

    def _on_external_change(self, change: CellChange) -> None:
        if self._suspend_trigger:
            return
        # the database updates its columnar mirror synchronously inside
        # set_value, before listeners fire, so regeneration below always
        # sees the post-write instance
        self._revisit_after_write(change.tid, change.attribute, exclude=None)

    def _on_state_event(self, event: StateEvent) -> None:
        if self._in_refresh:
            return
        if event.kind is EventKind.CLEARED:
            # the pool was wiped wholesale — delta bookkeeping is void
            self._need_full = True
            self._touched.clear()
            self._uncovered.clear()
        elif event.kind is EventKind.REMOVED:
            # a tuple may have lost its last suggestion while staying
            # dirty; the next refresh re-examines it
            self._touched.add(event.cell[0])

    # ------------------------------------------------------------------
    def apply_feedback(
        self, update: CandidateUpdate, feedback: UserFeedback, source: str = "user"
    ) -> AppliedFeedback:
        """Route one decision about *update* (Appendix A.5 steps 1-6).

        Parameters
        ----------
        update:
            The suggestion being decided.
        feedback:
            The decision; a reject carrying a correction is treated as
            a confirm of the corrected value (paper §4.2).
        source:
            Provenance tag recorded in the database change log
            (``"user"``, ``"learner"``, ...).
        """
        cell = update.cell
        kind = feedback.kind

        if self.journal is not None:
            # WAL contract: the decision is durable before it is acted
            # on, so a resumed session can replay it instead of asking
            # the user again
            self.journal.log_feedback(update, feedback, source)

        if kind is Feedback.RETAIN:
            # Step 1: current value is correct; stop suggesting.
            self.state.freeze(cell)
            return AppliedFeedback(update, feedback)

        if kind is Feedback.REJECT and not feedback.has_correction:
            # Step 2: the value is wrong; prevent it and look again.
            self.state.prevent(cell, update.value)
            self.state.remove(cell)
            replacement = self.generator.generate_for_cells([cell])[0]
            return AppliedFeedback(update, feedback, replacement=replacement)

        # Confirm (possibly via a reject carrying the corrected value).
        value = feedback.correction if feedback.has_correction else update.value
        return self._apply_confirmed(update, feedback, value, source)

    def _apply_confirmed(
        self,
        update: CandidateUpdate,
        feedback: UserFeedback,
        value: object,
        source: str,
    ) -> AppliedFeedback:
        """Step 3: write the cell and restore both invariants."""
        tid, attribute = update.cell

        # Tuples whose partitions the write leaves (computed pre-write).
        before: set[int] = set()
        for rule in self.rules.rules_touching(attribute):
            if rule.is_variable:
                before.update(self.detector.partners(tid, rule))

        self._suspend_trigger = True
        try:
            self.db.set_value(tid, attribute, value, source=source)
        finally:
            self._suspend_trigger = False
        self.state.freeze(update.cell)

        revisited = self._revisit_after_write(
            tid, attribute, exclude=update.cell, extra_tuples=before
        )
        return AppliedFeedback(
            update,
            feedback,
            applied_value=value,
            revisited_cells=tuple(revisited),
        )

    def _revisit_after_write(
        self,
        tid: int,
        attribute: str,
        exclude: tuple[int, str] | None,
        extra_tuples: set[int] | None = None,
    ) -> list[tuple[int, str]]:
        """Steps 4-5: drop stale suggestions and regenerate.

        Covers the written tuple, the tuples sharing its (post-write)
        variable-rule partitions and any *extra_tuples* the caller knows
        were affected (e.g. pre-write partners).
        """
        affected: set[int] = {tid}
        if extra_tuples:
            affected.update(extra_tuples)
        revisit_attrs: set[str] = set()
        for rule in self.rules.rules_touching(attribute):
            revisit_attrs.update(rule.attributes)
            if rule.is_variable:
                affected.update(self.detector.partners(tid, rule))
        # these tuples' suggestions and coverage may drift; the next
        # delta refresh re-examines them
        self._touched.update(affected)
        # one batched generation pass over every revisited cell; cell
        # decisions are independent, so pre-reading the had-a-suggestion
        # flags matches the interleaved per-cell reference exactly
        cells: list[tuple[int, str]] = []
        ordered_attrs = sorted(revisit_attrs)
        for other_tid in sorted(affected):
            for other_attr in ordered_attrs:
                other_cell = (other_tid, other_attr)
                if exclude is not None and other_cell == exclude:
                    continue
                if self.state.is_changeable(other_cell):
                    cells.append(other_cell)
        had_update = [self.state.get(cell) is not None for cell in cells]
        regenerated = self.generator.generate_for_cells(cells)
        return [
            cell
            for cell, had, update in zip(cells, had_update, regenerated)
            if had or update is not None
        ]

    # ------------------------------------------------------------------
    def refresh_suggestions(self) -> int:
        """Step 9 of the GDR process: cover newly dirty tuples.

        Generates suggestions for every dirty tuple that currently has
        no live suggestion on any changeable cell, and prunes
        suggestions for tuples that became clean or whose suggested
        value was written. Walks only the tuples that could have
        changed since the last refresh — dirty-status flips, tuples
        revisited by writes, tuples that lost suggestions, and the
        standing uncoverable set — falling back to one full sweep on
        the first call (or after a detector rebuild / state clear).
        Returns the number of suggestions generated.
        """
        delta = self._dirty_cursor.poll()
        if delta is None or self._need_full:
            self._need_full = False
            self._touched.clear()
            return self.refresh_suggestions_full()
        candidates = set(delta)
        candidates.update(self._touched)
        self._touched.clear()
        candidates.update(self._uncovered)
        if not candidates:
            return 0
        detector = self.detector
        state = self.state
        db = self.db
        uncovered = self._uncovered
        self._in_refresh = True
        try:
            # classification first (independent per tuple), then one
            # batched generation pass over every uncovered dirty tuple —
            # witness signatures and candidate pools are shared across
            # the whole wave instead of per tuple
            generate: list[int] = []
            for tid in sorted(candidates):
                if not detector.is_dirty(tid):
                    for update in state.updates_for_tuple(tid):
                        state.remove(update.cell)
                    uncovered.discard(tid)
                    continue
                for update in state.updates_for_tuple(tid):
                    if update.value == db.value(*update.cell):
                        state.remove(update.cell)
                if state.covers_tuple(tid):
                    uncovered.discard(tid)
                else:
                    generate.append(tid)
            produced = len(self.generator.generate_for_tuples(generate))
            for tid in generate:
                if state.covers_tuple(tid):
                    uncovered.discard(tid)
                else:
                    uncovered.add(tid)
        finally:
            self._in_refresh = False
        return produced

    def refresh_suggestions_full(self) -> int:
        """The rebuild-from-scratch reference for :meth:`refresh_suggestions`.

        One pass over the live suggestion pool classifies every
        suggestion as stale (tuple clean, or value already written) or
        covering; stale suggestions are pruned and every uncovered
        dirty tuple gets a generation attempt.
        """
        produced = 0
        detector = self.detector
        state = self.state
        db = self.db
        # drain delta bookkeeping: after a full sweep everything below
        # is consistent with the current instance
        self._dirty_cursor.poll()
        self._touched.clear()
        stale: list[tuple[int, str]] = []
        covered: set[int] = set()
        self._in_refresh = True
        try:
            for update in state.live_updates():
                if not detector.is_dirty(update.tid) or update.value == db.value(*update.cell):
                    stale.append(update.cell)
                else:
                    covered.add(update.tid)
            for cell in stale:
                state.remove(cell)
            # the detector maintains the dirty set pre-sorted; iterate
            # the incremental ordered view instead of re-sorting, and
            # generate the whole uncovered wave in one batched pass
            generate = [
                tid for tid in detector.dirty_tuples_ordered() if tid not in covered
            ]
            produced += len(self.generator.generate_for_tuples(generate))
            self._uncovered = {
                tid for tid in generate if not state.covers_tuple(tid)
            }
        finally:
            self._in_refresh = False
        return produced

    def check_invariants(self) -> list[str]:
        """Diagnostics for tests: returns human-readable violations.

        Checks that no live suggestion targets a frozen cell, proposes
        the cell's current value, or proposes a prevented value.
        """
        problems: list[str] = []
        for update in self.state.updates():
            cell = update.cell
            if not self.state.is_changeable(cell):
                problems.append(f"suggestion on frozen cell {cell}")
            if update.value == self.db.value(*cell):
                problems.append(f"suggestion equals current value at {cell}")
            if self.state.is_prevented(cell, update.value):
                problems.append(f"suggestion proposes prevented value at {cell}")
        return problems
