"""The updates consistency manager (paper §3 and Appendix A.5).

Once an update is confirmed — by the user or by the learner — it is
applied to the database immediately. The manager then restores the two
invariants of Appendix A.5:

(i)  every tuple violating some rule is (again) known to be dirty and
     has candidate updates where derivable;
(ii) no live suggestion depends on cell values that the applied update
     changed — such suggestions are regenerated against the new
     instance.

Because :class:`~repro.constraints.violations.ViolationDetector`
maintains violations incrementally via database listeners, invariant
(i) reduces to regenerating updates for the tuples whose violation
status the write could have altered: the written tuple itself and the
tuples that shared (before or after the write) a variable-CFD partition
with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.repository import RuleSet
from repro.constraints.violations import ViolationDetector
from repro.db.changelog import CellChange
from repro.db.database import Database
from repro.repair.candidate import CandidateUpdate
from repro.repair.feedback import Feedback, UserFeedback
from repro.repair.generator import UpdateGenerator
from repro.repair.state import RepairState

__all__ = ["AppliedFeedback", "ConsistencyManager"]


@dataclass(frozen=True, slots=True)
class AppliedFeedback:
    """Outcome of routing one feedback decision through the manager.

    Attributes
    ----------
    update:
        The suggestion the feedback was about.
    feedback:
        The decision that was applied.
    applied_value:
        Value actually written to the database (``None`` when nothing
        was written — reject without correction, or retain).
    revisited_cells:
        Cells whose suggestions were invalidated and regenerated.
    replacement:
        The new suggestion generated for the same cell after a plain
        reject, if any.
    """

    update: CandidateUpdate
    feedback: UserFeedback
    applied_value: object | None = None
    revisited_cells: tuple[tuple[int, str], ...] = field(default_factory=tuple)
    replacement: CandidateUpdate | None = None

    @property
    def wrote_database(self) -> bool:
        """True when the decision modified the database."""
        return self.applied_value is not None


class ConsistencyManager:
    """Applies feedback decisions and keeps PossibleUpdates consistent."""

    def __init__(
        self,
        db: Database,
        rules: RuleSet,
        detector: ViolationDetector,
        state: RepairState,
        generator: UpdateGenerator,
    ) -> None:
        self.db = db
        self.rules = rules
        self.detector = detector
        self.state = state
        self.generator = generator
        # trigger hook (paper §3): out-of-band edits — data entry, other
        # tools — must also keep PossibleUpdates consistent. Writes the
        # manager itself performs are handled by the feedback path and
        # suppressed here.
        self._suspend_trigger = False
        db.add_listener(self._on_external_change)

    def detach(self) -> None:
        """Stop watching out-of-band database edits."""
        self.db.remove_listener(self._on_external_change)

    def _on_external_change(self, change: CellChange) -> None:
        if self._suspend_trigger:
            return
        # the database updates its columnar mirror synchronously inside
        # set_value, before listeners fire, so regeneration below always
        # sees the post-write instance
        self._revisit_after_write(change.tid, change.attribute, exclude=None)

    # ------------------------------------------------------------------
    def apply_feedback(
        self, update: CandidateUpdate, feedback: UserFeedback, source: str = "user"
    ) -> AppliedFeedback:
        """Route one decision about *update* (Appendix A.5 steps 1-6).

        Parameters
        ----------
        update:
            The suggestion being decided.
        feedback:
            The decision; a reject carrying a correction is treated as
            a confirm of the corrected value (paper §4.2).
        source:
            Provenance tag recorded in the database change log
            (``"user"``, ``"learner"``, ...).
        """
        cell = update.cell
        kind = feedback.kind

        if kind is Feedback.RETAIN:
            # Step 1: current value is correct; stop suggesting.
            self.state.freeze(cell)
            return AppliedFeedback(update, feedback)

        if kind is Feedback.REJECT and not feedback.has_correction:
            # Step 2: the value is wrong; prevent it and look again.
            self.state.prevent(cell, update.value)
            self.state.remove(cell)
            replacement = self.generator.generate_for_cell(*cell)
            return AppliedFeedback(update, feedback, replacement=replacement)

        # Confirm (possibly via a reject carrying the corrected value).
        value = feedback.correction if feedback.has_correction else update.value
        return self._apply_confirmed(update, feedback, value, source)

    def _apply_confirmed(
        self,
        update: CandidateUpdate,
        feedback: UserFeedback,
        value: object,
        source: str,
    ) -> AppliedFeedback:
        """Step 3: write the cell and restore both invariants."""
        tid, attribute = update.cell

        # Tuples whose partitions the write leaves (computed pre-write).
        before: set[int] = set()
        for rule in self.rules.rules_touching(attribute):
            if rule.is_variable:
                before.update(self.detector.partners(tid, rule))

        self._suspend_trigger = True
        try:
            self.db.set_value(tid, attribute, value, source=source)
        finally:
            self._suspend_trigger = False
        self.state.freeze(update.cell)

        revisited = self._revisit_after_write(
            tid, attribute, exclude=update.cell, extra_tuples=before
        )
        return AppliedFeedback(
            update,
            feedback,
            applied_value=value,
            revisited_cells=tuple(revisited),
        )

    def _revisit_after_write(
        self,
        tid: int,
        attribute: str,
        exclude: tuple[int, str] | None,
        extra_tuples: set[int] | None = None,
    ) -> list[tuple[int, str]]:
        """Steps 4-5: drop stale suggestions and regenerate.

        Covers the written tuple, the tuples sharing its (post-write)
        variable-rule partitions and any *extra_tuples* the caller knows
        were affected (e.g. pre-write partners).
        """
        affected: set[int] = {tid}
        if extra_tuples:
            affected.update(extra_tuples)
        revisit_attrs: set[str] = set()
        for rule in self.rules.rules_touching(attribute):
            revisit_attrs.update(rule.attributes)
            if rule.is_variable:
                affected.update(self.detector.partners(tid, rule))
        revisited: list[tuple[int, str]] = []
        for other_tid in sorted(affected):
            for other_attr in sorted(revisit_attrs):
                other_cell = (other_tid, other_attr)
                if exclude is not None and other_cell == exclude:
                    continue
                if not self.state.is_changeable(other_cell):
                    continue
                had_update = self.state.get(other_cell) is not None
                regenerated = self.generator.generate_for_cell(other_tid, other_attr)
                if had_update or regenerated is not None:
                    revisited.append(other_cell)
        return revisited

    # ------------------------------------------------------------------
    def refresh_suggestions(self) -> int:
        """Step 9 of the GDR process: cover newly dirty tuples.

        Generates suggestions for every dirty tuple that currently has
        no live suggestion on any changeable cell, and prunes
        suggestions for tuples that became clean. Returns the number of
        suggestions generated.
        """
        produced = 0
        detector = self.detector
        # prune suggestions whose tuples are now clean or out of date
        for update in self.state.updates():
            if not detector.is_dirty(update.tid):
                self.state.remove(update.cell)
            elif update.value == self.db.value(*update.cell):
                self.state.remove(update.cell)
        covered = {u.tid for u in self.state.updates()}
        # the detector maintains the dirty set pre-sorted; iterate the
        # incremental ordered view instead of re-sorting per refresh
        for tid in detector.dirty_tuples_ordered():
            if tid not in covered:
                produced += len(self.generator.generate_for_tuple(tid))
        return produced

    def check_invariants(self) -> list[str]:
        """Diagnostics for tests: returns human-readable violations.

        Checks that no live suggestion targets a frozen cell, proposes
        the cell's current value, or proposes a prevented value.
        """
        problems: list[str] = []
        for update in self.state.updates():
            cell = update.cell
            if not self.state.is_changeable(cell):
                problems.append(f"suggestion on frozen cell {cell}")
            if update.value == self.db.value(*cell):
                problems.append(f"suggestion equals current value at {cell}")
            if self.state.is_prevented(cell, update.value):
                problems.append(f"suggestion proposes prevented value at {cell}")
        return problems
