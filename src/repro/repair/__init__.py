"""Update generation, consistency management and the automatic baseline."""

from repro.repair.candidate import CandidateUpdate
from repro.repair.consistency import AppliedFeedback, ConsistencyManager
from repro.repair.feedback import Feedback, UserFeedback
from repro.repair.generator import UpdateGenerator
from repro.repair.heuristic import HeuristicRepairResult, batch_repair
from repro.repair.similarity import (
    EditDistanceSimilarity,
    SimilarityCache,
    SimilarityFunction,
    best_candidate,
    levenshtein,
    levenshtein_many,
    similarity,
    similarity_many,
    token_jaccard,
)
from repro.repair.state import EventKind, RepairState, StateEvent

__all__ = [
    "AppliedFeedback",
    "CandidateUpdate",
    "ConsistencyManager",
    "EditDistanceSimilarity",
    "EventKind",
    "Feedback",
    "HeuristicRepairResult",
    "RepairState",
    "SimilarityCache",
    "SimilarityFunction",
    "StateEvent",
    "UpdateGenerator",
    "UserFeedback",
    "batch_repair",
    "best_candidate",
    "levenshtein",
    "levenshtein_many",
    "similarity",
    "similarity_many",
    "token_jaccard",
]
