"""Candidate updates: the ⟨t, A, v, s⟩ tuples of the paper.

A :class:`CandidateUpdate` proposes replacing the value of attribute
``A`` in tuple ``t`` by ``v``; ``s ∈ [0, 1]`` is the repair-evaluation
score (Eq. 7) expressing the repairing algorithm's certainty.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CandidateUpdate"]


@dataclass(frozen=True, slots=True)
class CandidateUpdate:
    """One suggested update ``r = ⟨t, A, v, s⟩``.

    Attributes
    ----------
    tid:
        Target tuple id.
    attribute:
        Target attribute ``A``.
    value:
        Suggested replacement value ``v``.
    score:
        Update-evaluation score ``s`` in ``[0, 1]``.
    """

    tid: int
    attribute: str
    value: object
    score: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"update score must be in [0, 1], got {self.score}")

    @property
    def cell(self) -> tuple[int, str]:
        """The targeted ``(tid, attribute)`` cell."""
        return (self.tid, self.attribute)

    @property
    def group_key(self) -> tuple[str, object]:
        """Grouping key used by GDR: same attribute, same suggested value."""
        return (self.attribute, self.value)

    def with_score(self, score: float) -> "CandidateUpdate":
        """A copy of this update carrying a different score."""
        return replace(self, score=score)

    def describe(self) -> str:
        """Human-readable one-liner for logs and interactive display."""
        return f"t{self.tid}.{self.attribute} -> {self.value!r} (s={self.score:.2f})"
