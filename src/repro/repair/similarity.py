"""String similarity for update evaluation (paper Eq. 7).

The repair-evaluation score of an update replacing ``v`` by ``v'`` is::

    s(r) = sim(v, v') = 1 - dist(v, v') / max(|v|, |v'|)

where ``dist`` is the edit (Levenshtein) distance. Any domain-specific
similarity can be plugged in; everything downstream only requires a
callable mapping two values into ``[0, 1]``.
"""

from __future__ import annotations

from collections.abc import Callable
from functools import lru_cache

__all__ = [
    "EditDistanceSimilarity",
    "SimilarityFunction",
    "best_candidate",
    "levenshtein",
    "similarity",
    "token_jaccard",
]

#: Signature of a pluggable similarity function.
SimilarityFunction = Callable[[object, object], float]


def levenshtein(a: str, b: str) -> int:
    """Edit distance between two strings (insert/delete/substitute).

    Examples
    --------
    >>> levenshtein("kitten", "sitting")
    3
    >>> levenshtein("", "abc")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


@lru_cache(maxsize=65536)
def _cached_similarity(a: str, b: str) -> float:
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def similarity(original: object, suggested: object) -> float:
    """Eq. 7 similarity between the current and suggested values.

    Non-string values are compared on their string representation,
    which matches how mixed-type cells behave in the paper's datasets
    (zip codes, ages, hour counts).

    Examples
    --------
    >>> similarity("Westville", "Westville")
    1.0
    >>> 0.0 <= similarity("FT Wayne", "Fort Wayne") < 1.0
    True
    """
    if original == suggested:
        return 1.0
    return _cached_similarity(str(original), str(suggested))


def best_candidate(
    original: object,
    candidates,
    excluded=(),
    sim: SimilarityFunction = similarity,
) -> tuple[object | None, float]:
    """The admissible candidate maximising Eq. 7 similarity.

    Skips ``None``, the current value and anything in *excluded* (the
    cell's prevented list); ties break toward the lexicographically
    smaller string form, so the choice is order-independent. Returns
    ``(value, score)``, with ``(None, -1.0)`` when nothing is
    admissible. A zero-similarity value is still admissible (the
    paper's own example suggests 'Michigan City' for 'Westville'); it
    simply carries the lowest possible certainty score.
    """
    best_score = -1.0
    best_value: object | None = None
    for value in candidates:
        if value == original or value in excluded or value is None:
            continue
        score = sim(original, value)
        if (
            best_value is None
            or score > best_score
            or (score == best_score and str(value) < str(best_value))
        ):
            best_score = score
            best_value = value
    return best_value, best_score


def token_jaccard(original: object, suggested: object) -> float:
    """Alternative similarity: Jaccard overlap of whitespace tokens.

    Useful for multi-word address fields where word order matters less
    than shared words. Provided as a drop-in alternative to Eq. 7.
    """
    tokens_a = set(str(original).lower().split())
    tokens_b = set(str(suggested).lower().split())
    if not tokens_a and not tokens_b:
        return 1.0
    union = tokens_a | tokens_b
    if not union:
        return 1.0
    return len(tokens_a & tokens_b) / len(union)


class EditDistanceSimilarity:
    """The default Eq. 7 evaluation function as a reusable object.

    Parameters
    ----------
    case_sensitive:
        When False, values are lower-cased before comparison.
    """

    def __init__(self, case_sensitive: bool = True) -> None:
        self.case_sensitive = case_sensitive

    def __call__(self, original: object, suggested: object) -> float:
        if self.case_sensitive:
            return similarity(original, suggested)
        return similarity(str(original).lower(), str(suggested).lower())

    def __repr__(self) -> str:
        return f"EditDistanceSimilarity(case_sensitive={self.case_sensitive})"
