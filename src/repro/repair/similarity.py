"""String similarity for update evaluation (paper Eq. 7).

The repair-evaluation score of an update replacing ``v`` by ``v'`` is::

    s(r) = sim(v, v') = 1 - dist(v, v') / max(|v|, |v'|)

where ``dist`` is the edit (Levenshtein) distance. Any domain-specific
similarity can be plugged in; everything downstream only requires a
callable mapping two values into ``[0, 1]``.

Two evaluation paths are provided:

* the scalar :func:`levenshtein` / :func:`similarity` pair — the
  reference arithmetic, pure functions with no hidden state;
* the batched :func:`levenshtein_many` kernel — candidate strings are
  padded into a uint32 codepoint matrix and the DP row advances across
  the whole batch per query character, so scoring a candidate pool is
  a handful of NumPy passes instead of one Python DP per candidate.

:class:`SimilarityCache` wraps both behind an **engine-owned** memo:
one instance per :class:`~repro.core.gdr.GDREngine`, keyed in *code
space* (the database's dictionary codes) so a similarity is computed
once per distinct ``(current value, candidate value)`` pair and reused
across every tuple sharing those values. Earlier revisions cached
through a module-global ``functools.lru_cache``, which leaked entries
across engines and datasets sharing one process; the cache is now
explicitly owned, bounded, and exposes hit/miss counters.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

__all__ = [
    "EditDistanceSimilarity",
    "SimilarityCache",
    "SimilarityFunction",
    "best_candidate",
    "levenshtein",
    "levenshtein_many",
    "similarity",
    "similarity_many",
    "token_jaccard",
]

#: Signature of a pluggable similarity function.
SimilarityFunction = Callable[[object, object], float]


def levenshtein(a: str, b: str) -> int:
    """Edit distance between two strings (insert/delete/substitute).

    Examples
    --------
    >>> levenshtein("kitten", "sitting")
    3
    >>> levenshtein("", "abc")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def _codepoints(s: str) -> np.ndarray:
    """Unicode codepoints of *s* as a uint32 array."""
    try:
        return np.frombuffer(s.encode("utf-32-le"), dtype=np.uint32)
    except UnicodeEncodeError:  # lone surrogates: encode char by char
        return np.fromiter(map(ord, s), dtype=np.uint32, count=len(s))


def levenshtein_many(query: str, candidates: Sequence[str]) -> np.ndarray:
    """Edit distances from *query* to every candidate, batched.

    The candidates are padded into one ``(batch, width)`` uint32
    codepoint matrix and the standard DP advances one *query* character
    at a time across the whole batch: the substitution/deletion step is
    two elementwise minima, and the insertion closure
    ``D[j] = min_k<=j (E[k] + j - k)`` is one ``np.minimum.accumulate``
    over ``E[j] - j``. Padding cells can never influence a candidate's
    result because column ``j`` only depends on columns ``<= j`` and
    each distance is read at the candidate's own length.

    Agrees exactly with :func:`levenshtein` (both compute the same DP
    over the same codepoints); the scalar function remains the parity
    reference.
    """
    n = len(candidates)
    lens = np.fromiter((len(c) for c in candidates), dtype=np.int64, count=n)
    if n == 0:
        return lens
    if not query:
        return lens
    width = int(lens.max())
    if width == 0:
        return np.full(n, len(query), dtype=np.int64)
    chars = np.zeros((n, width), dtype=np.uint32)
    for i, cand in enumerate(candidates):
        if cand:
            chars[i, : len(cand)] = _codepoints(cand)
    offsets = np.arange(width + 1, dtype=np.int64)
    prev = np.broadcast_to(offsets, (n, width + 1)).copy()
    cur = np.empty((n, width + 1), dtype=np.int64)
    for i, qc in enumerate(_codepoints(query), start=1):
        cur[:, 0] = i
        np.minimum(prev[:, 1:] + 1, prev[:, :-1] + (chars != qc), out=cur[:, 1:])
        np.subtract(cur, offsets, out=cur)
        np.minimum.accumulate(cur, axis=1, out=cur)
        np.add(cur, offsets, out=cur)
        prev, cur = cur, prev
    return prev[np.arange(n), lens]


def _eq7(a: str, b: str, dist: int) -> float:
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - dist / longest


def similarity(original: object, suggested: object) -> float:
    """Eq. 7 similarity between the current and suggested values.

    Non-string values are compared on their string representation,
    which matches how mixed-type cells behave in the paper's datasets
    (zip codes, ages, hour counts). Pure and uncached — hot paths go
    through an engine-owned :class:`SimilarityCache` instead.

    Examples
    --------
    >>> similarity("Westville", "Westville")
    1.0
    >>> 0.0 <= similarity("FT Wayne", "Fort Wayne") < 1.0
    True
    """
    if original == suggested:
        return 1.0
    a, b = str(original), str(suggested)
    return _eq7(a, b, levenshtein(a, b))


def similarity_many(original: object, candidates: Sequence[object]) -> list[float]:
    """Eq. 7 similarity of *original* against many candidates at once.

    One :func:`levenshtein_many` kernel call; value-for-value equal to
    mapping :func:`similarity` over the candidates.
    """
    a = str(original)
    strs = [str(c) for c in candidates]
    dists = levenshtein_many(a, strs)
    # the equality shortcut must fire before stringification, exactly
    # like the scalar path (1 == True but "1" != "True")
    return [
        1.0 if original == candidate else _eq7(a, s, d)
        for candidate, s, d in zip(candidates, strs, dists.tolist())
    ]


class SimilarityCache:  # repolint: disable=cache-discipline
    # suppressed stamp finding: Eq. 7 similarity is a pure function of
    # the two values, and dictionary codes are append-only — an entry
    # can never go stale, so there is no version to stamp against
    """Engine-owned, bounded Eq. 7 cache with a code-space fast path.

    Parameters
    ----------
    columns:
        Optional :class:`~repro.db.columnar.ColumnStore`. When given,
        :meth:`scores` keys its memo on dictionary codes — one
        similarity per distinct ``(column, current code, candidate
        code)`` triple, shared by every tuple whose cells carry those
        values. Values outside the vocabulary (e.g. rule constants that
        never occur in the data) fall back to a string-keyed memo.
    capacity:
        Soft entry bound across both memos; overflowing it drops the
        whole memo (similarities are cheap to recompute and a purge
        keeps the bookkeeping trivially correct — no partially evicted
        code buckets). One miss batch is always admitted after the
        purge, so occupancy can transiently exceed the bound by up to
        one candidate-pool size until the next overflowing call.

    The instance is itself a :data:`SimilarityFunction` — calling it
    evaluates (and memoises) one scalar pair — so it plugs directly
    into :class:`~repro.repair.generator.UpdateGenerator` and
    :class:`~repro.core.learner.FeedbackLearner`.
    """

    def __init__(self, columns=None, capacity: int = 1 << 20) -> None:
        self._columns = columns
        self._capacity = max(1, int(capacity))
        # (column position, current code) -> {candidate code -> sim}
        self._pairs: dict[tuple[int, int], dict[int, float]] = {}
        self._pair_entries = 0
        # (str(current), str(candidate)) -> sim, for out-of-vocabulary values
        self._strs: dict[tuple[str, str], float] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def stats(self) -> dict[str, int]:
        """Cache-health counters (surfaced in the benchmark reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "pair_entries": self._pair_entries,
            "str_entries": len(self._strs),
        }

    def __len__(self) -> int:
        return self._pair_entries + len(self._strs)

    # ------------------------------------------------------------------
    def __call__(self, original: object, suggested: object) -> float:
        """Scalar Eq. 7, memoised by string forms."""
        if original == suggested:
            return 1.0
        key = (str(original), str(suggested))
        hit = self._strs.get(key)
        if hit is not None:
            self.hits += 1
            return hit
        self.misses += 1
        value = _eq7(key[0], key[1], levenshtein(key[0], key[1]))
        if len(self) >= self._capacity:
            self._purge()
        self._strs[key] = value
        return value

    def scores(self, pos: int, current: object, candidates: Sequence[object]) -> list[float]:
        """Eq. 7 scores of *current* against a candidate pool, batched.

        In-vocabulary candidates resolve through the code-space memo;
        all misses are evaluated in one :func:`levenshtein_many` kernel
        call. Value-for-value equal to calling the cache scalarly per
        candidate.
        """
        columns = self._columns
        if columns is None:
            return [self(current, value) for value in candidates]
        code_of = columns.vocabulary(pos).code_of
        cur_code = code_of(current)
        if cur_code < 0:
            return [self(current, value) for value in candidates]
        inner = self._pairs.get((pos, cur_code))
        if inner is None:
            inner = self._pairs[(pos, cur_code)] = {}
        out: list[float] = [0.0] * len(candidates)
        miss_slots: list[tuple[int, int]] = []
        miss_values: list[object] = []
        for i, value in enumerate(candidates):
            code = code_of(value)
            if code < 0:
                out[i] = self(current, value)
                continue
            if code == cur_code:
                self.hits += 1
                out[i] = 1.0
                continue
            hit = inner.get(code)
            if hit is not None:
                self.hits += 1
                out[i] = hit
            else:
                miss_slots.append((i, code))
                miss_values.append(value)
        if miss_values:
            self.misses += len(miss_values)
            fresh = similarity_many(current, miss_values)
            if len(self) + len(miss_values) > self._capacity:
                self._purge()
            # re-fetch: a purge (here or via a string-fallback call made
            # during the scan) may have dropped the bucket
            inner = self._pairs.get((pos, cur_code))
            if inner is None:
                inner = self._pairs[(pos, cur_code)] = {}
            before = len(inner)
            for (i, code), value in zip(miss_slots, fresh):
                inner[code] = value
                out[i] = value
            # duplicate candidates in one pool miss twice but store once
            self._pair_entries += len(inner) - before
        return out

    def _purge(self) -> None:
        """Drop the whole memo (counted as evictions)."""
        self.evictions += len(self)
        self._pairs.clear()
        self._strs.clear()
        self._pair_entries = 0

    def clear(self) -> None:
        """Drop every memoised entry (counters are kept)."""
        self._pairs.clear()
        self._strs.clear()
        self._pair_entries = 0

    def sample_entries(self, limit: int) -> list[tuple[int, int, int, float] | tuple[str, str, float]]:
        """Up to *limit* memoised entries, for auditing.

        Code-space entries come back as ``(pos, current code,
        candidate code, sim)``, string-space entries as ``(current,
        candidate, sim)``. Deterministic order (insertion order of the
        underlying dicts), so a sampling auditor with a fixed cursor
        sees a stable stream.
        """
        out: list = []
        for (pos, cur_code), inner in self._pairs.items():
            for code, value in inner.items():
                if len(out) >= limit:
                    return out
                out.append((pos, cur_code, code, value))
        for (a, b), value in self._strs.items():
            if len(out) >= limit:
                return out
            out.append((a, b, value))
        return out

    def __repr__(self) -> str:
        return (
            f"SimilarityCache({len(self)} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


def best_candidate(
    original: object,
    candidates,
    excluded=(),
    sim: SimilarityFunction = similarity,
) -> tuple[object | None, float]:
    """The admissible candidate maximising Eq. 7 similarity.

    Skips ``None``, the current value and anything in *excluded* (the
    cell's prevented list); ties break toward the lexicographically
    smaller string form, so the choice is order-independent. Returns
    ``(value, score)``, with ``(None, -1.0)`` when nothing is
    admissible. A zero-similarity value is still admissible (the
    paper's own example suggests 'Michigan City' for 'Westville'); it
    simply carries the lowest possible certainty score.
    """
    best_score = -1.0
    best_value: object | None = None
    for value in candidates:
        if value == original or value in excluded or value is None:
            continue
        score = sim(original, value)
        if (
            best_value is None
            or score > best_score
            or (score == best_score and str(value) < str(best_value))
        ):
            best_score = score
            best_value = value
    return best_value, best_score


def token_jaccard(original: object, suggested: object) -> float:
    """Alternative similarity: Jaccard overlap of whitespace tokens.

    Useful for multi-word address fields where word order matters less
    than shared words. Provided as a drop-in alternative to Eq. 7.
    """
    tokens_a = set(str(original).lower().split())
    tokens_b = set(str(suggested).lower().split())
    if not tokens_a and not tokens_b:
        return 1.0
    union = tokens_a | tokens_b
    if not union:
        return 1.0
    return len(tokens_a & tokens_b) / len(union)


class EditDistanceSimilarity:
    """The default Eq. 7 evaluation function as a reusable object.

    Parameters
    ----------
    case_sensitive:
        When False, values are lower-cased before comparison.
    """

    def __init__(self, case_sensitive: bool = True) -> None:
        self.case_sensitive = case_sensitive

    def __call__(self, original: object, suggested: object) -> float:
        if self.case_sensitive:
            return similarity(original, suggested)
        return similarity(str(original).lower(), str(suggested).lower())

    def __repr__(self) -> str:
        return f"EditDistanceSimilarity(case_sensitive={self.case_sensitive})"
