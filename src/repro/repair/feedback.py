"""Feedback vocabulary shared by the user, the learner and the manager.

For a suggested update ``r = ⟨t, A, v, s⟩`` the paper defines three
possible decisions (§4.2):

* **confirm** — ``t[A]`` should indeed become ``v``;
* **reject** — ``v`` is not a valid value for ``t[A]``; another update
  must be found;
* **retain** — the current value of ``t[A]`` is correct, stop
  suggesting updates for the cell.

A user may additionally volunteer the correct value ``v'`` when
rejecting; GDR treats that as a confirm of ``⟨t, A, v', 1⟩``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Feedback", "UserFeedback"]


class Feedback(Enum):
    """The three feedback classes of the paper."""

    CONFIRM = "confirm"
    REJECT = "reject"
    RETAIN = "retain"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class UserFeedback:
    """One feedback decision, optionally carrying a corrected value.

    Attributes
    ----------
    kind:
        The feedback class.
    correction:
        When *kind* is ``REJECT`` the user may supply the true value
        ``v'``; GDR then applies ``⟨t, A, v', 1⟩`` as if confirmed.
    """

    kind: Feedback
    correction: object | None = None

    @property
    def has_correction(self) -> bool:
        """True when the user volunteered the correct value."""
        return self.correction is not None

    @classmethod
    def confirm(cls) -> "UserFeedback":
        """Shorthand for a plain confirm decision."""
        return cls(Feedback.CONFIRM)

    @classmethod
    def reject(cls, correction: object | None = None) -> "UserFeedback":
        """Shorthand for a reject, optionally with the true value."""
        return cls(Feedback.REJECT, correction)

    @classmethod
    def retain(cls) -> "UserFeedback":
        """Shorthand for a retain decision."""
        return cls(Feedback.RETAIN)
