"""End-to-end interactive-loop benchmark (the PR 2 acceptance bench).

Times one full ``GDREngine.run()`` — generation, grouping, VOI ranking,
labelling sessions, learner drain — on a generated hospital-style
instance, for both pipelines:

* ``test_loop_delta`` — the delta pipeline (incremental refresh, event
  maintained group index, stamped benefit cache, heap selection);
* ``test_loop_rebuild`` — the retained rebuild-per-iteration reference.

Both runs must produce identical results (cross-checked inline); the
recorded medians make the delta/rebuild ratio visible across PRs in
``BENCH_loop.json``. Scale knobs::

    REPRO_LOOP_N       table size          (default 1000)
    REPRO_LOOP_BUDGET  user label budget   (default 200)

e.g. ``REPRO_LOOP_N=200 REPRO_LOOP_BUDGET=40`` for a CI smoke run.
"""

from __future__ import annotations

import os

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.datasets import load_dataset

LOOP_N = int(os.environ.get("REPRO_LOOP_N", "1000"))
LOOP_BUDGET = int(os.environ.get("REPRO_LOOP_BUDGET", "200"))
LOOP_SEED = int(os.environ.get("REPRO_LOOP_SEED", "0"))

#: Filled per pipeline; the parity test compares the two entries.
_RESULTS: dict[str, tuple] = {}


def _run_loop(pipeline: str):
    dataset = load_dataset("hospital", n=LOOP_N, seed=LOOP_SEED)
    db = dataset.fresh_dirty()
    engine = GDREngine(
        db,
        dataset.rules,
        GroundTruthOracle(dataset.clean),
        GDRConfig.gdr(seed=LOOP_SEED, pipeline=pipeline),
        clean_db=dataset.clean,
    )
    result = engine.run(feedback_limit=LOOP_BUDGET)
    return db, result, engine


def _signature(db, result):
    return (
        result.feedback_used,
        result.learner_decisions,
        result.iterations,
        result.final_loss,
        tuple((p.feedback, p.learner_decisions, p.loss) for p in result.trajectory),
        tuple(tuple(row.values) for row in db.rows()),
    )


def _bench_pipeline(benchmark, pipeline: str, rounds: int):
    db, result, engine = benchmark.pedantic(
        lambda: _run_loop(pipeline), rounds=rounds, iterations=1, warmup_rounds=0
    )
    assert 0 < result.feedback_used <= LOOP_BUDGET
    assert result.improvement > 0
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["final_loss"] = result.final_loss
    if engine.benefit_cache is not None:
        for key, value in engine.benefit_cache.stats.items():
            benchmark.extra_info[f"cache.{key}"] = value
    for key, value in engine.sim_cache.stats.items():
        benchmark.extra_info[f"sim.{key}"] = value
    _RESULTS[pipeline] = _signature(db, result)
    return result


def test_loop_delta(benchmark):
    """Full interactive loop on the delta pipeline."""
    _bench_pipeline(benchmark, "delta", rounds=3)


def test_loop_rebuild(benchmark):
    """Full interactive loop on the rebuild-per-iteration reference."""
    _bench_pipeline(benchmark, "rebuild", rounds=1)


def test_loop_trajectories_identical():
    """Byte-identical ``GDRResult`` trajectories across the pipelines.

    Relies on the two benchmarks above having populated ``_RESULTS``;
    falls back to running both once when executed standalone.
    """
    for pipeline in ("delta", "rebuild"):
        if pipeline not in _RESULTS:
            db, result, __ = _run_loop(pipeline)
            _RESULTS[pipeline] = _signature(db, result)
    assert _RESULTS["delta"] == _RESULTS["rebuild"]


if __name__ == "__main__":  # pragma: no cover - manual convenience
    raise SystemExit(pytest.main([__file__, "--benchmark-only", "-q"]))
