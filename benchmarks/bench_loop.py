"""End-to-end interactive-loop benchmark (the PR 2 acceptance bench).

Times one full ``GDREngine.run()`` — generation, grouping, VOI ranking,
labelling sessions, learner drain — on a generated hospital-style
instance, for both pipelines:

* ``test_loop_delta`` — the delta pipeline (incremental refresh, event
  maintained group index, stamped benefit cache, heap selection);
* ``test_loop_rebuild`` — the retained rebuild-per-iteration reference;
* ``test_loop_journal`` — the delta pipeline with the write-ahead
  feedback journal armed, recording ``journal.overhead_vs_delta``
  (the acceptance bound is <= 10% on the tracked full-size run).

Both pipelines must produce identical results (cross-checked inline);
the recorded medians make the delta/rebuild ratio visible across PRs
in ``BENCH_loop.json``. Scale knobs::

    REPRO_LOOP_N       table size          (default 1000)
    REPRO_LOOP_BUDGET  user label budget   (default 200)

e.g. ``REPRO_LOOP_N=200 REPRO_LOOP_BUDGET=40`` for a CI smoke run.
"""

from __future__ import annotations

import os
import shutil
import statistics
import tempfile
import time

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.datasets import load_dataset

LOOP_N = int(os.environ.get("REPRO_LOOP_N", "1000"))
LOOP_BUDGET = int(os.environ.get("REPRO_LOOP_BUDGET", "200"))
LOOP_SEED = int(os.environ.get("REPRO_LOOP_SEED", "0"))

#: Filled per pipeline; the parity test compares the two entries.
_RESULTS: dict[str, tuple] = {}


def _make_engine(pipeline: str, journal_path: str | None = None):
    dataset = load_dataset("hospital", n=LOOP_N, seed=LOOP_SEED)
    db = dataset.fresh_dirty()
    engine = GDREngine(
        db,
        dataset.rules,
        GroundTruthOracle(dataset.clean),
        GDRConfig.gdr(seed=LOOP_SEED, pipeline=pipeline, journal_path=journal_path),
        clean_db=dataset.clean,
    )
    return db, engine


def _run_loop(pipeline: str):
    db, engine = _make_engine(pipeline)
    result = engine.run(feedback_limit=LOOP_BUDGET)
    return db, result, engine


def _signature(db, result):
    return (
        result.feedback_used,
        result.learner_decisions,
        result.iterations,
        result.final_loss,
        tuple((p.feedback, p.learner_decisions, p.loss) for p in result.trajectory),
        tuple(tuple(row.values) for row in db.rows()),
    )


def _bench_pipeline(benchmark, pipeline: str, rounds: int):
    db, result, engine = benchmark.pedantic(
        lambda: _run_loop(pipeline), rounds=rounds, iterations=1, warmup_rounds=0
    )
    assert 0 < result.feedback_used <= LOOP_BUDGET
    assert result.improvement > 0
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["final_loss"] = result.final_loss
    health = engine.health()
    for key, value in health["cache"].items():
        benchmark.extra_info[f"cache.{key}"] = value
    for key, value in health["sim"].items():
        benchmark.extra_info[f"sim.{key}"] = value
    _RESULTS[pipeline] = _signature(db, result)
    return result


def test_loop_delta(benchmark):
    """Full interactive loop on the delta pipeline."""
    _bench_pipeline(benchmark, "delta", rounds=3)


def test_loop_rebuild(benchmark):
    """Full interactive loop on the rebuild-per-iteration reference."""
    _bench_pipeline(benchmark, "rebuild", rounds=1)


def test_loop_journal(benchmark):
    """Delta pipeline with the write-ahead journal armed.

    Times ``engine.run()`` alone (engine construction and dataset
    generation happen in the untimed setup) against an identically
    timed journal-off baseline, recording the relative journal cost as
    ``journal.overhead_vs_delta`` — the durability tax of flushing
    every feedback decision and cell write before applying it.
    """
    rounds = 3
    tmpdirs: list[str] = []
    engines: list[GDREngine] = []
    durations: list[float] = []
    outcomes: list[tuple] = []

    def setup():
        tmp = tempfile.mkdtemp(prefix="repro-bench-journal-")
        tmpdirs.append(tmp)
        db, engine = _make_engine("delta", os.path.join(tmp, "journal.jsonl"))
        engines.append(engine)
        return (db, engine), {}

    def target(db, engine):
        start = time.perf_counter()
        result = engine.run(feedback_limit=LOOP_BUDGET)
        durations.append(time.perf_counter() - start)
        outcomes.append((db, result, engine))
        return result

    try:
        benchmark.pedantic(target, setup=setup, rounds=rounds, iterations=1, warmup_rounds=0)
        db, result, engine = outcomes[-1]

        baseline: list[float] = []
        for _ in range(rounds):
            db0, engine0 = _make_engine("delta")
            start = time.perf_counter()
            result0 = engine0.run(feedback_limit=LOOP_BUDGET)
            baseline.append(time.perf_counter() - start)
            engine0.detach()
        # durability must not change a single decision or write
        assert _signature(db, result) == _signature(db0, result0)

        overhead = statistics.median(durations) / statistics.median(baseline) - 1.0
        benchmark.extra_info["journal.overhead_vs_delta"] = round(overhead, 4)
        benchmark.extra_info["journal.records"] = engine.journal.seq
        health = engine.health()
        for key, value in health["cache"].items():
            benchmark.extra_info[f"cache.{key}"] = value
        for key, value in health["sim"].items():
            benchmark.extra_info[f"sim.{key}"] = value
    finally:
        for engine in engines:
            engine.detach()
        for tmp in tmpdirs:
            shutil.rmtree(tmp, ignore_errors=True)


def test_loop_trajectories_identical():
    """Byte-identical ``GDRResult`` trajectories across the pipelines.

    Relies on the two benchmarks above having populated ``_RESULTS``;
    falls back to running both once when executed standalone.
    """
    for pipeline in ("delta", "rebuild"):
        if pipeline not in _RESULTS:
            db, result, __ = _run_loop(pipeline)
            _RESULTS[pipeline] = _signature(db, result)
    assert _RESULTS["delta"] == _RESULTS["rebuild"]


if __name__ == "__main__":  # pragma: no cover - manual convenience
    raise SystemExit(pytest.main([__file__, "--benchmark-only", "-q"]))
