"""ML substrate benchmark: histogram forest vs exact-sort reference.

Times the committee operations the interactive loop actually pays for,
on learner-shaped data (``len(schema) + 2`` feature columns holding
small dictionary codes plus one continuous similarity column, three
feedback classes — the exact workload :class:`repro.core.FeedbackLearner`
produces):

* ``test_fit_hist`` / ``test_fit_exact`` — cold committee fit
  (``GDRConfig(learner="hist")`` vs the retained exact-sort reference;
  the hist timing includes binning, so the ratio is end-to-end);
* ``test_predict_hist`` / ``test_predict_exact`` — batched committee
  inference over a drain-sized probe matrix (packed node arenas vs the
  per-tree reference walk);
* ``test_refit_warm_hist`` / ``test_refit_cold_exact`` — refit after a
  feedback batch lands: the warm path appends into the learner's
  growable pre-binned store, the cold path re-stacks and re-sorts
  everything from scratch (the pre-PR behaviour).

Every ``test_fit_hist`` entry carries a ``parity`` extra_info flag
(1 = the hist committee is bit-identical to the exact one on the same
data) so ``BENCH_ml.json`` records correctness next to the speedup;
``test_ml_decision_parity`` asserts the same thing as a plain test for
CI smoke runs without ``--benchmark-only``. Scale knob::

    REPRO_ML_SIZES  comma-separated example counts (default 200,1000,5000)
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.learner import _ExampleStore
from repro.ml import HistogramForestClassifier, RandomForestClassifier

SIZES = tuple(
    int(s) for s in os.environ.get("REPRO_ML_SIZES", "200,1000,5000").split(",")
)

#: Feedback classes (confirm / reject / retain).
N_CLASSES = 3
#: hospital schema width + suggested value + similarity.
N_FEATURES = 19
#: Dictionary codes per categorical column at bench scale.
VOCAB = 31
#: Rows landing between refits (one interactive batch's examples).
APPEND_ROWS = 20

FOREST_KW = dict(
    n_estimators=10, max_depth=12, min_samples_leaf=1, random_state=42
)

#: (kind, n) -> fitted model, shared with the parity checks.
_MODELS: dict[tuple[str, int], object] = {}


def make_examples(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Learner-shaped data: dictionary codes + one similarity float."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, VOCAB, size=(n, N_FEATURES)).astype(np.float64)
    X[:, -1] = rng.random(n).round(4)
    y = rng.integers(0, N_CLASSES, size=n)
    return X, y


def _fitted(kind: str, n: int):
    """The fitted committee for (kind, n), fitting once on first use."""
    key = (kind, n)
    if key not in _MODELS:
        X, y = make_examples(n)
        cls = HistogramForestClassifier if kind == "hist" else RandomForestClassifier
        model = cls(**FOREST_KW)
        model.fit(X, y, n_classes=N_CLASSES)
        _MODELS[key] = model
    return _MODELS[key]


def _committees_match(hist, exact) -> bool:
    """Bit-identical committees: same trees, votes, and importances."""
    if not np.array_equal(hist.feature_importances_, exact.feature_importances_):
        return False
    for th, te in zip(hist.trees, exact.trees):
        for name in ("_feature", "_threshold", "_left", "_right", "_proba"):
            if not np.array_equal(getattr(th, name), getattr(te, name)):
                return False
    probe, __ = make_examples(512, seed=99)
    return np.array_equal(hist.vote_fractions(probe), exact.vote_fractions(probe))


@pytest.mark.parametrize("n", SIZES)
def test_fit_exact(benchmark, n):
    """Cold fit, exact-sort CART reference (``learner="exact"``)."""
    X, y = make_examples(n)

    def fit():
        model = RandomForestClassifier(**FOREST_KW)
        model.fit(X, y, n_classes=N_CLASSES)
        return model

    _MODELS[("exact", n)] = benchmark(fit)


@pytest.mark.parametrize("n", SIZES)
def test_fit_hist(benchmark, n):
    """Cold fit, histogram path (binning included — end-to-end cost)."""
    X, y = make_examples(n)

    def fit():
        model = HistogramForestClassifier(**FOREST_KW)
        model.fit(X, y, n_classes=N_CLASSES)
        return model

    _MODELS[("hist", n)] = benchmark(fit)
    benchmark.extra_info["parity"] = int(
        _committees_match(_MODELS[("hist", n)], _fitted("exact", n))
    )


@pytest.mark.parametrize("n", SIZES)
def test_predict_exact(benchmark, n):
    """Batched inference, per-tree reference walk."""
    model = _fitted("exact", n)
    probe, __ = make_examples(2000, seed=7)
    benchmark(model.vote_fractions, probe)


@pytest.mark.parametrize("n", SIZES)
def test_predict_hist(benchmark, n):
    """Batched inference, fused packed-arena walk across all trees."""
    model = _fitted("hist", n)
    probe, __ = make_examples(2000, seed=7)
    result = benchmark(model.vote_fractions, probe)
    assert np.array_equal(result, _fitted("exact", n).vote_fractions(probe))


@pytest.mark.parametrize("n", SIZES)
def test_refit_cold_exact(benchmark, n):
    """Refit after a batch, pre-PR shape: re-stack rows, exact fit."""
    X, y = make_examples(n)
    batch_X, batch_y = make_examples(APPEND_ROWS, seed=5)
    rows = [row for row in X] + [row for row in batch_X]
    labels = list(y) + list(batch_y)

    def refit():
        model = RandomForestClassifier(**FOREST_KW)
        model.fit(np.vstack(rows), np.asarray(labels), n_classes=N_CLASSES)
        return model

    benchmark(refit)


@pytest.mark.parametrize("n", SIZES)
def test_refit_warm_hist(benchmark, n):
    """Refit after a batch, warm path: append into the pre-binned store.

    Setup (untimed) builds the store and bins the first *n* rows, as a
    live learner would have already; the timed target appends one
    batch, re-bins incrementally, and fits from the shared codes.
    """
    X, y = make_examples(n)
    batch_X, batch_y = make_examples(APPEND_ROWS, seed=5)

    def setup():
        store = _ExampleStore.from_arrays(X, y)
        store.binned()
        return (store,), {}

    def refit(store):
        for row, label in zip(batch_X, batch_y):
            store.append(row, int(label))
        model = HistogramForestClassifier(**FOREST_KW)
        model.fit(store.X, store.y, n_classes=N_CLASSES, binned=store.binned())
        return model

    benchmark.pedantic(refit, setup=setup, rounds=5, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("n", SIZES)
def test_ml_decision_parity(n):
    """Bit-identical hist/exact committees, as a plain CI-smoke test."""
    assert _committees_match(_fitted("hist", n), _fitted("exact", n))


if __name__ == "__main__":  # pragma: no cover - manual convenience
    raise SystemExit(pytest.main([__file__, "--benchmark-only", "-q"]))
