"""Drain-phase benchmark: wave-batched vs sequential learner drain.

Times **only** the Figure 5 automatic phase — "GDR decides about the
rest of the updates automatically" — by running the interactive phase
to budget exhaustion in the (untimed) setup and then benchmarking
``GDREngine.drain_remaining(restrict=False)`` alone:

* ``test_drain_batched`` — wave-partitioned ``predict_many`` batches
  against a copy-on-write snapshot view (``GDRConfig.drain="batched"``,
  the default);
* ``test_drain_sequential`` — the retained predict-one-apply-one
  reference.

Both paths must produce identical decisions and final instances
(cross-checked by ``test_drain_parity``); the recorded medians make the
batched/sequential ratio visible across PRs in ``BENCH_drain.json``,
alongside the benefit cache's hit/eviction counters. Scale knobs::

    REPRO_DRAIN_N       table size          (default 1000)
    REPRO_DRAIN_BUDGET  user label budget   (default 200)

e.g. ``REPRO_DRAIN_N=200 REPRO_DRAIN_BUDGET=40`` for a CI smoke run.
"""

from __future__ import annotations

import os

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.datasets import load_dataset

DRAIN_N = int(os.environ.get("REPRO_DRAIN_N", "1000"))
DRAIN_BUDGET = int(os.environ.get("REPRO_DRAIN_BUDGET", "200"))
DRAIN_SEED = int(os.environ.get("REPRO_DRAIN_SEED", "0"))

#: Filled per drain mode; the parity test compares the two entries.
_RESULTS: dict[str, tuple] = {}


def _prepare(drain: str) -> GDREngine:
    """Run the interactive phase to budget exhaustion; stop pre-drain."""
    dataset = load_dataset("hospital", n=DRAIN_N, seed=DRAIN_SEED)
    db = dataset.fresh_dirty()
    engine = GDREngine(
        db,
        dataset.rules,
        GroundTruthOracle(dataset.clean),
        GDRConfig.gdr(seed=DRAIN_SEED, drain=drain),
        clean_db=dataset.clean,
    )
    engine.run(feedback_limit=DRAIN_BUDGET, drain=False)
    return engine


def _drain(engine: GDREngine) -> tuple:
    # restrict=False: the literal Figure 5 protocol — after F labels,
    # the learner decides the whole remaining pool, not just the
    # group contexts the user happened to visit
    decided = engine.drain_remaining(restrict=False)
    return (
        decided,
        engine.detector.dirty_count(),
        tuple(tuple(row.values) for row in engine.db.rows()),
        engine.health()["cache"],
    )


def _bench_drain(benchmark, drain: str, rounds: int):
    outcomes: list[tuple] = []

    def setup():
        return (_prepare(drain),), {}

    def target(engine):
        outcome = _drain(engine)
        outcomes.append(outcome)
        return outcome

    benchmark.pedantic(target, setup=setup, rounds=rounds, iterations=1, warmup_rounds=0)
    decided, remaining_dirty, rows, cache_stats = outcomes[-1]
    assert decided > 0, "drain-dominated bench requires learner decisions"
    benchmark.extra_info["decisions"] = decided
    benchmark.extra_info["remaining_dirty"] = remaining_dirty
    for key, value in cache_stats.items():
        benchmark.extra_info[f"cache.{key}"] = value
    _RESULTS[drain] = (decided, rows)


def test_drain_batched(benchmark):
    """Wave-batched drain (snapshot view + predict_many per wave)."""
    _bench_drain(benchmark, "batched", rounds=3)


def test_drain_sequential(benchmark):
    """Sequential reference drain (one committee prediction per update)."""
    _bench_drain(benchmark, "sequential", rounds=1)


def test_drain_parity():
    """Identical decision counts and final instances across drain modes.

    Relies on the two benchmarks above having populated ``_RESULTS``;
    falls back to running both once when executed standalone.
    """
    for drain in ("batched", "sequential"):
        if drain not in _RESULTS:
            outcome = _drain(_prepare(drain))
            _RESULTS[drain] = (outcome[0], outcome[2])
    assert _RESULTS["batched"] == _RESULTS["sequential"]


if __name__ == "__main__":  # pragma: no cover - manual convenience
    raise SystemExit(pytest.main([__file__, "--benchmark-only", "-q"]))
