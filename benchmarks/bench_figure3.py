"""Figure 3 regeneration: VOI ranking vs Greedy vs Random (no learning).

Paper shape to reproduce (both panels): the VOI-based curve has the
steepest early slope; Random is clearly worse on the hospital dataset;
on the adult dataset all strategies are close ("any ranking strategy
for Dataset 2 will not be far from the optimal"); every strategy
reaches 100% once all feedback is given.
"""

from __future__ import annotations

from conftest import publish

from repro.experiments import figure3_series, interpolate_at, render_table

_XS = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]


def _run(dataset, benchmark, name: str) -> None:
    curves = benchmark.pedantic(
        figure3_series, args=(dataset,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    table = render_table(
        f"Figure 3 ({dataset.name}): % quality improvement vs % of own total feedback",
        "feedback %",
        curves,
        _XS,
    )
    voi, greedy, random_ = curves
    early = {c.label: interpolate_at(c, [25.0])[0] for c in curves}
    publish(benchmark, name, table, early_improvement_at_25pct=early)
    # paper shape: all strategies converge once everything is verified
    for curve in curves:
        assert curve.final() > 90.0
    # paper shape: the VOI curve dominates the early phase
    assert interpolate_at(voi, [30.0])[0] >= interpolate_at(random_, [30.0])[0]
    assert interpolate_at(voi, [30.0])[0] >= interpolate_at(greedy, [30.0])[0]


def test_figure3_dataset1(benchmark, hospital_bench_dataset):
    """Figure 3(a): hospital data, given rules."""
    _run(hospital_bench_dataset, benchmark, "figure3_dataset1")


def test_figure3_dataset2(benchmark, adult_bench_dataset):
    """Figure 3(b): adult data, discovered rules."""
    _run(adult_bench_dataset, benchmark, "figure3_dataset2")
