"""Figure 4 regeneration: overall GDR evaluation against all baselines.

Paper shape to reproduce: GDR reaches high improvement with a fraction
of the effort; it eventually exceeds the constant Automatic-Heuristic
line; the learning approaches dominate GDR-NoLearning at equal effort
early on; learning curves may plateau below 100% (learner mistakes);
Active-Learning is the weakest guided approach (no grouping, no VOI).
"""

from __future__ import annotations

from conftest import publish

from repro.experiments import figure4_series, interpolate_at, render_table

_EFFORTS = (0.1, 0.2, 0.4, 0.7, 1.0)
_XS = [0.0, 10.0, 20.0, 40.0, 70.0, 100.0]


def _run(dataset, benchmark, name: str) -> None:
    curves = benchmark.pedantic(
        figure4_series,
        args=(dataset,),
        kwargs={"seed": 0, "efforts": _EFFORTS},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        f"Figure 4 ({dataset.name}): % quality improvement vs % of initial dirty tuples",
        "feedback %",
        curves,
        _XS,
    )
    by_label = {c.label: c for c in curves}
    publish(
        benchmark,
        name,
        table,
        final={c.label: round(c.final(), 1) for c in curves},
    )
    # paper shape: with full effort, GDR beats the automatic heuristic
    assert by_label["GDR"].final() > by_label["Heuristic"].final()
    # paper shape: guided learning beats no learning at full effort is
    # not guaranteed (NoLearning converges to 100%), but GDR must beat
    # Active-Learning (grouping + VOI matter)
    assert by_label["GDR"].final() >= by_label["Active-Learning"].final()


def test_figure4_dataset1(benchmark, hospital_bench_dataset):
    """Figure 4(a): hospital data."""
    _run(hospital_bench_dataset, benchmark, "figure4_dataset1")


def test_figure4_dataset2(benchmark, adult_bench_dataset):
    """Figure 4(b): adult data."""
    _run(adult_bench_dataset, benchmark, "figure4_dataset2")
