"""Sharded violation engine benchmark: serial vs partition-parallel.

Times the operations the shard layer accelerates, on the deterministic
scale-up instances from :mod:`repro.datasets.synth`:

* ``test_detect_serial`` / ``test_detect_sharded`` — a full violation
  detection pass (canonical columnar rebuild vs partition-local worker
  detect + coordinator merge over the shared-memory code matrices);
* ``test_what_if_serial`` / ``test_what_if_sharded`` — a drain-sized
  batch of what-if probes (the VOI ranking hot path);
* ``test_pipeline_first_group_sharded`` — cold start to first ranked
  group: detector build, suggestion generation, one Eq. 6 ranking pass
  (the acceptance metric: < 30 s at 10^6 rows, recorded locally).
  Ingest (row materialisation + dictionary encoding of the code
  matrices) happens in untimed setup — the timed region starts from an
  encoded database, matching how a long-lived session sees a cold
  detect.

Every sharded entry carries a ``parity`` extra_info flag (1 = the
sharded detect report merged byte-identical to the canonical
detector's statistics on the same instance) so ``BENCH_shard.json``
records correctness next to the speedup. Scale knobs::

    REPRO_SHARD_SIZES   comma-separated row counts   (default 10000)
    REPRO_SHARD_COUNTS  comma-separated shard counts (default 4)
    REPRO_SHARD_DIRTY   base-block dirty rate        (default 0.3;
                        use ~0.0005 for 10^5-10^6-row pipeline runs)

CI smoke runs the default 10^4 instance and asserts the recorded
parity flags (plus the 4-shard detect speedup when the runner has the
cores for it); the 10^5/10^6 points are recorded locally, e.g.::

    REPRO_SHARD_SIZES=10000,100000,1000000 REPRO_SHARD_DIRTY=0.0005 \\
        python benchmarks/run_bench.py --suite shard
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.constraints.violations import ViolationDetector
from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.core.parallel import ShardedViolationEngine
from repro.datasets import load_synth_dataset

SIZES = tuple(
    int(s) for s in os.environ.get("REPRO_SHARD_SIZES", "10000").split(",")
)
SHARD_COUNTS = tuple(
    int(s) for s in os.environ.get("REPRO_SHARD_COUNTS", "4").split(",")
)
DIRTY_RATE = float(os.environ.get("REPRO_SHARD_DIRTY", "0.3"))

#: Probe cells per what-if batch (one VOI ranking pass worth).
PROBE_CELLS = 256
#: Candidate values per probed cell.
PROBE_CANDIDATES = 4

_DATASETS: dict[int, object] = {}
_SERIAL: dict[int, tuple[object, ViolationDetector]] = {}
_SHARDED: dict[tuple[int, int], ShardedViolationEngine] = {}


def _dataset(n: int):
    ds = _DATASETS.get(n)
    if ds is None:
        ds = _DATASETS[n] = load_synth_dataset(
            "hospital", n=n, base_n=min(2000, n), seed=11, dirty_rate=DIRTY_RATE
        )
    return ds


def _serial(n: int):
    entry = _SERIAL.get(n)
    if entry is None:
        ds = _dataset(n)
        db = ds.fresh_dirty()
        entry = _SERIAL[n] = (db, ViolationDetector(db, ds.rules))
    return entry


def _sharded(n: int, nshards: int) -> ShardedViolationEngine:
    engine = _SHARDED.get((n, nshards))
    if engine is None:
        __, detector = _serial(n)
        engine = _SHARDED[(n, nshards)] = ShardedViolationEngine(detector, nshards)
    return engine


def _probe_batch(db, seed: int = 17):
    rng = np.random.default_rng(seed)
    tids = sorted(db.tids())
    attrs = list(db.schema.attributes)
    cells = []
    for _ in range(PROBE_CELLS):
        tid = tids[int(rng.integers(0, len(tids)))]
        attr = attrs[int(rng.integers(0, len(attrs)))]
        pos = db.schema.position(attr)
        dom = db.columns.values_at(pos, np.ones(len(db.columns), dtype=bool))
        step = max(1, len(dom) // PROBE_CANDIDATES)
        cells.append((tid, attr, [dom[i * step % len(dom)] for i in range(PROBE_CANDIDATES)]))
    return cells


@pytest.mark.parametrize("n", SIZES)
def test_detect_serial(benchmark, n):
    __, detector = _serial(n)
    benchmark(detector.recompute)
    benchmark.extra_info["rows"] = n


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
@pytest.mark.parametrize("n", SIZES)
def test_detect_sharded(benchmark, n, nshards):
    engine = _sharded(n, nshards)
    benchmark(lambda: engine.detect(parity=False))
    report = engine.detect(parity=True)
    benchmark.extra_info["rows"] = n
    benchmark.extra_info["nshards"] = nshards
    benchmark.extra_info["parity"] = int(report["parity"])
    benchmark.extra_info["vio_total"] = report["vio_total"]


@pytest.mark.parametrize("n", SIZES)
def test_what_if_serial(benchmark, n):
    db, detector = _serial(n)
    cells = _probe_batch(db)
    benchmark(detector.what_if_moved_many_cells, cells)
    benchmark.extra_info["cells"] = len(cells)


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
@pytest.mark.parametrize("n", SIZES)
def test_what_if_sharded(benchmark, n, nshards):
    db, detector = _serial(n)
    engine = _sharded(n, nshards)
    cells = _probe_batch(db)
    benchmark(engine.what_if_moved_many_cells, cells)
    benchmark.extra_info["cells"] = len(cells)
    benchmark.extra_info["nshards"] = nshards
    benchmark.extra_info["parity"] = int(
        engine.what_if_moved_many_cells(cells)
        == detector.what_if_moved_many_cells(cells)
    )


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
@pytest.mark.parametrize("n", SIZES)
def test_pipeline_first_group_sharded(benchmark, n, nshards):
    """Cold start to first ranked group — the < 30 s acceptance path."""
    ds = _dataset(n)
    # Untimed setup: materialise the dirty rows and dictionary-encode
    # the code matrices (ingest, not detect). The timed region covers
    # detector build, shard fan-out, suggestion generation, and the
    # first Eq. 6 ranking pass.
    db = ds.fresh_dirty()
    len(db.columns)

    def first_group():
        engine = GDREngine(
            db,
            ds.rules,
            GroundTruthOracle(ds.clean),
            GDRConfig.no_learning(seed=3, shards=nshards),
            clean_db=None,
        )
        picked = engine._pick_top_group()
        engine.detach()
        return picked

    group, benefit, __, ranked = benchmark.pedantic(first_group, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = n
    benchmark.extra_info["nshards"] = nshards
    benchmark.extra_info["ranked_groups"] = ranked
    benchmark.extra_info["dirty_rate"] = DIRTY_RATE
