"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation runs GDR end-to-end at a fixed feedback budget and
compares final quality when one ingredient is changed:

* committee size ``k`` (the paper fixes k = 10);
* grouping + VOI vs plain active learning (the §5.2 over-fitting
  argument);
* the ``d_i = E(1 − g/g_max)`` effort quota vs verifying whole groups;
* the score prior ``p̃ = s`` vs an uninformative uniform prior in Eq. 6;
* oracle noise (imperfect expert), an extension beyond the paper.
"""

from __future__ import annotations

from conftest import publish

from repro.core import GDRConfig, GDREngine, GroundTruthOracle, NoisyOracle
from repro.experiments import Series, initial_dirty_count, render_table


def _run_once(dataset, config: GDRConfig, budget: int, oracle=None) -> float:
    db = dataset.fresh_dirty()
    if oracle is None:
        oracle = GroundTruthOracle(dataset.clean)
    engine = GDREngine(db, dataset.rules, oracle, config=config, clean_db=dataset.clean)
    return engine.run(feedback_limit=budget).improvement


def test_ablation_committee_size(benchmark, hospital_bench_dataset):
    """Final improvement as the committee size k varies."""
    ds = hospital_bench_dataset
    budget = initial_dirty_count(ds) // 2

    def sweep():
        return {
            k: _run_once(ds, GDRConfig.gdr(n_estimators=k, seed=0), budget)
            for k in (1, 5, 10, 20)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = Series("improvement", [(float(k), v) for k, v in sorted(results.items())])
    table = render_table(
        f"Ablation: committee size k (budget {budget} labels, {ds.name})",
        "k",
        [series],
        [float(k) for k in sorted(results)],
    )
    publish(benchmark, "ablation_committee_size", table, results=results)
    assert all(v > 0 for v in results.values())


def test_ablation_grouping(benchmark, hospital_bench_dataset):
    """Grouping + VOI vs plain active learning at the same budget."""
    ds = hospital_bench_dataset
    budget = initial_dirty_count(ds) // 2

    def sweep():
        return {
            "GDR (grouping + VOI)": _run_once(ds, GDRConfig.gdr(seed=0), budget),
            "Active-Learning (no grouping)": _run_once(
                ds, GDRConfig.active_learning(seed=0), budget
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"Ablation: grouping (budget {budget} labels, {ds.name})"]
    lines += [f"  {k:<32} {v:6.1f}%" for k, v in results.items()]
    publish(benchmark, "ablation_grouping", "\n".join(lines), results=results)
    assert results["GDR (grouping + VOI)"] > results["Active-Learning (no grouping)"]


def test_ablation_effort_quota(benchmark, hospital_bench_dataset):
    """The paper's benefit-scaled quota vs verifying whole groups."""
    ds = hospital_bench_dataset
    budget = initial_dirty_count(ds) // 2

    def sweep():
        return {
            "benefit quota d_i": _run_once(
                ds, GDRConfig.gdr(use_benefit_quota=True, seed=0), budget
            ),
            "whole-group quota": _run_once(
                ds, GDRConfig.gdr(use_benefit_quota=False, seed=0), budget
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"Ablation: effort quota (budget {budget} labels, {ds.name})"]
    lines += [f"  {k:<22} {v:6.1f}%" for k, v in results.items()]
    publish(benchmark, "ablation_effort_quota", "\n".join(lines), results=results)
    assert all(v > 0 for v in results.values())


def test_ablation_voi_prior(benchmark, hospital_bench_dataset):
    """Eq. 6 with the repair-score prior vs a uniform prior."""
    ds = hospital_bench_dataset
    budget = initial_dirty_count(ds) // 2

    def sweep():
        return {
            "score prior (p=s)": _run_once(
                ds, GDRConfig.gdr(voi_prior="score", seed=0), budget
            ),
            "uniform prior (p=0.5)": _run_once(
                ds, GDRConfig.gdr(voi_prior="uniform", seed=0), budget
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"Ablation: VOI prior (budget {budget} labels, {ds.name})"]
    lines += [f"  {k:<24} {v:6.1f}%" for k, v in results.items()]
    publish(benchmark, "ablation_voi_prior", "\n".join(lines), results=results)


def test_ablation_oracle_noise(benchmark, hospital_bench_dataset):
    """Robustness to an imperfect expert (extension experiment)."""
    ds = hospital_bench_dataset
    budget = initial_dirty_count(ds) // 2

    def sweep():
        results = {}
        for rate in (0.0, 0.1, 0.2):
            oracle = NoisyOracle(GroundTruthOracle(ds.clean), error_rate=rate, seed=1)
            results[rate] = _run_once(ds, GDRConfig.gdr(seed=0), budget, oracle=oracle)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = Series("improvement", [(100 * r, v) for r, v in sorted(results.items())])
    table = render_table(
        f"Ablation: oracle noise (budget {budget} labels, {ds.name})",
        "noise %",
        [series],
        [0.0, 10.0, 20.0],
    )
    publish(benchmark, "ablation_oracle_noise", table, results=results)
    # a perfect oracle should not lose to a very noisy one
    assert results[0.0] >= results[0.2] - 5.0
