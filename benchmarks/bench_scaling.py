"""Scaling behaviour: end-to-end repair cost as the table grows.

The paper ran 20k-tuple tables; this bench verifies the reproduction's
cost grows near-linearly with the number of dirty tuples so larger
scales are a matter of patience, not asymptotics. Two sweeps are
tracked in ``BENCH_scaling.json`` (``run_bench.py --suite scaling``):

* ``test_scaling_no_learning`` — the historical no-learning sweep with
  a super-linear blowup guard;
* ``test_scaling_learning`` — the full GDR pipeline (active learning,
  batched suggestion engine, learner drain) at N=1000/2000/5000, the
  scale the vectorized suggestion engine is built for.

``test_scaling_suggest_parity`` cross-checks the batched suggestion
engine against the scalar reference at the smallest size and records
the similarity-cache counters. Scale knobs::

    REPRO_SCALING_SIZES   comma-separated learning-sweep sizes
                          (default "1000,2000,5000")
    REPRO_SCALING_BUDGET  labels per 1000 tuples (default 200)

e.g. ``REPRO_SCALING_SIZES=300 REPRO_SCALING_BUDGET=60`` for CI smoke.
"""

from __future__ import annotations

import os
import time

from conftest import BENCH_SEED, publish

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.datasets import load_dataset

_SIZES = (200, 400, 800)

_LEARN_SIZES = tuple(
    int(n) for n in os.environ.get("REPRO_SCALING_SIZES", "1000,2000,5000").split(",")
)
_BUDGET_PER_1000 = int(os.environ.get("REPRO_SCALING_BUDGET", "200"))


def _budget(n: int) -> int:
    return max(20, _BUDGET_PER_1000 * n // 1000)


def _run(n: int, config: GDRConfig, budget: int | None = None):
    ds = load_dataset("hospital", n=n, seed=BENCH_SEED)
    db = ds.fresh_dirty()
    engine = GDREngine(db, ds.rules, GroundTruthOracle(ds.clean), config, clean_db=ds.clean)
    start = time.perf_counter()
    result = engine.run(feedback_limit=budget)
    return time.perf_counter() - start, result, engine, db


def test_scaling_no_learning(benchmark):
    """Full no-learning repair wall-clock across table sizes."""

    def sweep():
        timings = {}
        for n in _SIZES:
            seconds, result, __, __ = _run(n, GDRConfig.no_learning())
            timings[n] = (seconds, result.feedback_used)
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Scaling: full no-learning repair (hospital)"]
    lines += [
        f"  n={n:<5} {seconds:6.2f}s  ({labels} labels)"
        for n, (seconds, labels) in timings.items()
    ]
    publish(benchmark, "scaling_no_learning", "\n".join(lines), timings={
        n: round(seconds, 2) for n, (seconds, __) in timings.items()
    })
    # super-linear blowup guard: 4x data should stay well under 16x
    # time. The vectorized suggestion engine brought the measured ratio
    # to ~6x; 12 leaves noise headroom while catching real regressions
    # (the pre-PR-5 bound was 40).
    small = max(timings[_SIZES[0]][0], 1e-3)
    assert timings[_SIZES[-1]][0] / small < 12.0


def test_scaling_learning(benchmark):
    """Full GDR (active learning + drain) at paper-adjacent scales.

    Budget scales with the table (``REPRO_SCALING_BUDGET`` labels per
    1000 tuples) so every size exercises the same label density.
    """

    def sweep():
        timings = {}
        for n in _LEARN_SIZES:
            seconds, result, engine, __ = _run(
                n, GDRConfig.gdr(seed=BENCH_SEED), budget=_budget(n)
            )
            timings[n] = (seconds, result.feedback_used, result.learner_decisions,
                          engine.health()["sim"])
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Scaling: full GDR with learning (hospital)"]
    lines += [
        f"  n={n:<5} {seconds:6.2f}s  ({labels} labels, {decided} learner decisions)"
        for n, (seconds, labels, decided, __) in timings.items()
    ]
    publish(benchmark, "scaling_learning", "\n".join(lines), timings={
        n: round(seconds, 2) for n, (seconds, *__) in timings.items()
    })
    largest = _LEARN_SIZES[-1]
    __, __, __, sim_stats = timings[largest]
    for key, value in sim_stats.items():
        benchmark.extra_info[f"sim.{key}"] = value
    # the engine-owned code-space cache must be doing its job at scale
    assert sim_stats["hits"] > sim_stats["misses"]
    if len(_LEARN_SIZES) > 1:
        small_n, large_n = _LEARN_SIZES[0], _LEARN_SIZES[-1]
        ratio_n = large_n / small_n
        ratio_t = timings[large_n][0] / max(timings[small_n][0], 1e-3)
        benchmark.extra_info["blowup"] = round(ratio_t / ratio_n, 2)
        # guard: with the label budget proportional to n, total work is
        # labels x per-iteration cost, and per-iteration cost scales
        # with the live pool (~n) — an O(n^2) envelope. Measured ~1.2
        # n^2 on this machine; 2x headroom catches real regressions.
        assert ratio_t < 2.0 * ratio_n**2


def test_scaling_suggest_parity(benchmark):
    """Batched vs scalar suggestion engine: byte-identical at scale.

    Runs both modes at the smallest learning size and asserts the
    ``GDRResult`` signatures (and final instances) agree, publishing
    the batched run's similarity-cache counters — the parity counters
    CI asserts on.
    """
    n = min(_LEARN_SIZES)
    budget = _budget(n)

    def signature(result, db):
        return (
            result.feedback_used,
            result.learner_decisions,
            result.iterations,
            result.final_loss,
            tuple((p.feedback, p.learner_decisions, p.loss) for p in result.trajectory),
            tuple(tuple(row.values) for row in db.rows()),
        )

    def both():
        __, result_b, engine_b, db_b = _run(
            n, GDRConfig.gdr(seed=BENCH_SEED, suggest="batched"), budget=budget
        )
        __, result_s, __, db_s = _run(
            n, GDRConfig.gdr(seed=BENCH_SEED, suggest="scalar"), budget=budget
        )
        return signature(result_b, db_b), signature(result_s, db_s), engine_b

    sig_b, sig_s, engine = benchmark.pedantic(both, rounds=1, iterations=1)
    assert sig_b == sig_s
    for key, value in engine.health()["sim"].items():
        benchmark.extra_info[f"sim.{key}"] = value
    benchmark.extra_info["parity"] = 1
