"""Scaling behaviour: end-to-end repair cost as the table grows.

The paper ran 20k-tuple tables; this bench verifies the reproduction's
cost grows near-linearly with the number of dirty tuples so larger
scales are a matter of patience, not asymptotics.
"""

from __future__ import annotations

import time

from conftest import BENCH_SEED, publish

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.datasets import load_dataset

_SIZES = (200, 400, 800)


def test_scaling_no_learning(benchmark):
    """Full no-learning repair wall-clock across table sizes."""

    def sweep():
        timings = {}
        for n in _SIZES:
            ds = load_dataset("hospital", n=n, seed=BENCH_SEED)
            db = ds.fresh_dirty()
            engine = GDREngine(
                db,
                ds.rules,
                GroundTruthOracle(ds.clean),
                config=GDRConfig.no_learning(),
                clean_db=ds.clean,
            )
            start = time.perf_counter()
            result = engine.run()
            timings[n] = (time.perf_counter() - start, result.feedback_used)
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Scaling: full no-learning repair (hospital)"]
    lines += [
        f"  n={n:<5} {seconds:6.2f}s  ({labels} labels)"
        for n, (seconds, labels) in timings.items()
    ]
    publish(benchmark, "scaling_no_learning", "\n".join(lines), timings={
        n: round(seconds, 2) for n, (seconds, __) in timings.items()
    })
    # super-linear blowup guard: 4x data should stay well under 16x time
    small = max(timings[_SIZES[0]][0], 1e-3)
    assert timings[_SIZES[-1]][0] / small < 40.0
