"""Run the tracked benchmark suites and record medians for cross-PR diffs.

Entry point::

    python benchmarks/run_bench.py [--suite micro|loop|drain|scaling|all] [-o PATH] [-k EXPR]

Each suite runs under ``pytest-benchmark`` and writes a flat
``benchmark name -> median seconds`` JSON next to this file — by
default ``benchmarks/BENCH_micro.json`` for the micro suite (hot-path
substrates), ``benchmarks/BENCH_loop.json`` for the end-to-end
interactive loop (``bench_loop.py``, delta vs rebuild pipeline),
``benchmarks/BENCH_drain.json`` for the learner drain,
``benchmarks/BENCH_ml.json`` for the committee substrate
(``bench_ml.py``, histogram forest vs exact-sort reference with a
recorded parity flag), and
``benchmarks/BENCH_scaling.json`` for the table-size sweeps
(``bench_scaling.py``, no-learning + full-pipeline + suggest parity),
and ``benchmarks/BENCH_shard.json`` for the sharded violation engine
(``bench_shard.py``, serial vs partition-parallel detect/what-if over
the synthetic scale-up instances, parity flags recorded) — so the
performance trajectory is visible across PRs with a one-line diff.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

SUITES = {
    "micro": (BENCH_DIR / "bench_micro.py", BENCH_DIR / "BENCH_micro.json"),
    "loop": (BENCH_DIR / "bench_loop.py", BENCH_DIR / "BENCH_loop.json"),
    "drain": (BENCH_DIR / "bench_drain.py", BENCH_DIR / "BENCH_drain.json"),
    "ml": (BENCH_DIR / "bench_ml.py", BENCH_DIR / "BENCH_ml.json"),
    "scaling": (BENCH_DIR / "bench_scaling.py", BENCH_DIR / "BENCH_scaling.json"),
    "shard": (BENCH_DIR / "bench_shard.py", BENCH_DIR / "BENCH_shard.json"),
}

# backward-compatible alias: older callers import DEFAULT_OUTPUT
DEFAULT_OUTPUT = SUITES["micro"][1]


def run_suite(suite: str, selector: str | None = None) -> tuple[dict[str, float], int]:
    """Run one suite; return ``({benchmark name: median seconds}, exit code)``.

    A failing suite still returns whatever benchmarks completed
    (pytest-benchmark writes its JSON at session end even when some
    tests fail), so callers can record partial medians alongside the
    failure instead of losing the run.
    """
    bench_file, __ = SUITES[suite]
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(bench_file),
            "--benchmark-only",
            "-q",
            f"--benchmark-json={raw_path}",
        ]
        if selector:
            command += ["-k", selector]
        result = subprocess.run(command, cwd=REPO_ROOT, env=env)
        try:
            data = json.loads(raw_path.read_text())
        except (OSError, json.JSONDecodeError):
            data = {"benchmarks": []}
    medians: dict[str, float] = {}
    for bench in sorted(data["benchmarks"], key=lambda b: b["name"]):
        medians[bench["name"]] = bench["stats"]["median"]
        # surface numeric extra_info (decision counts, cache hit and
        # eviction counters) flatly next to the medians so cache health
        # is diffable across PRs like the timings are
        for key, value in sorted(bench.get("extra_info", {}).items()):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                medians[f"{bench['name']}.{key}"] = value
    return medians, result.returncode


def run_micro_benchmarks(selector: str | None = None) -> dict[str, float]:
    """Back-compat wrapper: the micro suite; raises on failure."""
    medians, returncode = run_suite("micro", selector)
    if returncode != 0:
        raise SystemExit(returncode)
    return medians


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        choices=[*SUITES, "all"],
        default="micro",
        help="which benchmark suite to run (default: micro)",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="output JSON path (default: the suite's tracked BENCH file)",
    )
    parser.add_argument(
        "-k",
        dest="selector",
        default=None,
        help="pytest -k expression to run a benchmark subset",
    )
    args = parser.parse_args(argv)
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    if args.output is not None and len(suites) > 1:
        parser.error("--output cannot be combined with --suite all")
    failed: list[str] = []
    for suite in suites:
        default_output = SUITES[suite][1]
        output = args.output if args.output is not None else default_output
        medians, returncode = run_suite(suite, args.selector)
        if returncode != 0:
            # record the failure in the output (partial medians kept) and
            # keep going: one broken suite must not hide the others' data
            failed.append(suite)
            medians["suite.error"] = returncode
            print(f"suite {suite!r} FAILED (pytest exit {returncode}); "
                  f"recording partial medians", file=sys.stderr)
        if medians:
            width = max(len(name) for name in medians)
            for name, value in medians.items():
                if "." in name:  # extra_info counter, not a timing
                    print(f"{name:<{width}}  {value}")
                else:
                    print(f"{name:<{width}}  {value * 1e3:9.3f} ms")
        if args.selector and output == default_output:
            # a subset must not clobber the tracked full-run medians
            print(f"\nsubset run (-k): not overwriting {output}; pass -o to write")
            continue
        output.write_text(json.dumps(medians, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
