"""Run the micro-benchmarks and record medians for cross-PR tracking.

Entry point::

    python benchmarks/run_bench.py [-o BENCH_micro.json] [-k EXPR]

Runs ``bench_micro.py`` under ``pytest-benchmark`` and writes a flat
``benchmark name -> median seconds`` JSON next to this file (by
default ``benchmarks/BENCH_micro.json``), so the performance trajectory
of the hot paths is visible across PRs with a one-line diff.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
DEFAULT_OUTPUT = BENCH_DIR / "BENCH_micro.json"


def run_micro_benchmarks(selector: str | None = None) -> dict[str, float]:
    """Run ``bench_micro.py`` and return ``{benchmark name: median seconds}``."""
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(BENCH_DIR / "bench_micro.py"),
            "--benchmark-only",
            "-q",
            f"--benchmark-json={raw_path}",
        ]
        if selector:
            command += ["-k", selector]
        result = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if result.returncode != 0:
            raise SystemExit(result.returncode)
        data = json.loads(raw_path.read_text())
    return {
        bench["name"]: bench["stats"]["median"]
        for bench in sorted(data["benchmarks"], key=lambda b: b["name"])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "-k",
        dest="selector",
        default=None,
        help="pytest -k expression to run a benchmark subset",
    )
    args = parser.parse_args(argv)
    medians = run_micro_benchmarks(args.selector)
    width = max(len(name) for name in medians)
    for name, median in medians.items():
        print(f"{name:<{width}}  {median * 1e3:9.3f} ms")
    if args.selector and args.output == DEFAULT_OUTPUT:
        # a subset must not clobber the tracked full-run medians
        print(f"\nsubset run (-k): not overwriting {DEFAULT_OUTPUT}; pass -o to write")
        return 0
    args.output.write_text(json.dumps(medians, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
