"""Micro-benchmarks of the substrates backing every experiment.

These time the hot paths: violation detection (columnar full build,
incremental maintenance, scalar and batched what-if queries), candidate
generation, Eq. 7 similarity, forest training/prediction and CFD
mining. The ``*_reference`` variants time the pre-columnar per-tuple
paths kept for parity testing, so the columnar speedup stays visible in
the recorded numbers.
"""

from __future__ import annotations

import numpy as np

from repro.constraints import ViolationDetector, mine_constant_cfds
from repro.ml import RandomForestClassifier
from repro.repair import RepairState, UpdateGenerator, levenshtein
from repro.repair.similarity import SimilarityCache, levenshtein_many


def test_detector_build(benchmark, hospital_bench_dataset):
    """Full violation-statistics build over the dirty instance."""
    ds = hospital_bench_dataset

    def build():
        detector = ViolationDetector(ds.dirty, ds.rules)
        detector.detach()
        return detector.vio_total()

    total = benchmark(build)
    assert total > 0


def test_detector_build_reference(benchmark, hospital_bench_dataset):
    """Pre-columnar per-tuple build (the parity baseline)."""
    ds = hospital_bench_dataset
    db = ds.fresh_dirty()
    detector = ViolationDetector(db, ds.rules)
    detector.detach()

    def build():
        detector.recompute("reference")
        return detector.vio_total()

    total = benchmark(build)
    assert total > 0
    assert detector.verify()


def test_detector_incremental_updates(benchmark, hospital_bench_dataset):
    """Incremental maintenance under a burst of cell writes."""
    ds = hospital_bench_dataset
    db = ds.fresh_dirty()
    detector = ViolationDetector(db, ds.rules)
    tids = db.tids()[:50]
    values = [db.value(t, "zip") for t in tids]

    def churn():
        for tid in tids:
            db.set_value(tid, "zip", "00000")
        for tid, old in zip(tids, values):
            db.set_value(tid, "zip", old)
        return detector.vio_total()

    benchmark(churn)
    assert detector.verify()


def test_detector_what_if(benchmark, hospital_bench_dataset):
    """Eq. 6 what-if queries (the VOI ranking hot path)."""
    ds = hospital_bench_dataset
    db = ds.fresh_dirty()
    detector = ViolationDetector(db, ds.rules)
    dirty = sorted(detector.dirty_tuples())[:100]

    def probe():
        total = 0
        for tid in dirty:
            outcomes = detector.what_if(tid, "zip", "46360")
            total += sum(o.vio_reduction for o in outcomes.values())
        return total

    benchmark(probe)
    assert detector.verify()


def test_detector_what_if_many(benchmark, hospital_bench_dataset):
    """Batched Eq. 6 probes: every zip constant for each dirty cell.

    This is the VOI ranking workload after the batching rewrite — one
    partition-statistics pass per cell answers a whole candidate list.
    """
    ds = hospital_bench_dataset
    db = ds.fresh_dirty()
    detector = ViolationDetector(db, ds.rules)
    dirty = sorted(detector.dirty_tuples())[:100]
    candidates = sorted(
        {r.lhs_constants().get("zip") for r in ds.rules if r.lhs_constants().get("zip")}
    )

    def probe():
        total = 0
        for tid in dirty:
            for outcomes in detector.what_if_many(tid, "zip", candidates):
                total += sum(o.vio_reduction for o in outcomes.values())
        return total

    benchmark(probe)
    assert len(candidates) >= 10
    assert detector.verify()


def test_generator_initial_pass(benchmark, hospital_bench_dataset):
    """Algorithm 1 over every dirty tuple."""
    ds = hospital_bench_dataset

    def generate():
        db = ds.fresh_dirty()
        detector = ViolationDetector(db, ds.rules)
        state = RepairState()
        generator = UpdateGenerator(db, ds.rules, detector, state)
        produced = generator.generate_all()
        generator.detach()
        detector.detach()
        return len(produced)

    produced = benchmark(generate)
    assert produced > 0


def test_levenshtein_speed(benchmark):
    """Raw edit-distance throughput on address-like strings."""
    pairs = [
        ("Michigan City", "Michigan Cty"),
        ("Fort Wayne", "FT Wayne"),
        ("46360", "46391"),
        ("Sherden RD", "SherdenRD"),
    ] * 25

    def run():
        return sum(levenshtein(a, b) for a, b in pairs)

    total = benchmark(run)
    assert total > 0


def test_levenshtein_many_kernel(benchmark):
    """Batched DP kernel: one query against a 100-candidate pool."""
    candidates = [f"Michigan City {i}" for i in range(50)] + [
        f"Fort Wayne {i}" for i in range(50)
    ]

    def run():
        return int(levenshtein_many("Michigan Cty", candidates).sum())

    total = benchmark(run)
    assert total > 0


def test_similarity_cache(benchmark):
    """Cached Eq. 7 lookups (the effective cost inside the loops)."""
    cache = SimilarityCache()
    pairs = [(f"value{i}", f"value{i + 1}") for i in range(64)]

    def run():
        return sum(cache(a, b) for a, b in pairs for __ in range(10))

    benchmark(run)
    assert cache.stats["hits"] > cache.stats["misses"]


def test_forest_fit(benchmark):
    """Committee training at feedback-learner scale (200 x 13)."""
    rng = np.random.default_rng(0)
    X = rng.integers(0, 20, size=(200, 13)).astype(float)
    y = (X[:, 0] + X[:, 5] > 18).astype(np.int64)

    def fit():
        forest = RandomForestClassifier(n_estimators=10, max_depth=12, random_state=0)
        forest.fit(X, y)
        return forest

    forest = benchmark(fit)
    assert float(np.mean(forest.predict(X) == y)) > 0.8


def test_forest_predict(benchmark):
    """Committee prediction throughput."""
    rng = np.random.default_rng(0)
    X = rng.integers(0, 20, size=(400, 13)).astype(float)
    y = (X[:, 0] > 10).astype(np.int64)
    forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)

    def predict():
        return forest.vote_fractions(X).sum()

    benchmark(predict)


def test_cfd_mining(benchmark, adult_bench_dataset):
    """Constant-CFD discovery at the paper's 5% support threshold."""
    ds = adult_bench_dataset

    def mine():
        return mine_constant_cfds(ds.dirty, support=0.05, confidence=0.92, max_lhs=1)

    rules = benchmark(mine)
    assert len(rules) > 0
