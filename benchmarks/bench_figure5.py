"""Figure 5 regeneration: repair precision/recall vs user effort.

Paper shape to reproduce: both precision and recall generally improve
as the user affords more verifications; the hospital dataset's
precision dominates the adult dataset's (context-correlated errors are
easier for the learner than random ones).
"""

from __future__ import annotations

from conftest import publish

from repro.experiments import figure5_series, render_table

_EFFORTS = (0.2, 0.4, 0.6, 0.8, 1.0)
_XS = [20.0, 40.0, 60.0, 80.0, 100.0]


def _run(dataset, benchmark, name: str):
    curves = benchmark.pedantic(
        figure5_series,
        args=(dataset,),
        kwargs={"seed": 0, "efforts": _EFFORTS},
        rounds=1,
        iterations=1,
    )
    table = render_table(
        f"Figure 5 ({dataset.name}): precision & recall vs % of initial dirty tuples",
        "feedback %",
        curves,
        _XS,
        y_format="{:6.3f}",
    )
    publish(benchmark, name, table, final={c.label: round(c.final(), 3) for c in curves})
    precision, recall = curves
    # paper shape: more effort helps overall (allow local non-monotonicity)
    assert recall.final() >= recall.points[0][1] - 0.05
    assert precision.final() >= 0.5
    return curves


def test_figure5_dataset1(benchmark, hospital_bench_dataset):
    """Figure 5(a): hospital data."""
    _run(hospital_bench_dataset, benchmark, "figure5_dataset1")


def test_figure5_dataset2(benchmark, adult_bench_dataset):
    """Figure 5(b): adult data."""
    _run(adult_bench_dataset, benchmark, "figure5_dataset2")
