"""Shared fixtures for the figure-regeneration benchmarks.

Benchmark scale is laptop-friendly by default (the paper ran 20k-tuple
tables on a 3 GHz server; pure Python wants smaller defaults). Override
with the ``REPRO_BENCH_N`` environment variable, e.g.::

    REPRO_BENCH_N=2000 pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets import load_dataset

#: Default table size for benchmark datasets.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "400"))

#: Seed shared by all benchmark runs (deterministic output).
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def hospital_bench_dataset():
    """Dataset 1 analogue at benchmark scale."""
    return load_dataset("hospital", n=BENCH_N, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def adult_bench_dataset():
    """Dataset 2 analogue at benchmark scale."""
    return load_dataset("adult", n=BENCH_N, seed=BENCH_SEED)


def publish(benchmark, name: str, table: str, **extra) -> None:
    """Print a result table, persist it, and attach it to the report."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    benchmark.extra_info["table"] = table
    for key, value in extra.items():
        benchmark.extra_info[key] = value
    print(f"\n{table}")
