"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Repaired instance" in result.stdout
        assert "100.0%" in result.stdout

    def test_hospital_cleaning(self):
        result = _run("hospital_cleaning.py", "--n", "200", "--seed", "1")
        assert result.returncode == 0, result.stderr
        assert "Automatic heuristic" in result.stdout
        assert "GDR with 20% effort" in result.stdout
        assert "GDR with unlimited effort" in result.stdout

    def test_census_repair(self):
        result = _run("census_repair.py", "--n", "200", "--seed", "1")
        assert result.returncode == 0, result.stderr
        assert "Rules discovered" in result.stdout
        assert "improvement" in result.stdout

    @pytest.mark.slow
    def test_noisy_expert(self):
        result = _run("noisy_expert.py", "--n", "200", "--seed", "1")
        assert result.returncode == 0, result.stderr
        assert "noise" in result.stdout
        assert "token-Jaccard" in result.stdout
