"""Tests for :mod:`repro.db.io` (CSV import/export)."""

import pytest

from repro.db import Database, Schema, load_csv, save_csv
from repro.errors import SchemaError


class TestLoadCsv:
    def test_roundtrip(self, tmp_path):
        db = Database(Schema("r", ["a", "b"]), [["x", "1"], ["y", "2"]])
        path = tmp_path / "table.csv"
        save_csv(db, path)
        loaded = load_csv(path, relation_name="r")
        assert loaded.equals_data(db)

    def test_relation_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "customers.csv"
        path.write_text("a,b\n1,2\n")
        assert load_csv(path).schema.name == "customers"

    def test_header_whitespace_stripped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(" a , b \n1,2\n")
        assert load_csv(path).schema.attributes == ("a", "b")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError) as err:
            load_csv(path)
        assert ":2" in str(err.value)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n\n3,4\n")
        assert len(load_csv(path)) == 2

    def test_quoted_values_with_commas(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text('a,b\n"x, y",2\n')
        assert load_csv(path).value(0, "a") == "x, y"

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a;b\n1;2\n")
        db = load_csv(path, delimiter=";")
        assert db.value(0, "b") == "2"

    def test_values_are_strings(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n42\n")
        assert load_csv(path).value(0, "a") == "42"


class TestSaveCsv:
    def test_creates_parent_dirs(self, tmp_path):
        db = Database(Schema("r", ["a"]), [["x"]])
        path = tmp_path / "nested" / "dir" / "out.csv"
        save_csv(db, path)
        assert path.exists()

    def test_header_first(self, tmp_path):
        db = Database(Schema("r", ["a", "b"]), [["x", "y"]])
        path = tmp_path / "out.csv"
        save_csv(db, path)
        assert path.read_text().splitlines()[0] == "a,b"

    def test_tid_order(self, tmp_path):
        db = Database(Schema("r", ["a"]), [["first"], ["second"]])
        path = tmp_path / "out.csv"
        save_csv(db, path)
        lines = path.read_text().splitlines()
        assert lines[1] == "first" and lines[2] == "second"

    def test_non_string_values_stringified(self, tmp_path):
        db = Database(Schema("r", ["a"]), [[42]])
        path = tmp_path / "out.csv"
        save_csv(db, path)
        assert path.read_text().splitlines()[1] == "42"
