"""Tests for :mod:`repro.db.schema`."""

import pytest

from repro.db import Schema
from repro.errors import SchemaError, UnknownAttributeError


class TestSchemaConstruction:
    def test_basic(self):
        schema = Schema("r", ["a", "b", "c"])
        assert schema.name == "r"
        assert schema.attributes == ("a", "b", "c")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema("", ["a"])

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(SchemaError):
            Schema("r", [])

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema("r", ["a", ""])

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema("r", ["a", "b", "a"])

    def test_attributes_are_immutable_tuple(self):
        schema = Schema("r", ["a", "b"])
        assert isinstance(schema.attributes, tuple)


class TestSchemaLookup:
    def test_position(self):
        schema = Schema("r", ["a", "b", "c"])
        assert schema.position("a") == 0
        assert schema.position("c") == 2

    def test_unknown_attribute_raises(self):
        schema = Schema("r", ["a"])
        with pytest.raises(UnknownAttributeError):
            schema.position("z")

    def test_unknown_attribute_error_is_keyerror(self):
        schema = Schema("r", ["a"])
        with pytest.raises(KeyError):
            schema.position("z")

    def test_positions_bulk(self):
        schema = Schema("r", ["a", "b", "c"])
        assert schema.positions(["c", "a"]) == (2, 0)

    def test_validate_attributes_accepts_known(self):
        schema = Schema("r", ["a", "b"])
        schema.validate_attributes(["b", "a"])  # no raise

    def test_validate_attributes_rejects_unknown(self):
        schema = Schema("r", ["a", "b"])
        with pytest.raises(UnknownAttributeError):
            schema.validate_attributes(["a", "z"])

    def test_contains(self):
        schema = Schema("r", ["a"])
        assert "a" in schema
        assert "z" not in schema

    def test_iteration_and_len(self):
        schema = Schema("r", ["a", "b"])
        assert list(schema) == ["a", "b"]
        assert len(schema) == 2


class TestSchemaEquality:
    def test_equal_schemas(self):
        assert Schema("r", ["a", "b"]) == Schema("r", ["a", "b"])

    def test_different_names(self):
        assert Schema("r", ["a"]) != Schema("s", ["a"])

    def test_different_attribute_order(self):
        assert Schema("r", ["a", "b"]) != Schema("r", ["b", "a"])

    def test_hashable(self):
        assert len({Schema("r", ["a"]), Schema("r", ["a"])}) == 1

    def test_not_equal_to_other_types(self):
        assert Schema("r", ["a"]) != "r"

    def test_repr_mentions_name(self):
        assert "r" in repr(Schema("r", ["a"]))
