"""Tests for :mod:`repro.db.changelog`."""

import pytest

from repro.db import ChangeLog, Database, Schema


@pytest.fixture()
def db():
    return Database(Schema("r", ["a", "b"]), [["x", 1], ["y", 2]])


class TestChangeLogRecording:
    def test_records_changes_in_order(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "p")
        db.set_value(1, "b", 3)
        assert [c.cell for c in log] == [(0, "a"), (1, "b")]
        assert len(log) == 2

    def test_noop_not_recorded(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "x")
        assert len(log) == 0

    def test_indexing(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "p")
        assert log[0].new == "p"

    def test_changed_cells_deduplicates(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "p")
        db.set_value(0, "a", "q")
        assert log.changed_cells() == {(0, "a")}

    def test_by_source(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "p", source="user")
        db.set_value(1, "a", "q", source="learner")
        assert [c.cell for c in log.by_source("learner")] == [(1, "a")]

    def test_clear(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "p")
        log.clear()
        assert len(log) == 0

    def test_detach(self, db):
        log = ChangeLog(db)
        log.detach()
        db.set_value(0, "a", "p")
        assert len(log) == 0


class TestNetEffect:
    def test_net_effect_reports_first_old_last_new(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "p")
        db.set_value(0, "a", "q")
        assert log.net_effect() == {(0, "a"): ("x", "q")}

    def test_reverted_cell_excluded(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "p")
        db.set_value(0, "a", "x")
        assert log.net_effect() == {}


class TestUndo:
    def test_undo_restores_value(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "p")
        undone = log.undo_last()
        assert undone == 1
        assert db.value(0, "a") == "x"
        assert len(log) == 0

    def test_undo_multiple(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "p")
        db.set_value(0, "b", 9)
        assert log.undo_last(2) == 2
        assert db.value(0, "a") == "x"
        assert db.value(0, "b") == 1

    def test_undo_more_than_recorded(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "p")
        assert log.undo_last(10) == 1

    def test_undo_does_not_rerecord(self, db):
        log = ChangeLog(db)
        db.set_value(0, "a", "p")
        log.undo_last()
        assert len(log) == 0
        # log still attached: future changes recorded
        db.set_value(0, "a", "z")
        assert len(log) == 1
