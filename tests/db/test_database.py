"""Tests for :mod:`repro.db.database`."""

import pytest

from repro.db import Database, Schema
from repro.errors import SchemaError, UnknownTupleError


@pytest.fixture()
def db():
    return Database(Schema("r", ["a", "b"]), [["x", 1], ["y", 2]])


class TestInsert:
    def test_insert_sequence_returns_sequential_tids(self, db):
        tid = db.insert(["z", 3])
        assert tid == 2
        assert db.value(tid, "a") == "z"

    def test_insert_mapping(self, db):
        tid = db.insert({"a": "m", "b": 9})
        assert db.value(tid, "b") == 9

    def test_insert_mapping_missing_attribute(self, db):
        with pytest.raises(SchemaError):
            db.insert({"a": "m"})

    def test_insert_mapping_extra_attribute(self, db):
        with pytest.raises(SchemaError):
            db.insert({"a": "m", "b": 1, "c": 2})

    def test_insert_wrong_arity(self, db):
        with pytest.raises(SchemaError):
            db.insert(["only-one"])

    def test_len_counts_rows(self, db):
        assert len(db) == 2


class TestAccess:
    def test_row_view(self, db):
        row = db.row(0)
        assert row["a"] == "x"
        assert row.tid == 0
        assert row.as_dict() == {"a": "x", "b": 1}

    def test_row_project(self, db):
        assert db.row(1).project(["b", "a"]) == (2, "y")

    def test_row_get_default(self, db):
        assert db.row(0).get("missing", "dflt") == "dflt"

    def test_unknown_tid(self, db):
        with pytest.raises(UnknownTupleError):
            db.row(99)
        with pytest.raises(UnknownTupleError):
            db.value(99, "a")

    def test_values_snapshot_is_detached(self, db):
        snap = db.values_snapshot(0)
        db.set_value(0, "a", "changed")
        assert snap == ("x", 1)

    def test_column(self, db):
        assert db.column("a") == ["x", "y"]

    def test_domain(self, db):
        db.insert(["x", 5])
        assert db.domain("a") == {"x", "y"}

    def test_tids_sorted(self, db):
        assert db.tids() == [0, 1]

    def test_contains(self, db):
        assert 0 in db and 99 not in db

    def test_iteration_yields_rows(self, db):
        assert [r.tid for r in db] == [0, 1]


class TestMutation:
    def test_set_value_changes_cell(self, db):
        assert db.set_value(0, "a", "q") is True
        assert db.value(0, "a") == "q"

    def test_set_value_noop_returns_false(self, db):
        assert db.set_value(0, "a", "x") is False

    def test_listener_fired_on_change(self, db):
        events = []
        db.add_listener(events.append)
        db.set_value(0, "b", 42, source="test")
        assert len(events) == 1
        change = events[0]
        assert (change.tid, change.attribute, change.old, change.new) == (0, "b", 1, 42)
        assert change.source == "test"
        assert change.cell == (0, "b")

    def test_listener_not_fired_on_noop(self, db):
        events = []
        db.add_listener(events.append)
        db.set_value(0, "a", "x")
        assert events == []

    def test_remove_listener(self, db):
        events = []
        db.add_listener(events.append)
        db.remove_listener(events.append)
        db.set_value(0, "a", "q")
        assert events == []

    def test_remove_listener_absent_is_noop(self, db):
        db.remove_listener(lambda c: None)

    def test_change_seq_monotone(self, db):
        events = []
        db.add_listener(events.append)
        db.set_value(0, "a", "q")
        db.set_value(1, "a", "r")
        assert events[0].seq < events[1].seq

    def test_delete(self, db):
        db.delete(0)
        assert 0 not in db
        with pytest.raises(UnknownTupleError):
            db.delete(0)


class TestSnapshotAndDiff:
    def test_snapshot_is_independent(self, db):
        snap = db.snapshot()
        db.set_value(0, "a", "q")
        assert snap.value(0, "a") == "x"

    def test_snapshot_preserves_tids(self, db):
        db.delete(0)
        snap = db.snapshot()
        assert snap.tids() == [1]
        assert snap.insert(["new", 0]) == 2  # next tid continues

    def test_snapshot_has_no_listeners(self, db):
        events = []
        db.add_listener(events.append)
        snap = db.snapshot()
        snap.set_value(0, "a", "q")
        assert events == []

    def test_diff_cells(self, db):
        other = db.snapshot()
        other.set_value(0, "a", "q")
        other.set_value(1, "b", 7)
        assert set(db.diff_cells(other)) == {(0, "a"), (1, "b")}

    def test_diff_cells_schema_mismatch(self, db):
        other = Database(Schema("s", ["a", "b"]))
        with pytest.raises(SchemaError):
            db.diff_cells(other)

    def test_diff_cells_missing_tuple_reports_full_row(self, db):
        other = db.snapshot()
        other.delete(1)
        assert set(db.diff_cells(other)) == {(1, "a"), (1, "b")}

    def test_equals_data(self, db):
        assert db.equals_data(db.snapshot())
        other = db.snapshot()
        other.set_value(0, "a", "q")
        assert not db.equals_data(other)

    def test_repr(self, db):
        assert "2 tuples" in repr(db)


class TestRow:
    def test_row_equality(self, db):
        assert db.row(0) == db.row(0)
        assert db.row(0) != db.row(1)

    def test_row_hashable(self, db):
        assert len({db.row(0), db.row(0)}) == 1

    def test_row_len_and_iter(self, db):
        row = db.row(0)
        assert len(row) == 2
        assert list(row) == ["x", 1]

    def test_row_values_tuple(self, db):
        assert db.row(1).values == ("y", 2)
