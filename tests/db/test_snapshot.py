"""Copy-on-write snapshot view: isolation semantics and lifecycle."""

import pytest

from repro.db import Database, Schema, SnapshotView
from repro.errors import UnknownTupleError


@pytest.fixture()
def db() -> Database:
    return Database(
        Schema("r", ["a", "b", "c"]),
        [["a0", "b0", "c0"], ["a1", "b1", "c1"], ["a2", "b2", "c2"]],
    )


class TestPinnedReads:
    def test_read_returns_values_at_acquisition(self, db):
        view = db.snapshot_view()
        assert view.values_snapshot(0) == ("a0", "b0", "c0")
        view.release()

    def test_write_after_acquire_is_invisible(self, db):
        view = db.snapshot_view()
        db.set_value(0, "b", "changed")
        assert view.values_snapshot(0) == ("a0", "b0", "c0")
        assert db.value(0, "b") == "changed"
        view.release()

    def test_write_before_first_read_is_invisible(self, db):
        """The view pins the pre-write image even for rows never read."""
        view = db.snapshot_view()
        db.set_value(1, "a", "x")
        db.set_value(1, "b", "y")
        assert view.values_snapshot(1) == ("a1", "b1", "c1")
        view.release()

    def test_multiple_writes_to_one_tuple(self, db):
        view = db.snapshot_view()
        db.set_value(2, "c", "v1")
        db.set_value(2, "c", "v2")
        db.set_value(2, "a", "v3")
        assert view.values_snapshot(2) == ("a2", "b2", "c2")
        view.release()

    def test_read_then_write_keeps_pinned_copy(self, db):
        view = db.snapshot_view()
        first = view.values_snapshot(0)
        db.set_value(0, "a", "post")
        assert view.values_snapshot(0) == first == ("a0", "b0", "c0")
        view.release()

    def test_untouched_rows_read_live(self, db):
        view = db.snapshot_view()
        db.set_value(0, "a", "x")
        assert view.values_snapshot(1) == ("a1", "b1", "c1")
        view.release()

    def test_value_accessor(self, db):
        view = db.snapshot_view()
        db.set_value(0, "c", "post")
        assert view.value(0, "c") == "c0"
        view.release()

    def test_version_is_acquisition_version(self, db):
        before = db.version
        view = db.snapshot_view()
        assert view.version == before
        db.set_value(0, "a", "x")
        assert view.version == before
        assert db.version == before + 1
        view.release()


class TestRowSharing:
    def test_repeated_reads_share_one_materialisation(self, db):
        """Per-tid pinning deduplicates multi-suggestion row copies."""
        view = db.snapshot_view()
        assert view.values_snapshot(0) is view.values_snapshot(0)
        assert view.pinned_count == 1
        view.release()

    def test_unknown_tuple_raises(self, db):
        with db.snapshot_view() as view:
            with pytest.raises(UnknownTupleError):
                view.values_snapshot(99)


class TestRelease:
    def test_release_detaches_listener(self, db):
        view = db.snapshot_view()
        view.release()
        # further writes must not re-pin anything into a released view
        db.set_value(0, "a", "x")
        assert view.pinned_count == 0
        assert view.released

    def test_released_view_rejects_reads(self, db):
        view = db.snapshot_view()
        view.release()
        with pytest.raises(RuntimeError):
            view.values_snapshot(0)

    def test_release_is_idempotent(self, db):
        view = db.snapshot_view()
        view.release()
        view.release()
        assert view.released

    def test_context_manager_releases(self, db):
        with db.snapshot_view() as view:
            assert isinstance(view, SnapshotView)
            assert not view.released
        assert view.released

    def test_context_manager_releases_on_error(self, db):
        with pytest.raises(ValueError):
            with db.snapshot_view() as view:
                raise ValueError("boom")
        assert view.released


class TestConcurrentViews:
    def test_two_views_pin_independent_versions(self, db):
        first = db.snapshot_view()
        db.set_value(0, "a", "mid")
        second = db.snapshot_view()
        db.set_value(0, "a", "late")
        assert first.values_snapshot(0) == ("a0", "b0", "c0")
        assert second.values_snapshot(0) == ("mid", "b0", "c0")
        assert db.value(0, "a") == "late"
        first.release()
        second.release()

    def test_view_sees_no_op_writes_as_nothing(self, db):
        with db.snapshot_view() as view:
            db.set_value(0, "a", "a0")  # no-op: listeners do not fire
            assert view.pinned_count == 0
            assert view.values_snapshot(0) == ("a0", "b0", "c0")
