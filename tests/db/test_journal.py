"""Tests for :mod:`repro.db.journal` (write-ahead feedback journal)."""

import json

import pytest

from repro.db import Database, FeedbackJournal, ReplayOracle, Schema
from repro.db.journal import _decode_value, _encode_value, db_fingerprint
from repro.errors import JournalError, JournalReplayError
from repro.repair.candidate import CandidateUpdate
from repro.repair.feedback import Feedback, UserFeedback


@pytest.fixture()
def tiny_db():
    schema = Schema("r", ["a", "b"])
    return Database(schema, [["x", "1"], ["y", "2"]])


class TestAppendRead:
    def test_seq_increments_and_records_round_trip(self, tmp_path, tiny_db):
        path = tmp_path / "journal.jsonl"
        journal = FeedbackJournal(path)
        assert journal.seq == 0
        journal.log_meta(tiny_db, {"seed": 0})
        journal.log_write(0, "a", "x", "z", source="user")
        assert journal.seq == 2
        journal.close()
        records = FeedbackJournal.read(path)
        assert [r["seq"] for r in records] == [1, 2]
        assert records[0]["kind"] == "meta"
        assert records[0]["schema"] == ["a", "b"]
        assert records[1] == {
            "seq": 2,
            "kind": "write",
            "tid": 0,
            "attribute": "a",
            "old": "x",
            "new": "z",
            "source": "user",
        }

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = FeedbackJournal(path)
        journal.append("run", feedback_limit=None, drain=True, resumed=False)
        journal.close()
        reopened = FeedbackJournal(path)
        assert reopened.seq == 1
        reopened.append("checkpoint", path="cp", phase="drain")
        reopened.close()
        assert [r["seq"] for r in FeedbackJournal.read(path)] == [1, 2]

    def test_append_after_close_raises(self, tmp_path):
        journal = FeedbackJournal(tmp_path / "j.jsonl")
        journal.close()
        assert journal.closed
        with pytest.raises(JournalError, match="closed"):
            journal.append("run")

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = FeedbackJournal(path)
        journal.append("run", drain=True)
        journal.append("write", tid=0)
        journal.close()
        # simulate a kill mid-append: final record half-written
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "kind": "wri')
        records = FeedbackJournal.read(path)
        assert [r["seq"] for r in records] == [1, 2]

    def test_reopen_truncates_torn_final_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = FeedbackJournal(path)
        journal.append("run", drain=True)
        journal.append("write", tid=0)
        journal.close()
        # simulate a kill mid-append: final record half-written
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "kind": "wri')
        reopened = FeedbackJournal(path)
        # the torn record never applied: it is truncated and its
        # sequence number is reused by the replacement record
        assert reopened.seq == 2
        reopened.append("write", tid=1)
        reopened.close()
        records = FeedbackJournal.read(path)
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert records[2]["tid"] == 1

    def test_reopen_truncates_unterminated_parseable_line(self, tmp_path):
        # killed after the payload flushed but before its newline: the
        # line parses, but appending after it would glue two records
        path = tmp_path / "j.jsonl"
        journal = FeedbackJournal(path)
        journal.append("run", drain=True)
        journal.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "kind": "write", "tid": 0}')
        reopened = FeedbackJournal(path)
        assert reopened.seq == 1
        reopened.append("checkpoint", path="cp", phase="drain")
        reopened.close()
        assert [r["seq"] for r in FeedbackJournal.read(path)] == [1, 2]

    def test_reopen_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"seq": 1, "kind": "run"}\n{"broken\n{"seq": 3, "kind": "run"}\n'
        )
        with pytest.raises(JournalError, match="corrupt record"):
            FeedbackJournal(path)

    def test_torn_middle_line_is_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"seq": 1, "kind": "run"}\n{"broken\n{"seq": 3}\n')
        with pytest.raises(JournalError, match="corrupt record"):
            FeedbackJournal.read(path)

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            FeedbackJournal.read(tmp_path / "absent.jsonl")


class TestEncoding:
    @pytest.mark.parametrize("value", ["s", 3, 2.5, True, None])
    def test_scalars_pass_through(self, value):
        assert _encode_value(value) == value
        assert _decode_value(value) == value

    def test_non_scalar_round_trips_via_pickle(self):
        value = ("tuple", frozenset({1, 2}))
        encoded = _encode_value(value)
        assert "__pickle__" in encoded
        json.dumps(encoded)  # must be JSON-serialisable
        assert _decode_value(encoded) == value

    def test_fingerprint_tracks_content(self, tiny_db):
        before = db_fingerprint(tiny_db)
        assert before == db_fingerprint(tiny_db)
        tiny_db.set_value(0, "a", "changed", source="test")
        assert db_fingerprint(tiny_db) != before


class TestReplayWrites:
    def test_replays_writes_onto_copy(self, tmp_path, tiny_db):
        path = tmp_path / "j.jsonl"
        copy = tiny_db.snapshot()
        journal = FeedbackJournal(path)
        journal.log_write(0, "a", "x", "z", source="user")
        journal.log_write(1, "b", "2", "9", source="learner")
        journal.close()
        applied = FeedbackJournal.replay_writes(path, copy)
        assert applied == 2
        assert copy.value(0, "a") == "z"
        assert copy.value(1, "b") == "9"

    def test_after_seq_skips_prefix(self, tmp_path, tiny_db):
        path = tmp_path / "j.jsonl"
        copy = tiny_db.snapshot()
        journal = FeedbackJournal(path)
        first = journal.log_write(0, "a", "x", "z", source="user")
        copy.set_value(0, "a", "z", source="test")  # first already applied
        journal.log_write(0, "a", "z", "w", source="user")
        journal.close()
        assert FeedbackJournal.replay_writes(path, copy, after_seq=first) == 1
        assert copy.value(0, "a") == "w"

    def test_preimage_mismatch_raises(self, tmp_path, tiny_db):
        path = tmp_path / "j.jsonl"
        journal = FeedbackJournal(path)
        journal.log_write(0, "a", "NOT-THE-VALUE", "z", source="user")
        journal.close()
        with pytest.raises(JournalReplayError, match="different database version"):
            FeedbackJournal.replay_writes(path, tiny_db)


class TestFeedbackTail:
    def _journal_with_feedback(self, path):
        journal = FeedbackJournal(path)
        update = CandidateUpdate(0, "a", "z", 0.9)
        journal.log_feedback(update, UserFeedback(Feedback.CONFIRM), source="user")
        journal.log_feedback(update, UserFeedback(Feedback.REJECT), source="learner")
        journal.log_feedback(
            CandidateUpdate(1, "b", "7", 0.5),
            UserFeedback(Feedback.RETAIN, correction="8"),
            source="user",
        )
        journal.close()
        return journal

    def test_tail_keeps_user_records_only(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._journal_with_feedback(path)
        tail = FeedbackJournal.feedback_tail(path)
        assert [(r["tid"], r["decision"]) for r in tail] == [
            (0, Feedback.CONFIRM.value),
            (1, Feedback.RETAIN.value),
        ]
        assert tail[1]["correction"] == "8"

    def test_tail_after_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._journal_with_feedback(path)
        assert FeedbackJournal.feedback_tail(path, after_seq=1) == [
            {
                "seq": 3,
                "tid": 1,
                "attribute": "b",
                "value": "7",
                "decision": Feedback.RETAIN.value,
                "correction": "8",
            }
        ]


class TestEffectiveRecords:
    def test_resume_marker_supersedes_post_checkpoint_records(self, tmp_path, tiny_db):
        path = tmp_path / "j.jsonl"
        journal = FeedbackJournal(path)
        journal.log_meta(tiny_db, {"seed": 0})  # seq 1
        journal.log_write(0, "a", "x", "z", source="user")  # seq 2
        base = journal.log_checkpoint("cp", phase="interactive")  # seq 3
        journal.log_write(1, "b", "2", "9", source="user")  # seq 4: lost to the kill
        journal.close()
        # the resumed run re-executes from the checkpoint, re-appending
        resumed = FeedbackJournal(path)
        resumed.log_run(None, True, resumed=True, base_seq=base)  # seq 5
        resumed.log_write(1, "b", "2", "9", source="user")  # seq 6: re-execution
        resumed.close()
        effective = FeedbackJournal.effective_records(path)
        assert [r["seq"] for r in effective] == [1, 2, 3, 5, 6]
        copy = tiny_db.snapshot()
        assert FeedbackJournal.replay_writes(path, copy) == 2
        assert copy.value(0, "a") == "z"
        assert copy.value(1, "b") == "9"

    def test_feedback_tail_drops_superseded_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = FeedbackJournal(path)
        update = CandidateUpdate(0, "a", "z", 0.9)
        base = journal.log_checkpoint("cp", phase="interactive")  # seq 1
        journal.log_feedback(update, UserFeedback(Feedback.CONFIRM), source="user")  # 2
        journal.log_run(None, True, resumed=True, base_seq=base)  # seq 3
        journal.log_feedback(update, UserFeedback(Feedback.CONFIRM), source="user")  # 4
        journal.close()
        tail = FeedbackJournal.feedback_tail(path, after_seq=base)
        assert [r["seq"] for r in tail] == [4]


class TestVerifyMeta:
    def test_matching_meta_passes(self, tmp_path, tiny_db):
        path = tmp_path / "j.jsonl"
        journal = FeedbackJournal(path)
        journal.log_meta(tiny_db, {"seed": 0})
        journal.close()
        FeedbackJournal.verify_meta(path, tiny_db, {"seed": 0})

    def test_fingerprint_mismatch_raises(self, tmp_path, tiny_db):
        path = tmp_path / "j.jsonl"
        journal = FeedbackJournal(path)
        journal.log_meta(tiny_db, {"seed": 0})
        journal.close()
        tiny_db.set_value(0, "a", "changed", source="test")
        with pytest.raises(JournalError, match="different instance"):
            FeedbackJournal.verify_meta(path, tiny_db, {"seed": 0})

    def test_config_mismatch_raises(self, tmp_path, tiny_db):
        path = tmp_path / "j.jsonl"
        journal = FeedbackJournal(path)
        journal.log_meta(tiny_db, {"seed": 0})
        journal.close()
        with pytest.raises(JournalError, match="different config"):
            FeedbackJournal.verify_meta(path, tiny_db, {"seed": 1})

    def test_journal_without_meta_passes(self, tmp_path, tiny_db):
        path = tmp_path / "j.jsonl"
        journal = FeedbackJournal(path)
        journal.append("run", drain=True)
        journal.close()
        FeedbackJournal.verify_meta(path, tiny_db, {"seed": 0})


class _RecordingOracle:
    def __init__(self, answer):
        self.answer = answer
        self.asked = []

    def review(self, update, current_value):
        self.asked.append(update)
        return self.answer


class TestReplayOracle:
    def test_serves_tail_then_falls_through(self, tmp_path):
        tail = [
            {
                "seq": 2,
                "tid": 0,
                "attribute": "a",
                "value": "z",
                "decision": Feedback.CONFIRM.value,
                "correction": None,
            }
        ]
        inner = _RecordingOracle(UserFeedback(Feedback.REJECT))
        oracle = ReplayOracle(tail, inner)
        assert not oracle.exhausted
        replayed = oracle.review(CandidateUpdate(0, "a", "z", 0.9), "x")
        assert replayed.kind is Feedback.CONFIRM
        assert oracle.exhausted and oracle.replayed == 1
        assert inner.asked == []
        live = oracle.review(CandidateUpdate(1, "b", "7", 0.5), "2")
        assert live.kind is Feedback.REJECT
        assert len(inner.asked) == 1

    def test_divergent_suggestion_raises(self):
        tail = [
            {
                "seq": 2,
                "tid": 0,
                "attribute": "a",
                "value": "z",
                "decision": Feedback.CONFIRM.value,
                "correction": None,
            }
        ]
        oracle = ReplayOracle(tail, _RecordingOracle(UserFeedback(Feedback.REJECT)))
        with pytest.raises(JournalReplayError, match="checkpoint and journal disagree"):
            oracle.review(CandidateUpdate(5, "a", "z", 0.9), "x")
