"""Shared-memory backing for ColumnStore code matrices (db/shm.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.database import Database
from repro.db.schema import Schema
from repro.db.shm import SharedMatrixArena, attach_matrix, share_column_store


@pytest.fixture
def db() -> Database:
    schema = Schema("t", ("a", "b", "c"))
    rows = [[f"a{i % 5}", f"b{i % 3}", f"c{i}"] for i in range(40)]
    return Database(schema, rows)


def _snapshot(store):
    return (
        store._matrix[:, : len(store)].copy(),
        store._tids[: len(store)].copy(),
    )


class TestShareColumnStore:
    def test_share_preserves_contents(self, db):
        store = db.columns
        matrix_before, tids_before = _snapshot(store)
        arena = share_column_store(store)
        try:
            matrix_after, tids_after = _snapshot(store)
            np.testing.assert_array_equal(matrix_before, matrix_after)
            np.testing.assert_array_equal(tids_before, tids_after)
            assert arena.generation == 0
        finally:
            arena.close()

    def test_double_share_rejected(self, db):
        arena = share_column_store(db.columns)
        try:
            with pytest.raises(RuntimeError):
                share_column_store(db.columns)
        finally:
            arena.close()

    def test_set_cell_writes_into_shared_pages(self, db):
        store = db.columns
        arena = share_column_store(store)
        try:
            shm, matrix, tids = attach_matrix(arena.descriptor())
            try:
                db.set_value(3, "b", "rewritten")
                row = store.position_of(3)
                pos = db.schema.position("b")
                # the external mapping sees the write without any resend
                assert matrix[pos, row] == store.code_at(row, pos)
                assert matrix[pos, row] == store.code_for(pos, "rewritten")
            finally:
                del matrix, tids
                shm.close()
        finally:
            arena.close()

    def test_grow_bumps_generation_and_retires_segment(self, db):
        store = db.columns
        arena = share_column_store(store)
        try:
            old_name = arena.descriptor()["name"]
            before_matrix, before_tids = _snapshot(store)
            while arena.generation == 0:
                db.insert({"a": "x", "b": "y", "c": f"z{db.version}"})
            assert arena.retired_count() == 1
            desc = arena.descriptor()
            assert desc["name"] != old_name
            assert desc["capacity"] >= len(store)
            # pre-grow rows survived the copy
            np.testing.assert_array_equal(
                store._matrix[:, : len(before_tids)], before_matrix
            )
            np.testing.assert_array_equal(store._tids[: len(before_tids)], before_tids)
            # new generation attachable; old generation still attachable
            # (not yet unlinked) until workers ack the new generation
            shm, matrix, tids = attach_matrix(desc)
            np.testing.assert_array_equal(
                matrix[:, : len(store)], store._matrix[:, : len(store)]
            )
            del matrix, tids
            shm.close()
            assert arena.release_retired(0) == 0
            assert arena.release_retired(arena.generation) == 1
            assert arena.retired_count() == 0
        finally:
            arena.close()

    def test_remove_keeps_shared_view_dense(self, db):
        store = db.columns
        arena = share_column_store(store)
        try:
            shm, matrix, tids = attach_matrix(arena.descriptor())
            try:
                db.delete(0)  # swap-with-last lands in the shared pages
                n = len(store)
                np.testing.assert_array_equal(matrix[:, :n], store._matrix[:, :n])
                np.testing.assert_array_equal(tids[:n], store._tids[:n])
            finally:
                del matrix, tids
                shm.close()
        finally:
            arena.close()

    def test_close_is_idempotent_and_detaches(self, db):
        store = db.columns
        arena = share_column_store(store)
        matrix_before, tids_before = _snapshot(store)
        arena.close()
        arena.close()
        # store keeps working on private arrays after close
        np.testing.assert_array_equal(store._matrix[:, : len(store)], matrix_before)
        db.set_value(1, "a", "post-close")
        for _ in range(100):
            db.insert({"a": "x", "b": "y", "c": f"g{db.version}"})
        assert store._reallocator is None
        # and the store can be re-shared afterwards
        arena2 = share_column_store(store)
        arena2.close()

    def test_alignment_with_odd_column_counts(self):
        # 3 columns * int32 keeps the matrix byte count off any 8-byte
        # boundary for odd capacities; the tid view must stay aligned
        schema = Schema("odd", ("a", "b", "c"))
        db = Database(schema, [[i, i, i] for i in range(17)])
        arena = share_column_store(db.columns)
        try:
            shm, matrix, tids = attach_matrix(arena.descriptor())
            try:
                assert tids.dtype == np.int64
                np.testing.assert_array_equal(tids[: len(db.columns)], db.columns.tids())
            finally:
                del matrix, tids
                shm.close()
        finally:
            arena.close()


class TestArenaLifecycle:
    def test_reallocate_after_close_falls_back_to_private(self, db):
        store = db.columns
        arena = share_column_store(store)
        arena.close()
        matrix, tids = arena._reallocate(3, 64)
        assert matrix.shape == (3, 64)
        assert tids.shape == (64,)


class TestErrorPathReleases:
    """Acquisition failure must not leak segments (repolint shm-lifecycle)."""

    def test_attach_matrix_closes_on_malformed_descriptor(self, db, monkeypatch):
        from multiprocessing import shared_memory

        arena = share_column_store(db.columns)
        try:
            closed = []
            real = shared_memory.SharedMemory

            class Recording(real):
                def close(self):
                    # the < 3.13 track-kwarg probe leaves a half-built
                    # instance behind whose __del__ still calls close()
                    if self._name is not None:
                        closed.append(self._name)
                    super().close()

            monkeypatch.setattr(shared_memory, "SharedMemory", Recording)
            desc = dict(arena.descriptor())
            desc["capacity"] = desc["capacity"] * 10_000_000
            with pytest.raises(TypeError):
                attach_matrix(desc)
            # the worker-side handle was released on the failure path
            assert closed
        finally:
            arena.close()

    def test_arena_init_failure_unlinks_generation_zero(self, db, monkeypatch):
        from multiprocessing import shared_memory

        released = {"closed": 0, "unlinked": 0}
        real = shared_memory.SharedMemory

        class Recording(real):
            def close(self):
                released["closed"] += 1
                super().close()

            def unlink(self):
                released["unlinked"] += 1
                super().unlink()

        monkeypatch.setattr(shared_memory, "SharedMemory", Recording)
        store = db.columns
        store._matrix = store._matrix[:-1]  # deliberately inconsistent shape
        with pytest.raises(ValueError):
            share_column_store(store)
        assert released["closed"] == 1
        assert released["unlinked"] == 1


class TestWorkerStateLifecycle:
    def test_worker_close_releases_the_mapping(self, db):
        from repro.core.parallel import _WorkerState

        arena = share_column_store(db.columns)
        try:
            state = _WorkerState(0)
            state._attach(arena.descriptor())
            assert state.shm is not None
            assert state.matrix is not None
            state.close()
            assert state.shm is None
            assert state.matrix is None
            assert state.tids is None
            state.close()  # idempotent
        finally:
            arena.close()
