"""Tests for :mod:`repro.db.index`."""

import pytest

from repro.db import Database, HashIndex, Schema
from repro.errors import UnknownAttributeError


@pytest.fixture()
def db():
    return Database(
        Schema("r", ["a", "b", "c"]),
        [["x", 1, "p"], ["x", 2, "q"], ["y", 1, "p"]],
    )


class TestHashIndexBasics:
    def test_single_attribute_lookup(self, db):
        idx = HashIndex(db, ["a"])
        assert idx.lookup(("x",)) == {0, 1}
        assert idx.lookup(("y",)) == {2}

    def test_multi_attribute_lookup(self, db):
        idx = HashIndex(db, ["a", "b"])
        assert idx.lookup(("x", 1)) == {0}
        assert idx.lookup(("x", 2)) == {1}

    def test_missing_key_returns_empty(self, db):
        idx = HashIndex(db, ["a"])
        assert idx.lookup(("zzz",)) == set()

    def test_lookup_returns_copy(self, db):
        idx = HashIndex(db, ["a"])
        found = idx.lookup(("x",))
        found.add(999)
        assert idx.lookup(("x",)) == {0, 1}

    def test_lookup_row(self, db):
        idx = HashIndex(db, ["b"])
        assert idx.lookup_row(0) == {0, 2}

    def test_unknown_attribute_rejected(self, db):
        with pytest.raises(UnknownAttributeError):
            HashIndex(db, ["nope"])

    def test_len_counts_distinct_keys(self, db):
        idx = HashIndex(db, ["a"])
        assert len(idx) == 2

    def test_keys_and_bucket_sizes(self, db):
        idx = HashIndex(db, ["a"])
        assert set(idx.keys()) == {("x",), ("y",)}
        assert idx.bucket_sizes() == {("x",): 2, ("y",): 1}


class TestHashIndexMaintenance:
    def test_update_moves_tuple_between_buckets(self, db):
        idx = HashIndex(db, ["a"])
        db.set_value(0, "a", "y")
        assert idx.lookup(("x",)) == {1}
        assert idx.lookup(("y",)) == {0, 2}

    def test_update_of_unindexed_attribute_ignored(self, db):
        idx = HashIndex(db, ["a"])
        db.set_value(0, "c", "zzz")
        assert idx.lookup(("x",)) == {0, 1}

    def test_empty_bucket_removed(self, db):
        idx = HashIndex(db, ["a"])
        db.set_value(2, "a", "x")
        assert idx.lookup(("y",)) == set()
        assert len(idx) == 1

    def test_new_rows_require_refresh(self, db):
        idx = HashIndex(db, ["a"])
        tid = db.insert(["x", 9, "r"])
        idx.refresh()
        assert tid in idx.lookup(("x",))

    def test_detach_stops_tracking(self, db):
        idx = HashIndex(db, ["a"])
        idx.detach()
        db.set_value(0, "a", "y")
        assert idx.lookup(("x",)) == {0, 1}

    def test_multi_attribute_update(self, db):
        idx = HashIndex(db, ["a", "b"])
        db.set_value(0, "b", 7)
        assert idx.lookup(("x", 1)) == set()
        assert idx.lookup(("x", 7)) == {0}
