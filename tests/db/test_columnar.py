"""Tests for the dictionary-encoded columnar mirror."""

import numpy as np
import pytest

from repro.db import ColumnStore, Database, Schema, Vocabulary


@pytest.fixture
def db():
    return Database(
        Schema("r", ["a", "b"]),
        [["x", 1], ["y", 2], ["x", 2], ["z", 1]],
    )


class TestVocabulary:
    def test_encode_assigns_dense_codes(self):
        vocab = Vocabulary()
        assert vocab.encode("p") == 0
        assert vocab.encode("q") == 1
        assert vocab.encode("p") == 0
        assert len(vocab) == 2

    def test_decode_roundtrip(self):
        vocab = Vocabulary()
        values = ["x", 3, None, ("t",)]
        codes = [vocab.encode(v) for v in values]
        assert vocab.decode_many(codes) == values

    def test_code_of_unseen_is_negative(self):
        vocab = Vocabulary()
        assert vocab.code_of("nope") == -1
        assert "nope" not in vocab

    def test_dict_equality_semantics(self):
        """1, 1.0 and True share a dict slot, hence a code."""
        vocab = Vocabulary()
        assert vocab.encode(1) == vocab.encode(1.0) == vocab.encode(True)


class TestColumnStoreBuild:
    def test_lazy_build_matches_rows(self, db):
        cols = db.columns
        assert len(cols) == 4
        decoded = [
            [cols.vocabulary(p).decode(cols.code_at(cols.position_of(tid), p)) for p in range(2)]
            for tid in db.tids()
        ]
        assert decoded == [list(db.row(tid).values) for tid in db.tids()]

    def test_codes_column_matches_database_column(self, db):
        cols = db.columns
        order = [cols.position_of(tid) for tid in db.tids()]
        decoded = cols.vocabulary(0).decode_many(cols.codes(0)[order].tolist())
        assert decoded == db.column("a")

    def test_snapshot_gets_fresh_lazy_store(self, db):
        db.columns  # force build on the original
        copy = db.snapshot()
        assert copy._columns is None
        assert len(copy.columns) == len(db)


class TestColumnStoreMaintenance:
    def test_set_value_updates_codes(self, db):
        cols = db.columns
        db.set_value(0, "a", "fresh")
        row = cols.position_of(0)
        assert cols.vocabulary(0).decode(cols.code_at(row, 0)) == "fresh"

    def test_insert_appends(self, db):
        cols = db.columns
        tid = db.insert({"a": "w", "b": 9})
        assert tid in cols
        assert len(cols) == 5

    def test_delete_swaps_with_last(self, db):
        cols = db.columns
        db.delete(0)
        assert 0 not in cols
        assert len(cols) == 3
        # remaining tuples still decode correctly
        for tid in db.tids():
            row = cols.position_of(tid)
            assert cols.vocabulary(0).decode(cols.code_at(row, 0)) == db.value(tid, "a")

    def test_growth_beyond_initial_capacity(self):
        db = Database(Schema("r", ["a"]))
        for i in range(100):
            db.columns  # keep the store live from the start
            db.insert([i])
        assert len(db.columns) == 100
        assert db.columns.vocabulary(0).decode(db.columns.code_at(db.columns.position_of(99), 0)) == 99

    def test_version_bumps_on_mutations(self, db):
        v0 = db.version
        db.set_value(0, "a", "changed")
        v1 = db.version
        db.insert({"a": "n", "b": 0})
        v2 = db.version
        db.delete(1)
        assert v0 < v1 < v2 < db.version

    def test_noop_write_keeps_version(self, db):
        v0 = db.version
        db.set_value(0, "a", db.value(0, "a"))
        assert db.version == v0


class TestColumnStoreMatching:
    def test_match_mask_single(self, db):
        mask = db.columns.match_mask([(0, "x")])
        assert db.columns.tids()[mask].tolist() == [0, 2] or sorted(
            db.columns.tids()[mask].tolist()
        ) == [0, 2]

    def test_match_mask_conjunction(self, db):
        tids = db.columns.match_tids([(0, "x"), (1, 2)])
        assert tids == [2]

    def test_match_mask_unseen_value_is_empty(self, db):
        assert not db.columns.match_mask([(0, "unseen")]).any()

    def test_match_mask_exclude_tid(self, db):
        tids = db.columns.match_tids([(0, "x")], exclude_tid=0)
        assert tids == [2]

    def test_match_mask_codes(self, db):
        cols = db.columns
        code = cols.code_for(0, "x")
        mask = cols.match_mask_codes([(0, code)])
        assert sorted(cols.tids()[mask].tolist()) == [0, 2]

    def test_values_at_decodes_distinct(self, db):
        cols = db.columns
        mask = cols.match_mask([(1, 1)])
        assert sorted(cols.values_at(0, mask), key=str) == ["x", "z"]

    def test_values_at_never_leaks_stale_vocabulary(self, db):
        cols = db.columns
        db.set_value(3, "a", "x")  # "z" no longer present in any row
        mask = np.ones(len(cols), dtype=bool)
        assert "z" not in cols.values_at(0, mask)
        assert "z" in cols.vocabulary(0)  # vocab itself is append-only
