"""Cross-module integration tests: the full GDR pipeline under stress.

These tests exercise the interaction of the violation detector, update
generator, consistency manager, learner and engine on the synthetic
datasets — the paths the figure experiments rely on.
"""

import pytest

from repro.constraints import ViolationDetector
from repro.core import (
    GDRConfig,
    GDREngine,
    GroundTruthOracle,
    NoisyOracle,
    QualityEvaluator,
    evaluate_repair,
)
from repro.datasets import load_dataset
from repro.db import ChangeLog
from repro.repair import batch_repair


class TestFullRepairRuns:
    @pytest.mark.parametrize("name", ["hospital", "adult"])
    def test_unlimited_no_learning_reaches_consistency(self, name):
        ds = load_dataset(name, n=200, seed=4)
        db = ds.fresh_dirty()
        engine = GDREngine(
            db,
            ds.rules,
            GroundTruthOracle(ds.clean),
            config=GDRConfig.no_learning(),
            clean_db=ds.clean,
        )
        result = engine.run()
        detector = ViolationDetector(db, ds.rules)
        # every remaining violation must be one the generator cannot
        # derive an admissible update for (frozen/prevented exhausted)
        assert detector.vio_total() <= engine.detector.vio_total()
        assert result.improvement > 80

    def test_learning_run_detector_stays_consistent(self, hospital_dataset):
        db = hospital_dataset.fresh_dirty()
        engine = GDREngine(
            db,
            hospital_dataset.rules,
            GroundTruthOracle(hospital_dataset.clean),
            config=GDRConfig.gdr(seed=3),
            clean_db=hospital_dataset.clean,
        )
        engine.run(feedback_limit=60)
        assert engine.detector.verify()
        assert engine.manager.check_invariants() == []

    def test_engine_repairs_in_place_and_tracks_initial(self, hospital_dataset):
        db = hospital_dataset.fresh_dirty()
        engine = GDREngine(
            db,
            hospital_dataset.rules,
            GroundTruthOracle(hospital_dataset.clean),
            config=GDRConfig.no_learning(),
            clean_db=hospital_dataset.clean,
        )
        engine.run(feedback_limit=30)
        assert engine.initial_db.equals_data(hospital_dataset.dirty)
        assert not db.equals_data(hospital_dataset.dirty)


class TestProvenance:
    def test_changes_attributed_to_user_and_learner(self, hospital_dataset):
        db = hospital_dataset.fresh_dirty()
        log = ChangeLog(db)
        engine = GDREngine(
            db,
            hospital_dataset.rules,
            GroundTruthOracle(hospital_dataset.clean),
            config=GDRConfig.gdr(seed=0),
            clean_db=hospital_dataset.clean,
        )
        result = engine.run()
        sources = {c.source for c in log}
        assert "user" in sources
        # learner decisions may all be retains/rejects (no writes), but
        # any learner-sourced write must correspond to a decision
        learner_writes = log.by_source("learner")
        assert len(learner_writes) <= result.learner_decisions
        assert sources <= {"user", "learner"}

    def test_learner_write_count_bounded_by_decisions(self, hospital_dataset):
        db = hospital_dataset.fresh_dirty()
        log = ChangeLog(db)
        engine = GDREngine(
            db,
            hospital_dataset.rules,
            GroundTruthOracle(hospital_dataset.clean),
            config=GDRConfig.gdr(seed=0),
            clean_db=hospital_dataset.clean,
        )
        result = engine.run(feedback_limit=50)
        assert len(log.by_source("learner")) <= result.learner_decisions


class TestMetricsAgreement:
    def test_engine_report_matches_standalone_evaluation(self, hospital_dataset):
        db = hospital_dataset.fresh_dirty()
        engine = GDREngine(
            db,
            hospital_dataset.rules,
            GroundTruthOracle(hospital_dataset.clean),
            config=GDRConfig.no_learning(),
            clean_db=hospital_dataset.clean,
        )
        result = engine.run(feedback_limit=40)
        standalone = evaluate_repair(hospital_dataset.dirty, db, hospital_dataset.clean)
        assert result.report == standalone

    def test_engine_loss_matches_evaluator(self, hospital_dataset):
        db = hospital_dataset.fresh_dirty()
        evaluator = QualityEvaluator(hospital_dataset.clean, hospital_dataset.rules)
        engine = GDREngine(
            db,
            hospital_dataset.rules,
            GroundTruthOracle(hospital_dataset.clean),
            config=GDRConfig.no_learning(),
            clean_db=hospital_dataset.clean,
        )
        result = engine.run(feedback_limit=20)
        assert result.final_loss == pytest.approx(evaluator.loss_of(db))


class TestGDRvsHeuristic:
    def test_guided_repair_more_precise_than_heuristic(self, hospital_dataset):
        heuristic_db = hospital_dataset.fresh_dirty()
        batch_repair(heuristic_db, hospital_dataset.rules)
        heuristic_report = evaluate_repair(
            hospital_dataset.dirty, heuristic_db, hospital_dataset.clean
        )

        gdr_db = hospital_dataset.fresh_dirty()
        engine = GDREngine(
            gdr_db,
            hospital_dataset.rules,
            GroundTruthOracle(hospital_dataset.clean),
            config=GDRConfig.gdr(seed=0),
            clean_db=hospital_dataset.clean,
        )
        result = engine.run()
        assert result.report.precision >= heuristic_report.precision


class TestNoisyOracleIntegration:
    def test_moderate_noise_degrades_gracefully(self, hospital_dataset):
        clean_result = None
        noisy_result = None
        for rate, target in ((0.0, "clean_result"), (0.3, "noisy_result")):
            db = hospital_dataset.fresh_dirty()
            oracle = NoisyOracle(
                GroundTruthOracle(hospital_dataset.clean), error_rate=rate, seed=1
            )
            engine = GDREngine(
                db,
                hospital_dataset.rules,
                oracle,
                config=GDRConfig.gdr(seed=0),
                clean_db=hospital_dataset.clean,
            )
            result = engine.run(feedback_limit=60)
            if target == "clean_result":
                clean_result = result
            else:
                noisy_result = result
        # heavy noise should not beat a perfect oracle by a wide margin
        assert clean_result.improvement >= noisy_result.improvement - 10.0
