"""Chaos suite: deterministic fault injection against the full engine.

Every test follows the same shape — run a clean reference session, run
the same session again with a fault armed (a kill, an injected
corruption, an eviction storm, a journal I/O failure), recover, and
assert the end state is *identical* to the reference. Set
``REPRO_CHAOS_LOG_DIR`` to dump each test's ``engine.health()``
snapshot (incident records included) as JSON.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.datasets import load_dataset
from repro.errors import JournalError
from repro.testing import SessionKilled, arm, fault_scope

pytestmark = pytest.mark.chaos

#: preset -> (kill point, 1-based hit index) for the kill-restore matrix.
#: Learner presets die at the top of the first drain pass (guaranteed to
#: be reached); the learner-free preset dies mid-interactive-loop.
KILL_SCHEDULE = {
    "gdr": ("engine.drain_pass", 1),
    "s_learning": ("engine.drain_pass", 1),
    "active_learning": ("engine.drain_pass", 1),
    "no_learning": ("engine.iteration", 4),
}

FEEDBACK_LIMIT = 25


@pytest.fixture(scope="module")
def chaos_datasets():
    return {name: load_dataset(name, n=120, seed=7) for name in ("hospital", "adult")}


def dump_chaos_log(name: str, payload: dict) -> None:
    """Write one health/incident snapshot when the CI log dir is set."""
    log_dir = os.environ.get("REPRO_CHAOS_LOG_DIR")
    if not log_dir:
        return
    path = Path(log_dir)
    path.mkdir(parents=True, exist_ok=True)
    (path / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str)
    )


def run_clean(ds, preset: str):
    """Reference run: same session, no journal, no faults."""
    db = ds.fresh_dirty()
    engine = GDREngine(
        db,
        ds.rules,
        GroundTruthOracle(ds.clean),
        config=getattr(GDRConfig, preset)(),
        clean_db=ds.clean,
    )
    result = engine.run(feedback_limit=FEEDBACK_LIMIT)
    engine.detach()
    return db, result


def make_durable_engine(ds, preset: str, tmp_path, **overrides):
    config = getattr(GDRConfig, preset)(
        journal_path=str(tmp_path / "journal.jsonl"),
        checkpoint_path=str(tmp_path / "session.cp"),
        checkpoint_every=1,
        **overrides,
    )
    db = ds.fresh_dirty()
    return GDREngine(
        db,
        ds.rules,
        GroundTruthOracle(ds.clean),
        config=config,
        clean_db=ds.clean,
    )


class TestKillAndRestore:
    @pytest.mark.parametrize("dataset_name", ["hospital", "adult"])
    @pytest.mark.parametrize("preset", sorted(KILL_SCHEDULE))
    def test_killed_session_resumes_to_identical_end_state(
        self, preset, dataset_name, chaos_datasets, tmp_path
    ):
        ds = chaos_datasets[dataset_name]
        clean_db, clean_result = run_clean(ds, preset)

        engine = make_durable_engine(ds, preset, tmp_path)
        point, at = KILL_SCHEDULE[preset]

        def kill(ctx):
            raise SessionKilled(f"injected kill at {ctx['point']} hit {ctx['hit']}")

        with fault_scope():
            arm(point, action=kill, at=at)
            with pytest.raises(SessionKilled):
                engine.run(feedback_limit=FEEDBACK_LIMIT)
        engine.detach()

        restored = GDREngine.restore(
            tmp_path / "session.cp", ds.rules, GroundTruthOracle(ds.clean), ds.clean
        )
        result = restored.resume()
        dump_chaos_log(
            f"kill_restore_{preset}_{dataset_name}", restored.health()
        )
        restored.detach()
        assert restored.db.equals_data(clean_db)
        assert result.feedback_used == clean_result.feedback_used
        assert result.remaining_dirty == clean_result.remaining_dirty
        assert result.improvement == pytest.approx(clean_result.improvement)


class TestGuardUnderFaults:
    def test_guard_recovers_injected_stale_benefit(self, chaos_datasets, tmp_path):
        ds = chaos_datasets["hospital"]
        clean_db, clean_result = run_clean(ds, "gdr")

        engine = make_durable_engine(
            ds, "gdr", tmp_path, guard=True, guard_interval=1
        )

        def corrupt(ctx):
            # bring every stamp current, then skew the values: a stale
            # benefit whose stamp reads fresh, invisible to the stamp
            # machinery — only the guard's reference comparison sees it
            cache = engine.benefit_cache
            cache.refresh(engine.probability)
            assert cache._benefit, "benefit cache empty at injection point"
            for key in cache._benefit:
                cache._benefit[key] += 7.5

        with fault_scope():
            arm("engine.iteration", action=corrupt, at=3)
            result = engine.run(feedback_limit=FEEDBACK_LIMIT)
        dump_chaos_log("guard_stale_benefit", engine.health())
        engine.detach()

        assert any(i.component == "benefit_cache" for i in engine.guard.incidents)
        assert engine.guard.stats["degraded_steps"] >= 1
        assert engine.db.equals_data(clean_db)
        assert result.feedback_used == clean_result.feedback_used
        assert result.remaining_dirty == clean_result.remaining_dirty

    def test_sim_cache_eviction_storm_keeps_parity(self, chaos_datasets, tmp_path):
        ds = chaos_datasets["adult"]
        clean_db, clean_result = run_clean(ds, "gdr")

        engine = make_durable_engine(ds, "gdr", tmp_path)

        def storm(ctx):
            engine.sim_cache.clear()

        with fault_scope():
            arm("engine.iteration", action=storm, every=2)
            result = engine.run(feedback_limit=FEEDBACK_LIMIT)
        dump_chaos_log("sim_eviction_storm", engine.health())
        engine.detach()

        assert engine.db.equals_data(clean_db)
        assert result.feedback_used == clean_result.feedback_used
        assert result.remaining_dirty == clean_result.remaining_dirty


class TestLearnerRefitKill:
    @pytest.mark.parametrize("dataset_name", ["hospital", "adult"])
    def test_kill_mid_retrain_resumes_to_identical_end_state(
        self, dataset_name, chaos_datasets, tmp_path
    ):
        """Dying inside a committee refit must be invisible after
        recovery: the refit is atomic (no partial model ever becomes
        the attribute's committee), so the restored session re-runs it
        and finishes byte-identical to the clean reference."""
        ds = chaos_datasets[dataset_name]
        clean_db, clean_result = run_clean(ds, "gdr")

        engine = make_durable_engine(ds, "gdr", tmp_path)

        def kill(ctx):
            assert ctx["examples"] > 0
            raise SessionKilled(
                f"injected kill refitting {ctx['attribute']!r} at hit {ctx['hit']}"
            )

        with fault_scope():
            arm("learner.refit", action=kill, at=2)
            with pytest.raises(SessionKilled):
                engine.run(feedback_limit=FEEDBACK_LIMIT)
        engine.detach()

        restored = GDREngine.restore(
            tmp_path / "session.cp", ds.rules, GroundTruthOracle(ds.clean), ds.clean
        )
        result = restored.resume()
        dump_chaos_log(f"learner_refit_kill_{dataset_name}", restored.health())
        restored.detach()
        assert restored.db.equals_data(clean_db)
        assert result.feedback_used == clean_result.feedback_used
        assert result.learner_decisions == clean_result.learner_decisions
        assert result.remaining_dirty == clean_result.remaining_dirty
        assert result.improvement == pytest.approx(clean_result.improvement)


class TestJournalFailures:
    def test_failed_append_aborts_the_write(self, chaos_datasets, tmp_path):
        ds = chaos_datasets["hospital"]
        engine = make_durable_engine(ds, "no_learning", tmp_path)
        tid = engine.db.tids()[0]
        attribute = engine.db.schema.attributes[0]
        before = engine.db.value(tid, attribute)
        seq_before = engine.journal.seq

        def disk_failure(ctx):
            raise JournalError("injected disk failure")

        with fault_scope():
            arm("journal.append", action=disk_failure)
            with pytest.raises(JournalError, match="injected"):
                engine.db.set_value(tid, attribute, "NEW-VALUE", source="test")
        engine.detach()
        # WAL contract: the append failed, so the write never applied
        assert engine.db.value(tid, attribute) == before
        assert engine.journal.seq == seq_before

    def test_journal_failure_mid_run_is_recoverable(self, chaos_datasets, tmp_path):
        ds = chaos_datasets["hospital"]
        clean_db, clean_result = run_clean(ds, "no_learning")

        engine = make_durable_engine(ds, "no_learning", tmp_path)

        def disk_failure(ctx):
            raise JournalError("injected disk failure")

        with fault_scope():
            arm("journal.append", action=disk_failure, at=30)
            with pytest.raises(JournalError):
                engine.run(feedback_limit=FEEDBACK_LIMIT)
        engine.detach()

        restored = GDREngine.restore(
            tmp_path / "session.cp", ds.rules, GroundTruthOracle(ds.clean), ds.clean
        )
        result = restored.resume()
        dump_chaos_log("journal_failure_recovery", restored.health())
        restored.detach()
        assert restored.db.equals_data(clean_db)
        assert result.feedback_used == clean_result.feedback_used
        assert result.remaining_dirty == clean_result.remaining_dirty


class TestShardWorkerDeath:
    """Kill shard workers mid-session; the pool must respawn them and
    the session must end byte-identical to the serial reference."""

    def _run_sharded(self, ds, preset, kill_at=None):
        db = ds.fresh_dirty()
        config = getattr(GDRConfig, preset)(seed=3, shards=2)
        engine = GDREngine(
            db, ds.rules, GroundTruthOracle(ds.clean), config, clean_db=ds.clean
        )

        def kill_worker(ctx):
            ctx["pool"].kill_worker(ctx["shard"])

        with fault_scope():
            if kill_at is not None:
                for at in kill_at:
                    arm("shard.dispatch", action=kill_worker, at=at)
            result = engine.run(feedback_limit=FEEDBACK_LIMIT)
        health = engine.health()
        engine.detach()
        return db, result, health

    def test_worker_death_respawns_and_matches(self, chaos_datasets):
        ds = chaos_datasets["hospital"]
        undisturbed_db, undisturbed, __ = self._run_sharded(ds, "gdr")
        killed_db, killed, health = self._run_sharded(ds, "gdr", kill_at=(1, 5))
        assert killed_db.equals_data(undisturbed_db)
        assert killed.feedback_used == undisturbed.feedback_used
        assert killed.final_loss == undisturbed.final_loss
        assert [
            (p.feedback, p.loss) for p in killed.trajectory
        ] == [(p.feedback, p.loss) for p in undisturbed.trajectory]
        assert health["shards"]["pool_respawns"] >= 1
        dump_chaos_log("shard_worker_death", health)

    def test_killed_sharded_session_restores_identically(
        self, chaos_datasets, tmp_path
    ):
        # process kill on top of a worker kill: the restored session
        # must rebuild its own pool and converge on the serial end state
        ds = chaos_datasets["hospital"]
        clean_db, clean_result = run_clean(ds, "gdr")

        engine = make_durable_engine(ds, "gdr", tmp_path, shards=2)

        def kill_worker(ctx):
            ctx["pool"].kill_worker(ctx["shard"])

        def kill(ctx):
            raise SessionKilled("injected kill mid-drain")

        with fault_scope():
            arm("shard.dispatch", action=kill_worker, at=1)
            arm("engine.drain_pass", action=kill, at=1)
            with pytest.raises(SessionKilled):
                engine.run(feedback_limit=FEEDBACK_LIMIT)
        engine.detach()

        restored = GDREngine.restore(
            tmp_path / "session.cp", ds.rules, GroundTruthOracle(ds.clean), ds.clean
        )
        assert restored.config.shards == 2
        result = restored.resume()
        dump_chaos_log("shard_kill_restore", restored.health())
        restored.detach()
        assert restored.db.equals_data(clean_db)
        assert result.feedback_used == clean_result.feedback_used
        assert result.remaining_dirty == clean_result.remaining_dirty
        assert result.improvement == pytest.approx(clean_result.improvement)
