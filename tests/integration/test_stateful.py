"""Stateful property test: the repair substrate under random operations.

Drives a database, its violation detector and a repair state through
random interleavings of cell writes, feedback applications and
refreshes, asserting the system-wide invariants after every step:

* incremental violation statistics equal a fresh rebuild;
* no live suggestion targets a frozen cell, proposes the current value
  or proposes a prevented value;
* frozen cells are never modified by feedback routing.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.constraints import RuleSet, ViolationDetector, parse_rules
from repro.db import Database, Schema
from repro.repair import (
    ConsistencyManager,
    RepairState,
    UpdateGenerator,
    UserFeedback,
)

SCHEMA = Schema("r", ["zip", "city", "state", "street"])

RULES_TEXT = """
phi1: (zip -> city, {46360 || 'Michigan City'})
phi2: (zip -> city, {46825 || 'Fort Wayne'})
phi3: (zip -> state, {46360 || IN})
phi5: (street, city -> zip, {-, - || -})
"""

ZIPS = ["46360", "46825", "46391", "99999"]
CITIES = ["Michigan City", "Fort Wayne", "Westville", "Garbage"]
STATES = ["IN", "XX"]
STREETS = ["Main St", "Oak Ave", "Bell Ave"]

VALUES = {"zip": ZIPS, "city": CITIES, "state": STATES, "street": STREETS}


class RepairSubstrateMachine(RuleBasedStateMachine):
    """Random walks over the write/feedback/refresh API surface."""

    @initialize(
        rows=st.lists(
            st.tuples(
                st.sampled_from(ZIPS),
                st.sampled_from(CITIES),
                st.sampled_from(STATES),
                st.sampled_from(STREETS),
            ),
            min_size=3,
            max_size=8,
        )
    )
    def setup(self, rows):
        self.db = Database(SCHEMA, [list(row) for row in rows])
        self.rules = RuleSet(parse_rules(RULES_TEXT), schema=SCHEMA)
        self.detector = ViolationDetector(self.db, self.rules)
        self.state = RepairState()
        self.generator = UpdateGenerator(self.db, self.rules, self.detector, self.state)
        self.manager = ConsistencyManager(
            self.db, self.rules, self.detector, self.state, self.generator
        )
        self.generator.generate_all()

    @rule(
        tid_index=st.integers(min_value=0, max_value=7),
        attr=st.sampled_from(SCHEMA.attributes),
        value_index=st.integers(min_value=0, max_value=3),
    )
    def external_write(self, tid_index, attr, value_index):
        """An out-of-band edit (the online-monitoring scenario)."""
        tids = self.db.tids()
        tid = tids[tid_index % len(tids)]
        pool = VALUES[attr]
        self.db.set_value(tid, attr, pool[value_index % len(pool)], source="external")

    @rule(pick=st.integers(min_value=0, max_value=30), kind=st.sampled_from(["confirm", "reject", "retain"]))
    def apply_feedback(self, pick, kind):
        updates = self.state.updates()
        if not updates:
            return
        update = updates[pick % len(updates)]
        feedback = {
            "confirm": UserFeedback.confirm(),
            "reject": UserFeedback.reject(),
            "retain": UserFeedback.retain(),
        }[kind]
        self.manager.apply_feedback(update, feedback)

    @rule()
    def refresh(self):
        self.manager.refresh_suggestions()

    @invariant()
    def detector_matches_fresh_rebuild(self):
        assert self.detector.verify()

    @invariant()
    def suggestions_are_admissible(self):
        assert self.manager.check_invariants() == []


RepairSubstrateMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestRepairSubstrate = RepairSubstrateMachine.TestCase
