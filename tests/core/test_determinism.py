"""Determinism guarantees: same seed, same everything."""

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.datasets import load_dataset


def _run(name: str, seed: int, config_seed: int, budget: int):
    ds = load_dataset(name, n=150, seed=seed)
    db = ds.fresh_dirty()
    engine = GDREngine(
        db,
        ds.rules,
        GroundTruthOracle(ds.clean),
        config=GDRConfig.gdr(seed=config_seed),
        clean_db=ds.clean,
    )
    result = engine.run(feedback_limit=budget)
    return db, result


class TestDeterminism:
    def test_same_seed_same_final_instance(self):
        db_a, result_a = _run("hospital", seed=7, config_seed=3, budget=30)
        db_b, result_b = _run("hospital", seed=7, config_seed=3, budget=30)
        assert db_a.equals_data(db_b)
        assert result_a.feedback_used == result_b.feedback_used
        assert result_a.learner_decisions == result_b.learner_decisions
        assert result_a.final_loss == result_b.final_loss
        assert [p.loss for p in result_a.trajectory] == [p.loss for p in result_b.trajectory]

    def test_different_engine_seed_may_diverge_without_error(self):
        __, result_a = _run("hospital", seed=7, config_seed=1, budget=30)
        __, result_b = _run("hospital", seed=7, config_seed=2, budget=30)
        assert result_a.feedback_used > 0 and result_b.feedback_used > 0

    def test_adult_deterministic_too(self):
        db_a, result_a = _run("adult", seed=5, config_seed=0, budget=25)
        db_b, result_b = _run("adult", seed=5, config_seed=0, budget=25)
        assert db_a.equals_data(db_b)
        assert result_a.improvement == result_b.improvement
