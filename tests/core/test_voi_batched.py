"""Tests for the batched Eq. 6 evaluation threading (VOI + Greedy)."""

import pytest

from repro.constraints import CFD, RuleSet, ViolationDetector, parse_rules
from repro.constraints.violations import WhatIfOutcome
from repro.core import GreedyRanking, UpdateGroup, VOIEstimator, VOIRanking
from repro.core.grouping import group_updates
from repro.db import Database, Schema
from repro.repair import CandidateUpdate


class ScalarOnlyStats:
    """Provider without ``what_if_many``: exercises the fallback path."""

    def __init__(self, outcomes, weights):
        self._outcomes = outcomes
        self._weights = weights
        self.calls = 0

    def what_if(self, tid, attribute, value):
        self.calls += 1
        return self._outcomes[(tid, attribute, value)]

    def weights(self):
        return self._weights


class BatchedStats(ScalarOnlyStats):
    """Provider with ``what_if_many``: scalar calls must not be needed."""

    def __init__(self, outcomes, weights):
        super().__init__(outcomes, weights)
        self.batch_calls = 0

    def what_if_many(self, tid, attribute, values):
        self.batch_calls += 1
        return [self._outcomes[(tid, attribute, value)] for value in values]


def _fixture():
    rule = CFD(["zip"], "city", {"zip": "46360", "city": "Michigan City"}, name="phi1")
    updates = [
        CandidateUpdate(2, "city", "Michigan City", 0.9),
        CandidateUpdate(3, "city", "Michigan City", 0.6),
        CandidateUpdate(4, "city", "Michigan City", 0.6),
    ]
    outcomes = {
        (u.tid, "city", "Michigan City"): {rule: WhatIfOutcome(4, 3, 1)} for u in updates
    }
    weights = {rule: 0.5}
    probabilities = {2: 0.9, 3: 0.6, 4: 0.6}
    return rule, updates, outcomes, weights, probabilities


class TestUpdateBenefitsMany:
    def test_scalar_fallback_matches_update_benefit(self):
        __, updates, outcomes, weights, probs = _fixture()
        stats = ScalarOnlyStats(outcomes, weights)
        estimator = VOIEstimator(stats)
        many = estimator.update_benefits_many(updates, [probs[u.tid] for u in updates])
        single = [estimator.update_benefit(u, probs[u.tid]) for u in updates]
        assert many == pytest.approx(single)

    def test_batched_provider_matches_and_batches(self):
        __, updates, outcomes, weights, probs = _fixture()
        scalar = VOIEstimator(ScalarOnlyStats(outcomes, weights))
        batched_stats = BatchedStats(outcomes, weights)
        batched = VOIEstimator(batched_stats)
        expected = [scalar.update_benefit(u, probs[u.tid]) for u in updates]
        got = batched.update_benefits_many(updates, [probs[u.tid] for u in updates])
        assert got == pytest.approx(expected)
        # three distinct cells -> three batch calls, zero scalar calls
        assert batched_stats.batch_calls == 3
        assert batched_stats.calls == 0

    def test_group_benefit_unchanged_by_batching(self):
        __, updates, outcomes, weights, probs = _fixture()
        group = UpdateGroup(("city", "Michigan City"), updates)
        scalar = VOIEstimator(ScalarOnlyStats(outcomes, weights))
        batched = VOIEstimator(BatchedStats(outcomes, weights))
        probability = lambda u: probs[u.tid]
        assert batched.group_benefit(group, probability) == pytest.approx(
            scalar.group_benefit(group, probability)
        )
        # the §4.1 worked example value survives the batched path
        assert batched.group_benefit(group, probability) == pytest.approx(1.05)


class TestLiveDetectorBatching:
    """End-to-end: VOI ranking over a live columnar detector."""

    def _setup(self):
        db = Database(
            Schema("r", ["zip", "city"]),
            [
                ["46360", "Westville"],
                ["46360", "Wstville"],
                ["46391", "Westville"],
            ],
        )
        rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
        detector = ViolationDetector(db, rules)
        updates = [
            CandidateUpdate(0, "city", "Michigan City", 0.4),
            CandidateUpdate(1, "city", "Michigan City", 0.4),
        ]
        return detector, group_updates(updates)

    def test_rank_groups_equals_per_update_arithmetic(self):
        detector, groups = self._setup()
        estimator = VOIEstimator(detector)
        ranked = estimator.rank_groups(groups, lambda u: u.score)
        manual = sum(
            estimator.update_benefit(u, u.score) for u in groups[0].updates
        )
        assert ranked[0][1] == pytest.approx(manual)

    def test_voi_ranking_delegates(self):
        detector, groups = self._setup()
        strategy = VOIRanking(VOIEstimator(detector))
        ranked = strategy.rank(groups, lambda u: u.score)
        assert ranked[0][0].key == ("city", "Michigan City")


class TestGreedyTieBreak:
    def _groups(self):
        updates_a = [CandidateUpdate(0, "b", "useless", 0.5), CandidateUpdate(1, "b", "useless", 0.5)]
        updates_b = [CandidateUpdate(2, "b", "helpful", 0.5), CandidateUpdate(3, "b", "helpful", 0.5)]
        return [UpdateGroup(("b", "useless"), updates_a), UpdateGroup(("b", "helpful"), updates_b)]

    def test_without_estimator_ties_break_lexicographically(self):
        ranked = GreedyRanking().rank(self._groups(), lambda u: u.score)
        assert [g.value for g, __ in ranked] == ["helpful", "useless"]
        assert all(score == 2.0 for __, score in ranked)

    def test_estimator_tie_break_prefers_benefit(self):
        rule = CFD(["a"], "b", {"a": "1", "b": "2"}, name="r")
        outcomes = {
            (0, "b", "useless"): {rule: WhatIfOutcome(4, 4, 1)},
            (1, "b", "useless"): {rule: WhatIfOutcome(4, 4, 1)},
            (2, "b", "helpful"): {rule: WhatIfOutcome(4, 1, 1)},
            (3, "b", "helpful"): {rule: WhatIfOutcome(4, 1, 1)},
        }
        stats = BatchedStats(outcomes, {rule: 1.0})
        ranked = GreedyRanking(VOIEstimator(stats)).rank(self._groups(), lambda u: u.score)
        # sizes tie at 2; benefit promotes 'helpful' — and the score
        # stays the group size for the effort policy
        assert [g.value for g, __ in ranked] == ["helpful", "useless"]
        assert [score for __, score in ranked] == [2.0, 2.0]
        assert stats.batch_calls > 0

    def test_estimator_does_not_override_size_order(self):
        rule = CFD(["a"], "b", {"a": "1", "b": "2"}, name="r")
        big = UpdateGroup(("b", "weak"), [CandidateUpdate(i, "b", "weak", 0.5) for i in range(3)])
        small = UpdateGroup(("b", "strong"), [CandidateUpdate(9, "b", "strong", 0.5)])
        outcomes = {
            (9, "b", "strong"): {rule: WhatIfOutcome(9, 0, 1)},
            **{(i, "b", "weak"): {rule: WhatIfOutcome(4, 4, 1)} for i in range(3)},
        }
        stats = BatchedStats(outcomes, {rule: 1.0})
        ranked = GreedyRanking(VOIEstimator(stats)).rank([big, small], lambda u: u.score)
        assert ranked[0][0] is big  # largest-first is still primary
