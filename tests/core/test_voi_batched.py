"""Tests for the batched Eq. 6 evaluation threading (VOI + Greedy)."""

import pytest

from repro.constraints import CFD, RuleSet, ViolationDetector, parse_rules
from repro.constraints.violations import WhatIfOutcome
from repro.core import GreedyRanking, UpdateGroup, VOIEstimator, VOIRanking
from repro.core.grouping import group_updates
from repro.db import Database, Schema
from repro.repair import CandidateUpdate


class ScalarOnlyStats:
    """Provider without ``what_if_many``: exercises the fallback path."""

    def __init__(self, outcomes, weights):
        self._outcomes = outcomes
        self._weights = weights
        self.calls = 0

    def what_if(self, tid, attribute, value):
        self.calls += 1
        return self._outcomes[(tid, attribute, value)]

    def weights(self):
        return self._weights


class BatchedStats(ScalarOnlyStats):
    """Provider with ``what_if_many``: scalar calls must not be needed."""

    def __init__(self, outcomes, weights):
        super().__init__(outcomes, weights)
        self.batch_calls = 0

    def what_if_many(self, tid, attribute, values):
        self.batch_calls += 1
        return [self._outcomes[(tid, attribute, value)] for value in values]


def _fixture():
    rule = CFD(["zip"], "city", {"zip": "46360", "city": "Michigan City"}, name="phi1")
    updates = [
        CandidateUpdate(2, "city", "Michigan City", 0.9),
        CandidateUpdate(3, "city", "Michigan City", 0.6),
        CandidateUpdate(4, "city", "Michigan City", 0.6),
    ]
    outcomes = {
        (u.tid, "city", "Michigan City"): {rule: WhatIfOutcome(4, 3, 1)} for u in updates
    }
    weights = {rule: 0.5}
    probabilities = {2: 0.9, 3: 0.6, 4: 0.6}
    return rule, updates, outcomes, weights, probabilities


class TestUpdateBenefitsMany:
    def test_scalar_fallback_matches_update_benefit(self):
        __, updates, outcomes, weights, probs = _fixture()
        stats = ScalarOnlyStats(outcomes, weights)
        estimator = VOIEstimator(stats)
        many = estimator.update_benefits_many(updates, [probs[u.tid] for u in updates])
        single = [estimator.update_benefit(u, probs[u.tid]) for u in updates]
        assert many == pytest.approx(single)

    def test_batched_provider_matches_and_batches(self):
        __, updates, outcomes, weights, probs = _fixture()
        scalar = VOIEstimator(ScalarOnlyStats(outcomes, weights))
        batched_stats = BatchedStats(outcomes, weights)
        batched = VOIEstimator(batched_stats)
        expected = [scalar.update_benefit(u, probs[u.tid]) for u in updates]
        got = batched.update_benefits_many(updates, [probs[u.tid] for u in updates])
        assert got == pytest.approx(expected)
        # three distinct cells -> three batch calls, zero scalar calls
        assert batched_stats.batch_calls == 3
        assert batched_stats.calls == 0

    def test_group_benefit_unchanged_by_batching(self):
        __, updates, outcomes, weights, probs = _fixture()
        group = UpdateGroup(("city", "Michigan City"), updates)
        scalar = VOIEstimator(ScalarOnlyStats(outcomes, weights))
        batched = VOIEstimator(BatchedStats(outcomes, weights))
        probability = lambda u: probs[u.tid]
        assert batched.group_benefit(group, probability) == pytest.approx(
            scalar.group_benefit(group, probability)
        )
        # the §4.1 worked example value survives the batched path
        assert batched.group_benefit(group, probability) == pytest.approx(1.05)


class TestLiveDetectorBatching:
    """End-to-end: VOI ranking over a live columnar detector."""

    def _setup(self):
        db = Database(
            Schema("r", ["zip", "city"]),
            [
                ["46360", "Westville"],
                ["46360", "Wstville"],
                ["46391", "Westville"],
            ],
        )
        rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
        detector = ViolationDetector(db, rules)
        updates = [
            CandidateUpdate(0, "city", "Michigan City", 0.4),
            CandidateUpdate(1, "city", "Michigan City", 0.4),
        ]
        return detector, group_updates(updates)

    def test_rank_groups_equals_per_update_arithmetic(self):
        detector, groups = self._setup()
        estimator = VOIEstimator(detector)
        ranked = estimator.rank_groups(groups, lambda u: u.score)
        manual = sum(
            estimator.update_benefit(u, u.score) for u in groups[0].updates
        )
        assert ranked[0][1] == pytest.approx(manual)

    def test_voi_ranking_delegates(self):
        detector, groups = self._setup()
        strategy = VOIRanking(VOIEstimator(detector))
        ranked = strategy.rank(groups, lambda u: u.score)
        assert ranked[0][0].key == ("city", "Michigan City")


class TestSparseMovedPath:
    """`what_if_moved_many` + the probe-signature term memo vs the
    dense outcome-map arithmetic."""

    def _live(self, n=200, seed=13):
        from repro.datasets import load_dataset

        ds = load_dataset("hospital", n=n, seed=seed)
        db = ds.fresh_dirty()
        detector = ViolationDetector(db, ds.rules)
        return ds, db, detector

    def test_moved_rows_agree_with_dense_outcomes(self):
        __, db, detector = self._live()
        dirty = sorted(detector.dirty_tuples())[:40]
        for tid in dirty:
            for attribute in ("zip", "city"):
                current = db.value(tid, attribute)
                candidates = ["46360", "Michigan City", current]
                dense = detector.what_if_many(tid, attribute, candidates)
                sparse = detector.what_if_moved_many(tid, attribute, candidates)
                for outcomes, moved in zip(dense, sparse):
                    expected = [
                        (rule, outcome)
                        for rule, outcome in outcomes.items()
                        if outcome.vio_reduction != 0
                    ]
                    assert moved == expected

    def test_update_benefits_many_matches_dense_loop(self):
        from repro.core.voi import _benefit_from_outcomes

        __, db, detector = self._live()
        estimator = VOIEstimator(detector)
        weights = detector.weights()
        updates = []
        for tid in sorted(detector.dirty_tuples())[:60]:
            updates.append(CandidateUpdate(tid, "zip", "46360", 0.4))
            updates.append(CandidateUpdate(tid, "city", "Michigan City", 0.7))
        probabilities = [0.1 + (i % 7) / 10 for i in range(len(updates))]
        got = estimator.update_benefits_many(updates, probabilities)
        expected = [
            _benefit_from_outcomes(
                detector.what_if(u.tid, u.attribute, u.value), p, weights
            )
            for u, p in zip(updates, probabilities)
        ]
        assert got == expected  # byte-identical, not approx

    def test_term_memo_reuses_until_stats_move(self):
        __, db, detector = self._live(n=120)
        estimator = VOIEstimator(detector)
        tid = sorted(detector.dirty_tuples())[0]
        updates = [CandidateUpdate(tid, "zip", "46360", 0.4)]
        first = estimator.update_benefits_many(updates, [0.5])
        assert len(estimator._term_memo) > 0
        # statistics unchanged -> memo hit, same value
        assert estimator.update_benefits_many(updates, [0.5]) == first
        # a write that moves the statistics invalidates via the stamp
        before = detector.attr_stats_version("zip")
        db.set_value(tid, "zip", "46360")
        if detector.attr_stats_version("zip") != before:
            fresh = estimator.update_benefits_many(updates, [0.5])
            weights = detector.weights()
            from repro.core.voi import _benefit_from_outcomes

            assert fresh == [
                _benefit_from_outcomes(
                    detector.what_if(tid, "zip", "46360"), 0.5, weights
                )
            ]

    def test_caller_weights_bypass_persistent_memo(self):
        __, db, detector = self._live(n=120)
        estimator = VOIEstimator(detector)
        tid = sorted(detector.dirty_tuples())[0]
        updates = [CandidateUpdate(tid, "zip", "46360", 0.4)]
        # seed the persistent memo with live weights
        estimator.update_benefits_many(updates, [0.5])
        # a custom weights mapping must not read the baked-in terms
        zero = estimator.update_benefits_many(updates, [0.5], {r: 0.0 for r in detector.rules})
        assert zero == [0.0]

    def test_rule_less_attribute_scores_zero(self):
        """An update on an attribute no rule touches must score 0.0
        through the sparse path, exactly like the scalar/dense paths."""
        from repro.db import Database, Schema

        db = Database(
            Schema("r", ["zip", "city", "state"]),
            [["46360", "Westville", "IN"], ["46360", "Wstville", "IN"]],
        )
        rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
        detector = ViolationDetector(db, rules)
        estimator = VOIEstimator(detector)
        update = CandidateUpdate(0, "state", "IL", 0.5)
        assert estimator.update_benefit(update, 0.5) == 0.0
        assert estimator.update_benefits_many([update], [0.5]) == [0.0]

    def test_probe_signature_shared_by_identical_rows(self):
        from repro.db import Database, Schema

        db = Database(
            Schema("r", ["zip", "city"]),
            [["46360", "Westville"], ["46360", "Westville"], ["46391", "Westville"]],
        )
        rules = RuleSet(parse_rules("(zip -> city, {46360 || 'Michigan City'})"))
        detector = ViolationDetector(db, rules)
        assert detector.probe_signature(0, "city") == detector.probe_signature(1, "city")
        assert detector.probe_signature(0, "city") != detector.probe_signature(2, "city")
        # writes invalidate the cached signature
        db.set_value(0, "zip", "46391")
        assert detector.probe_signature(0, "city") == detector.probe_signature(2, "city")


class TestGreedyTieBreak:
    def _groups(self):
        updates_a = [CandidateUpdate(0, "b", "useless", 0.5), CandidateUpdate(1, "b", "useless", 0.5)]
        updates_b = [CandidateUpdate(2, "b", "helpful", 0.5), CandidateUpdate(3, "b", "helpful", 0.5)]
        return [UpdateGroup(("b", "useless"), updates_a), UpdateGroup(("b", "helpful"), updates_b)]

    def test_without_estimator_ties_break_lexicographically(self):
        ranked = GreedyRanking().rank(self._groups(), lambda u: u.score)
        assert [g.value for g, __ in ranked] == ["helpful", "useless"]
        assert all(score == 2.0 for __, score in ranked)

    def test_estimator_tie_break_prefers_benefit(self):
        rule = CFD(["a"], "b", {"a": "1", "b": "2"}, name="r")
        outcomes = {
            (0, "b", "useless"): {rule: WhatIfOutcome(4, 4, 1)},
            (1, "b", "useless"): {rule: WhatIfOutcome(4, 4, 1)},
            (2, "b", "helpful"): {rule: WhatIfOutcome(4, 1, 1)},
            (3, "b", "helpful"): {rule: WhatIfOutcome(4, 1, 1)},
        }
        stats = BatchedStats(outcomes, {rule: 1.0})
        ranked = GreedyRanking(VOIEstimator(stats)).rank(self._groups(), lambda u: u.score)
        # sizes tie at 2; benefit promotes 'helpful' — and the score
        # stays the group size for the effort policy
        assert [g.value for g, __ in ranked] == ["helpful", "useless"]
        assert [score for __, score in ranked] == [2.0, 2.0]
        assert stats.batch_calls > 0

    def test_estimator_does_not_override_size_order(self):
        rule = CFD(["a"], "b", {"a": "1", "b": "2"}, name="r")
        big = UpdateGroup(("b", "weak"), [CandidateUpdate(i, "b", "weak", 0.5) for i in range(3)])
        small = UpdateGroup(("b", "strong"), [CandidateUpdate(9, "b", "strong", 0.5)])
        outcomes = {
            (9, "b", "strong"): {rule: WhatIfOutcome(9, 0, 1)},
            **{(i, "b", "weak"): {rule: WhatIfOutcome(4, 4, 1)} for i in range(3)},
        }
        stats = BatchedStats(outcomes, {rule: 1.0})
        ranked = GreedyRanking(VOIEstimator(stats)).rank([big, small], lambda u: u.score)
        assert ranked[0][0] is big  # largest-first is still primary
