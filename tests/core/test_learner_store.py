"""Warm-started learner store: growable matrices, incremental binning,
hist/exact kind parity, export-format round trips, refit atomicity."""

import numpy as np
import pytest

from repro.core import FeedbackLearner
from repro.core.learner import _ExampleStore
from repro.db import Schema
from repro.errors import ConfigError
from repro.ml.binning import bin_matrix
from repro.ml.forest import HistogramForestClassifier, RandomForestClassifier
from repro.repair import CandidateUpdate, Feedback
from repro.testing import SessionKilled, arm, fault_scope


@pytest.fixture()
def schema():
    return Schema("r", ["src", "city", "zip"])


def teach(learner, n=12, retrain=True):
    """Source H2 updates are confirmable; source H9 ones are rejected."""
    for i in range(n):
        confirm = CandidateUpdate(i, "city", "Fort Wayne", 0.8)
        learner.add_example(confirm, ("H2", f"FT Wayne {i % 3}", "46825"), Feedback.CONFIRM)
        reject = CandidateUpdate(100 + i, "city", "Garbage", 0.2)
        learner.add_example(reject, ("H9", "Fort Wayne", "46825"), Feedback.REJECT)
    if retrain:
        learner.retrain("city")


def probe_predictions(learner):
    good = CandidateUpdate(999, "city", "Fort Wayne", 0.8)
    bad = CandidateUpdate(998, "city", "Garbage", 0.2)
    return (
        learner.predict(good, ("H2", "FT Wayne 0", "46825")),
        learner.predict(bad, ("H9", "Fort Wayne", "46825")),
    )


class TestExampleStore:
    def test_growth_preserves_rows(self):
        store = _ExampleStore(3, capacity=2)
        rows = np.arange(30, dtype=np.float64).reshape(10, 3)
        for i, row in enumerate(rows):
            store.append(row, i % 2)
        assert len(store) == 10
        assert np.array_equal(store.X, rows)
        assert store.y.tolist() == [i % 2 for i in range(10)]
        assert store.n_classes_seen == 2

    def test_binned_equals_bin_matrix_after_appends(self):
        rng = np.random.default_rng(0)
        store = _ExampleStore(4)
        for __ in range(25):
            row = rng.integers(0, 5, size=4).astype(float)
            store.append(row, int(rng.integers(0, 3)))
        binned = store.binned()
        reference = bin_matrix(store.X)
        assert [v.tolist() for v in binned.bin_values] == [
            v.tolist() for v in reference.bin_values
        ]
        assert np.array_equal(np.asarray(binned.codes), np.asarray(reference.codes))

    def test_incremental_rebinning_on_vocabulary_growth(self):
        rng = np.random.default_rng(1)
        store = _ExampleStore(2)
        for __ in range(10):
            store.append(np.array([rng.integers(0, 3), rng.random()]), 0)
        store.binned()  # warm the encoding
        # appended rows: one re-uses the vocabulary, one grows it
        store.append(np.array([1.0, 0.5]), 1)
        store.append(np.array([99.0, 0.25]), 1)
        binned = store.binned()
        reference = bin_matrix(store.X)
        for got, want in zip(binned.bin_values, reference.bin_values):
            assert np.array_equal(got, want)
        assert np.array_equal(np.asarray(binned.codes), np.asarray(reference.codes))

    def test_from_arrays_round_trip(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0], [1.0, 0.0]])
        y = np.array([0, 2, 0])
        store = _ExampleStore.from_arrays(X, y)
        assert np.array_equal(store.X, X)
        assert np.array_equal(store.y, y)
        assert store.n_classes_seen == 2
        more = np.array([5.0, 6.0])
        store.append(more, 1)
        assert len(store) == 4
        assert store.n_classes_seen == 3


class TestLearnerKinds:
    def test_invalid_kind_rejected(self, schema):
        with pytest.raises(ConfigError):
            FeedbackLearner(schema, kind="bogus")

    def test_default_kind_is_hist(self, schema):
        learner = FeedbackLearner(schema)
        assert learner.kind == "hist"

    def test_hist_model_class(self, schema):
        learner = FeedbackLearner(schema, min_examples=5, seed=0)
        teach(learner)
        assert isinstance(learner._models["city"], HistogramForestClassifier)

    def test_exact_model_class(self, schema):
        learner = FeedbackLearner(schema, min_examples=5, seed=0, kind="exact")
        teach(learner)
        assert type(learner._models["city"]) is RandomForestClassifier

    def test_hist_and_exact_agree_bit_for_bit(self, schema):
        hist = FeedbackLearner(schema, min_examples=5, seed=3)
        exact = FeedbackLearner(schema, min_examples=5, seed=3, kind="exact")
        teach(hist)
        teach(exact)
        for ph, pe in zip(probe_predictions(hist), probe_predictions(exact)):
            assert ph.feedback is pe.feedback
            assert ph.confirm_probability == pe.confirm_probability
            assert ph.uncertainty == pe.uncertainty
        th = hist._models["city"].trees
        te = exact._models["city"].trees
        for a, b in zip(te, th):
            assert np.array_equal(a._feature, b._feature)
            assert np.array_equal(a._threshold, b._threshold)
            assert np.array_equal(a._proba, b._proba)

    def test_warm_refits_match_cold_learner(self, schema):
        """Incremental appends + repeated refits == one fresh learner
        fed the same examples (the warm bin tables change nothing)."""
        warm = FeedbackLearner(schema, min_examples=5, seed=7)
        for round_ in range(4):
            teach(warm, n=4 + round_, retrain=True)
        cold = FeedbackLearner(schema, min_examples=5, seed=7)
        for round_ in range(4):
            teach(cold, n=4 + round_, retrain=False)
        cold.retrain("city")
        # same accumulated examples, same seed -> same final committee
        assert np.array_equal(warm._stores["city"].X, cold._stores["city"].X)
        for a, b in zip(warm._models["city"].trees, cold._models["city"].trees):
            assert np.array_equal(a._feature, b._feature)
            assert np.array_equal(a._threshold, b._threshold)
            assert np.array_equal(a._proba, b._proba)
        for pw, pc in zip(probe_predictions(warm), probe_predictions(cold)):
            assert pw.confirm_probability == pc.confirm_probability


class TestExportRestore:
    def test_format2_round_trip(self, schema):
        learner = FeedbackLearner(schema, min_examples=5, seed=1)
        teach(learner)
        state = learner.export_state()
        assert state["format"] == 2
        clone = FeedbackLearner(schema, min_examples=5, seed=1)
        clone.restore_state(state)
        assert clone.total_examples() == learner.total_examples()
        assert clone.model_version("city") == learner.model_version("city")
        for pa, pb in zip(probe_predictions(learner), probe_predictions(clone)):
            assert pa == pb
        # the restored store keeps accepting examples and refitting
        teach(clone, n=2)
        assert clone.model_version("city") == learner.model_version("city") + 1

    def test_encoder_vocab_round_trips(self, schema):
        """The value→code dictionaries must survive export/restore.

        Committees are trained on the encoder's code assignment; a
        restored learner that re-encodes future values against a fresh
        vocabulary answers against the wrong dictionary (the original
        recovery-divergence bug the chaos refit-kill tests caught)."""
        learner = FeedbackLearner(schema, min_examples=5, seed=1)
        teach(learner)
        state = learner.export_state()
        assert state["vocab"] == learner.encoder.export_vocab()
        clone = FeedbackLearner(schema, min_examples=5, seed=1)
        clone.restore_state(state)
        for attr in schema.attributes:
            orig = learner.encoder.encoder_for(attr)
            rest = clone.encoder.encoder_for(attr)
            assert rest.export_values() == orig.export_values()
            for value in orig.export_values():
                assert rest.encode(value) == orig.encode(value)

    def test_legacy_format_restores(self, schema):
        learner = FeedbackLearner(schema, min_examples=5, seed=1)
        teach(learner)
        state = learner.export_state()
        # rewrite as the pre-store per-row format
        legacy = dict(state)
        del legacy["format"]
        examples = legacy.pop("examples")
        legacy["features"] = {a: [row.copy() for row in X] for a, (X, __) in examples.items()}
        legacy["labels"] = {a: [int(v) for v in y] for a, (__, y) in examples.items()}
        clone = FeedbackLearner(schema, min_examples=5, seed=1)
        clone.restore_state(legacy)
        assert clone.total_examples() == learner.total_examples()
        for pa, pb in zip(probe_predictions(learner), probe_predictions(clone)):
            assert pa == pb


class TestRefitAtomicity:
    def test_kill_mid_refit_leaves_previous_model_intact(self, schema):
        learner = FeedbackLearner(schema, min_examples=5, seed=2)
        teach(learner)
        before_model = learner._models["city"]
        before_version = learner.model_version("city")
        before_predictions = probe_predictions(learner)
        update = CandidateUpdate(0, "city", "v", 0.5)
        learner.add_example(update, ("H2", "a", "b"), Feedback.RETAIN)

        def kill(ctx):
            raise SessionKilled(f"injected kill at {ctx['point']}")

        with fault_scope():
            arm("learner.refit", action=kill, at=1)
            with pytest.raises(SessionKilled):
                learner.retrain("city")
        # no partial model is visible: same object, same version, same
        # answers, and the staleness flag still marks the refit as due
        assert learner._models["city"] is before_model
        assert learner.model_version("city") == before_version
        assert probe_predictions(learner) == before_predictions
        assert "city" in learner._stale
        # the re-run refit succeeds and matches a never-killed learner
        assert learner.retrain("city") is True
        reference = FeedbackLearner(schema, min_examples=5, seed=2)
        teach(reference)
        reference.add_example(update, ("H2", "a", "b"), Feedback.RETAIN)
        reference.retrain("city")
        assert probe_predictions(learner) == probe_predictions(reference)
