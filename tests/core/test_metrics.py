"""Tests for :mod:`repro.core.metrics` (precision/recall of Appendix B.1)."""

import pytest

from repro.core import RepairReport, TrajectoryPoint, evaluate_repair
from repro.db import Database, Schema


def _db(rows):
    return Database(Schema("r", ["a", "b"]), rows)


class TestEvaluateRepair:
    def test_perfect_repair(self):
        dirty = _db([["bad", "y"]])
        clean = _db([["x", "y"]])
        repaired = _db([["x", "y"]])
        report = evaluate_repair(dirty, repaired, clean)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0
        assert report.remaining_errors == 0

    def test_no_repair(self):
        dirty = _db([["bad", "y"]])
        clean = _db([["x", "y"]])
        report = evaluate_repair(dirty, dirty.snapshot(), clean)
        assert report.changed == 0
        assert report.precision == 1.0  # vacuous
        assert report.recall == 0.0
        assert report.remaining_errors == 1

    def test_wrong_change_hurts_precision(self):
        dirty = _db([["bad", "y"]])
        clean = _db([["x", "y"]])
        repaired = _db([["worse", "y"]])
        report = evaluate_repair(dirty, repaired, clean)
        assert report.precision == 0.0
        assert report.recall == 0.0

    def test_breaking_a_correct_cell(self):
        dirty = _db([["x", "y"]])
        clean = _db([["x", "y"]])
        repaired = _db([["x", "broken"]])
        report = evaluate_repair(dirty, repaired, clean)
        assert report.broken == 1
        assert report.precision == 0.0

    def test_mixed(self):
        dirty = _db([["bad1", "bad2"], ["x", "y"]])
        clean = _db([["good1", "good2"], ["x", "y"]])
        repaired = _db([["good1", "bad2"], ["x", "wrong"]])
        report = evaluate_repair(dirty, repaired, clean)
        assert report.changed == 2
        assert report.correct_changes == 1
        assert report.initial_errors == 2
        assert report.remaining_errors == 2  # bad2 remains, wrong introduced
        assert report.precision == 0.5
        assert report.recall == 0.5

    def test_cell_accuracy(self):
        dirty = _db([["bad", "y"]])
        clean = _db([["x", "y"]])
        report = evaluate_repair(dirty, dirty.snapshot(), clean)
        assert report.cell_accuracy == 0.5

    def test_clean_database_all_perfect(self):
        clean = _db([["x", "y"]])
        report = evaluate_repair(clean, clean.snapshot(), clean)
        assert report.recall == 1.0  # vacuous
        assert report.cell_accuracy == 1.0


class TestRepairReport:
    def test_f1_zero_when_both_zero(self):
        report = RepairReport(
            changed=1, correct_changes=0, initial_errors=1, remaining_errors=1, broken=0
        )
        assert report.f1 == 0.0

    def test_describe(self):
        report = RepairReport(
            changed=2, correct_changes=1, initial_errors=2, remaining_errors=1, broken=0
        )
        text = report.describe()
        assert "precision=0.500" in text
        assert "recall=0.500" in text

    def test_cell_accuracy_no_cells(self):
        report = RepairReport(0, 0, 0, 0, 0, cells=0)
        assert report.cell_accuracy == 1.0


class TestTrajectoryPoint:
    def test_fields(self):
        point = TrajectoryPoint(feedback=5, learner_decisions=2, loss=0.3)
        assert point.feedback == 5
        assert point.learner_decisions == 2
        assert point.loss == pytest.approx(0.3)

    def test_frozen(self):
        point = TrajectoryPoint(0, 0, 0.0)
        with pytest.raises(AttributeError):
            point.loss = 1.0
