"""Serial-vs-sharded byte parity for full GDR sessions.

``GDRConfig(shards=0)`` is the retained single-process reference;
``shards=N`` must reproduce its every observable — feedback spent,
learner decisions, loss trajectory and the final repaired instance —
byte for byte, across all four paper presets and both datasets.
"""

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.datasets import load_dataset
from repro.errors import ConfigError

PRESETS = ("gdr", "s_learning", "active_learning", "no_learning")


@pytest.fixture(scope="module")
def parity_datasets():
    return {name: load_dataset(name, n=110, seed=7) for name in ("hospital", "adult")}


def _signature(db, result):
    return (
        result.feedback_used,
        result.learner_decisions,
        result.iterations,
        result.final_loss,
        tuple((p.feedback, p.learner_decisions, p.loss) for p in result.trajectory),
        tuple(tuple(row.values) for row in db.rows()),
    )


def _run(ds, preset, shards, budget=25):
    db = ds.fresh_dirty()
    config = getattr(GDRConfig, preset)(seed=3, shards=shards)
    engine = GDREngine(
        db, ds.rules, GroundTruthOracle(ds.clean), config, clean_db=ds.clean
    )
    result = engine.run(feedback_limit=budget)
    health = engine.health()
    engine.detach()
    return _signature(db, result), health


@pytest.mark.parametrize("dataset_name", ["hospital", "adult"])
@pytest.mark.parametrize("preset", PRESETS)
def test_sharded_run_is_byte_identical(preset, dataset_name, parity_datasets):
    ds = parity_datasets[dataset_name]
    serial, serial_health = _run(ds, preset, shards=0)
    sharded, sharded_health = _run(ds, preset, shards=2)
    assert sharded == serial
    assert serial_health["shards"] == {}
    info = sharded_health["shards"]
    assert info["pool_size"] == 2
    if preset != "active_learning":
        # active learning ranks by committee disagreement, not VOI, so
        # its sessions never reach the batched what-if entry point
        assert info["worker_cells"] + info["canonical_cells"] > 0


def test_health_shards_section_shape(parity_datasets):
    ds = parity_datasets["hospital"]
    __, health = _run(ds, "gdr", shards=2, budget=10)
    info = health["shards"]
    for key in (
        "pool_size",
        "key_attr",
        "local_rules",
        "cross_rules",
        "dispatches",
        "worker_cells",
        "canonical_cells",
        "pool_respawns",
        "arena_generation",
        "pending_ops",
    ):
        assert key in info


class TestShardsConfig:
    def test_default_is_serial(self):
        assert GDRConfig().shards == 0

    @pytest.mark.parametrize("bad", [-1, 1.5, "two", None])
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ConfigError):
            GDRConfig(shards=bad)

    def test_presets_accept_shards(self):
        for preset in PRESETS:
            assert getattr(GDRConfig, preset)(shards=3).shards == 3
