"""Tests for :mod:`repro.core.ranking`."""

from repro.constraints import CFD
from repro.constraints.violations import WhatIfOutcome
from repro.core import GreedyRanking, RandomRanking, UpdateGroup, VOIEstimator, VOIRanking
from repro.repair import CandidateUpdate


def _groups():
    small = UpdateGroup(("city", "A"), [CandidateUpdate(0, "city", "A", 0.9)])
    medium = UpdateGroup(
        ("city", "B"),
        [CandidateUpdate(1, "city", "B", 0.5), CandidateUpdate(2, "city", "B", 0.5)],
    )
    large = UpdateGroup(
        ("zip", "C"),
        [CandidateUpdate(i, "zip", "C", 0.1) for i in range(3, 7)],
    )
    return [small, medium, large]


class TestGreedyRanking:
    def test_largest_first(self):
        ranked = GreedyRanking().rank(_groups(), lambda u: u.score)
        assert [g.size for g, __ in ranked] == [4, 2, 1]

    def test_scores_are_sizes(self):
        ranked = GreedyRanking().rank(_groups(), lambda u: u.score)
        assert [score for __, score in ranked] == [4.0, 2.0, 1.0]

    def test_ties_broken_deterministically(self):
        a = UpdateGroup(("a", "x"), [CandidateUpdate(0, "a", "x", 0.5)])
        b = UpdateGroup(("b", "y"), [CandidateUpdate(1, "b", "y", 0.5)])
        ranked = GreedyRanking().rank([b, a], lambda u: u.score)
        assert ranked[0][0] is a  # attribute name tie-break

    def test_name(self):
        assert GreedyRanking.name == "greedy"


class TestRandomRanking:
    def test_is_permutation(self):
        groups = _groups()
        ranked = RandomRanking(seed=1).rank(groups, lambda u: u.score)
        assert sorted(id(g) for g, __ in ranked) == sorted(id(g) for g in groups)

    def test_deterministic_given_seed(self):
        groups = _groups()
        first = [g.key for g, __ in RandomRanking(seed=5).rank(groups, lambda u: u.score)]
        second = [g.key for g, __ in RandomRanking(seed=5).rank(groups, lambda u: u.score)]
        assert first == second

    def test_different_seeds_differ_eventually(self):
        groups = _groups()
        orders = {
            tuple(g.key for g, __ in RandomRanking(seed=s).rank(groups, lambda u: u.score))
            for s in range(10)
        }
        assert len(orders) > 1

    def test_scores_zero(self):
        ranked = RandomRanking(seed=0).rank(_groups(), lambda u: u.score)
        assert all(score == 0.0 for __, score in ranked)


class TestVOIRanking:
    def test_delegates_to_estimator(self):
        rule = CFD(["a"], "b", {"a": "1", "b": "2"}, name="r")

        class Stats:
            def what_if(self, tid, attribute, value):
                # tuple 0's update helps, others do nothing
                if tid == 0:
                    return {rule: WhatIfOutcome(4, 1, 1)}
                return {rule: WhatIfOutcome(4, 4, 1)}

            def weights(self):
                return {rule: 1.0}

        strategy = VOIRanking(VOIEstimator(Stats()))
        groups = _groups()
        ranked = strategy.rank(groups, lambda u: u.score)
        assert ranked[0][0].key == ("city", "A")
        assert strategy.name == "voi"
