"""Learner config tests: `learner="hist"` vs `"exact"`.

The histogram committees (fused split search, batched inference, warm
binned refits) must reproduce the exact-sort reference's ``GDRResult``
byte-for-byte for fixed seeds — same labels, same learner decisions,
same trajectory, same final instance — mirroring the
``pipeline``/``drain``/``suggest`` reference-path discipline.
"""

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.datasets import load_dataset
from repro.errors import ConfigError
from repro.ml.forest import HistogramForestClassifier


def _run(learner, preset, dataset="hospital", n=150, budget=40, data_seed=7,
         config_seed=3, **overrides):
    ds = load_dataset(dataset, n=n, seed=data_seed)
    db = ds.fresh_dirty()
    config = preset(seed=config_seed, learner=learner, **overrides)
    engine = GDREngine(db, ds.rules, GroundTruthOracle(ds.clean), config, clean_db=ds.clean)
    result = engine.run(feedback_limit=budget)
    return db, result, engine


def _trajectory(result):
    return [(p.feedback, p.learner_decisions, p.loss) for p in result.trajectory]


class TestLearnerConfig:
    def test_default_is_hist(self):
        assert GDRConfig().learner == "hist"

    def test_invalid_learner_rejected(self):
        with pytest.raises(ConfigError):
            GDRConfig(learner="bogus")

    def test_engine_passes_kind_to_learner(self):
        ds = load_dataset("hospital", n=60, seed=0)
        hist = GDREngine(
            ds.fresh_dirty(), ds.rules, GroundTruthOracle(ds.clean), GDRConfig.gdr()
        )
        assert hist.learner.kind == "hist"
        hist.detach()
        exact = GDREngine(
            ds.fresh_dirty(),
            ds.rules,
            GroundTruthOracle(ds.clean),
            GDRConfig.gdr(learner="exact"),
        )
        assert exact.learner.kind == "exact"


class TestByteIdenticalLearnerParity:
    @pytest.mark.parametrize(
        "preset",
        [GDRConfig.gdr, GDRConfig.s_learning, GDRConfig.active_learning, GDRConfig.no_learning],
        ids=["gdr", "s_learning", "active_learning", "no_learning"],
    )
    def test_hist_matches_exact(self, preset):
        db_h, result_h, __ = _run("hist", preset)
        db_e, result_e, __ = _run("exact", preset)
        assert db_h.equals_data(db_e)
        assert result_h.feedback_used == result_e.feedback_used
        assert result_h.learner_decisions == result_e.learner_decisions
        assert result_h.iterations == result_e.iterations
        assert result_h.initial_loss == result_e.initial_loss
        assert result_h.final_loss == result_e.final_loss
        assert _trajectory(result_h) == _trajectory(result_e)
        assert result_h.remaining_dirty == result_e.remaining_dirty

    def test_adult_dataset_parity(self):
        db_h, result_h, __ = _run("hist", GDRConfig.gdr, dataset="adult", n=120,
                                  budget=30, data_seed=2, config_seed=1)
        db_e, result_e, __ = _run("exact", GDRConfig.gdr, dataset="adult", n=120,
                                  budget=30, data_seed=2, config_seed=1)
        assert db_h.equals_data(db_e)
        assert _trajectory(result_h) == _trajectory(result_e)

    def test_hist_committees_actually_used(self):
        __, __, engine = _run("hist", GDRConfig.gdr)
        fitted = [m for m in engine.learner._models.values() if m is not None]
        assert fitted
        assert all(isinstance(m, HistogramForestClassifier) for m in fitted)


class TestCheckpointRoundTrip:
    def test_checkpoint_restores_hist_models(self, tmp_path):
        """A checkpointed session with fitted histogram committees must
        restore and resume to the uncheckpointed run's end state."""
        ds = load_dataset("hospital", n=120, seed=7)
        clean_db = ds.fresh_dirty()
        clean_engine = GDREngine(
            clean_db, ds.rules, GroundTruthOracle(ds.clean),
            GDRConfig.gdr(seed=3), clean_db=ds.clean,
        )
        clean_result = clean_engine.run(feedback_limit=30)
        clean_engine.detach()

        db = ds.fresh_dirty()
        engine = GDREngine(
            db,
            ds.rules,
            GroundTruthOracle(ds.clean),
            GDRConfig.gdr(
                seed=3,
                journal_path=str(tmp_path / "journal.jsonl"),
                checkpoint_path=str(tmp_path / "session.cp"),
                checkpoint_every=1,
            ),
            clean_db=ds.clean,
        )
        engine.run(feedback_limit=30)
        engine.detach()

        restored = GDREngine.restore(
            tmp_path / "session.cp", ds.rules, GroundTruthOracle(ds.clean), ds.clean
        )
        fitted = [m for m in restored.learner._models.values() if m is not None]
        assert fitted
        assert all(isinstance(m, HistogramForestClassifier) for m in fitted)
        result = restored.resume()
        restored.detach()
        assert restored.db.equals_data(clean_db)
        assert result.remaining_dirty == clean_result.remaining_dirty
