"""Suggestion-engine config tests: `suggest="batched"` vs `"scalar"`.

The batched engine (code-space similarity, witness-signature sharing,
kernel-scored pools) must reproduce the scalar per-cell reference's
``GDRResult`` byte-for-byte for fixed seeds — same labels, same learner
decisions, same trajectory, same final instance.
"""

import pytest

from repro.core import GDRConfig, GDREngine, GroundTruthOracle
from repro.datasets import load_dataset
from repro.errors import ConfigError


def _run(suggest, preset, dataset="hospital", n=150, budget=40, data_seed=7,
         config_seed=3, **overrides):
    ds = load_dataset(dataset, n=n, seed=data_seed)
    db = ds.fresh_dirty()
    config = preset(seed=config_seed, suggest=suggest, **overrides)
    engine = GDREngine(db, ds.rules, GroundTruthOracle(ds.clean), config, clean_db=ds.clean)
    result = engine.run(feedback_limit=budget)
    return db, result, engine


def _trajectory(result):
    return [(p.feedback, p.learner_decisions, p.loss) for p in result.trajectory]


class TestSuggestConfig:
    def test_default_is_batched(self):
        assert GDRConfig().suggest == "batched"

    def test_invalid_suggest_rejected(self):
        with pytest.raises(ConfigError):
            GDRConfig(suggest="bogus")

    def test_invalid_sim_cache_capacity_rejected(self):
        with pytest.raises(ConfigError):
            GDRConfig(sim_cache_capacity=0)

    def test_engine_owns_one_similarity_cache(self):
        ds = load_dataset("hospital", n=60, seed=0)
        engine = GDREngine(
            ds.fresh_dirty(), ds.rules, GroundTruthOracle(ds.clean), GDRConfig.gdr()
        )
        assert engine.generator.sim is engine.sim_cache
        assert engine.learner.encoder.sim is engine.sim_cache

    def test_two_engines_do_not_share_cache_state(self):
        """The old module-global ``lru_cache`` leaked across engines;
        engine-owned caches must be independent."""
        ds = load_dataset("hospital", n=60, seed=0)
        first = GDREngine(
            ds.fresh_dirty(), ds.rules, GroundTruthOracle(ds.clean), GDRConfig.gdr()
        )
        first.detach()
        second = GDREngine(
            ds.fresh_dirty(), ds.rules, GroundTruthOracle(ds.clean), GDRConfig.gdr()
        )
        assert first.sim_cache is not second.sim_cache
        assert second.sim_cache.stats["hits"] <= first.sim_cache.stats["hits"]

    def test_cache_capacity_honoured(self):
        ds = load_dataset("hospital", n=80, seed=1)
        engine = GDREngine(
            ds.fresh_dirty(),
            ds.rules,
            GroundTruthOracle(ds.clean),
            GDRConfig.gdr(sim_cache_capacity=8),
            clean_db=ds.clean,
        )
        engine.run(feedback_limit=10)
        assert len(engine.sim_cache) <= 8 + 64  # one batch may overshoot, then purge
        assert engine.sim_cache.stats["evictions"] > 0

    def test_generator_mode_follows_config(self):
        ds = load_dataset("hospital", n=60, seed=0)
        batched = GDREngine(
            ds.fresh_dirty(), ds.rules, GroundTruthOracle(ds.clean), GDRConfig.gdr()
        )
        batched.detach()
        scalar = GDREngine(
            ds.fresh_dirty(),
            ds.rules,
            GroundTruthOracle(ds.clean),
            GDRConfig.gdr(suggest="scalar"),
        )
        assert batched.generator.batched is True
        assert scalar.generator.batched is False


class TestByteIdenticalSuggestParity:
    @pytest.mark.parametrize(
        "preset",
        [GDRConfig.gdr, GDRConfig.s_learning, GDRConfig.active_learning, GDRConfig.no_learning],
        ids=["gdr", "s_learning", "active_learning", "no_learning"],
    )
    def test_batched_matches_scalar(self, preset):
        db_b, result_b, __ = _run("batched", preset)
        db_s, result_s, __ = _run("scalar", preset)
        assert db_b.equals_data(db_s)
        assert result_b.feedback_used == result_s.feedback_used
        assert result_b.learner_decisions == result_s.learner_decisions
        assert result_b.iterations == result_s.iterations
        assert result_b.initial_loss == result_s.initial_loss
        assert result_b.final_loss == result_s.final_loss
        assert _trajectory(result_b) == _trajectory(result_s)
        assert result_b.remaining_dirty == result_s.remaining_dirty

    def test_adult_dataset_parity(self):
        db_b, result_b, __ = _run("batched", GDRConfig.gdr, dataset="adult", n=120,
                                  budget=30, data_seed=2, config_seed=1)
        db_s, result_s, __ = _run("scalar", GDRConfig.gdr, dataset="adult", n=120,
                                  budget=30, data_seed=2, config_seed=1)
        assert db_b.equals_data(db_s)
        assert _trajectory(result_b) == _trajectory(result_s)

    def test_batched_on_rebuild_pipeline_parity(self):
        db_b, result_b, __ = _run("batched", GDRConfig.gdr, pipeline="rebuild")
        db_s, result_s, __ = _run("scalar", GDRConfig.gdr, pipeline="rebuild")
        assert db_b.equals_data(db_s)
        assert _trajectory(result_b) == _trajectory(result_s)

    def test_cache_sees_traffic_during_run(self):
        __, __, engine = _run("batched", GDRConfig.gdr)
        stats = engine.sim_cache.stats
        assert stats["misses"] > 0
        assert stats["hits"] > 0
